"""Lockdep-style runtime lock-order sanitizer.

The static LOCK02 checker proves the *possible* lock acquisition graph
acyclic; this module records the *witnessed* one.  When installed (see
:func:`install`, normally gated behind ``REPRO_SANITIZE=1`` in the test
harness) the ``threading.Lock`` / ``RLock`` / ``Condition`` factories
are replaced with wrappers that, for locks created inside ``repro``
source files:

* keep a thread-local stack of held locks, keyed by the lock's
  *creation site* (so every ``ConnectionPool`` instance's ``_lock``
  is one logical lock, exactly as LOCK02 models it);
* record every ``held -> taken`` ordering edge into a global graph and
  raise :class:`LockOrderError` the moment two sites are witnessed in
  both orders — a real inversion, caught even when the interleaving
  never actually deadlocks;
* record every wire primitive (``send_frame`` / ``recv_frame`` /
  ``poll_frame``) entered while any lock is held, so deliberate
  held-across-I/O suppressions stay auditable.

:func:`export_witness` serialises the witnessed edges with their
``Class.attr`` labels (resolved from the creation site's AST), in the
JSON shape LOCK02's ``--witness`` flag consumes: cycle reports then
annotate each edge as runtime-confirmed or never witnessed.

The wrappers add two dict operations per acquisition; the concurrency
suites run well inside the 2x overhead budget.
"""

from __future__ import annotations

import ast
import json
import os
import sys
import threading
from pathlib import Path

#: Environment variable that turns the sanitizer on in the test harness.
SANITIZE_ENV = "REPRO_SANITIZE"
#: Environment variable naming where the harness writes the witness.
WITNESS_ENV = "REPRO_SANITIZE_WITNESS"

#: Path fragments identifying first-party source (the creation-site
#: filter): only locks created inside ``repro`` modules are tracked.
_REPRO_MARKERS = (f"{os.sep}repro{os.sep}", "/repro/")

# The real primitives, captured before any patching.
_real_lock = threading.Lock
_real_rlock = threading.RLock
_real_condition = threading.Condition

#: Wire primitives wrapped to record held-across-blocking events:
#: module path -> function names rebound there.
_BLOCKING_FUNCTIONS = ("send_frame", "recv_frame", "poll_frame")
_BLOCKING_REBIND_MODULES = (
    "repro.net.frame",
    "repro.net.client",
    "repro.net.server",
)


class LockOrderError(RuntimeError):
    """Two locks were witnessed being acquired in both orders."""


# Lock identity at runtime is the ``(filename, lineno)`` creation site.


class LockRegistry:
    """Witnessed lock-order edges, held stacks and blocking events.

    One registry lives for the whole sanitized run; every tracked lock
    reports into it.  All mutable state is guarded by a *real*
    (untracked) mutex that is only ever taken as a leaf, so the
    sanitizer can never contribute edges of its own.
    """

    def __init__(self) -> None:
        self._mutex = _real_lock()
        self._tls = threading.local()
        #: (held site, taken site) -> times witnessed.
        self.edges: dict[tuple[tuple, tuple], int] = {}
        #: (held sites, wire op) -> times a wire primitive ran under locks.
        self.blocking: dict[tuple[tuple, str], int] = {}
        #: Human-readable descriptions of witnessed inversions.
        self.inversions: list[str] = []

    # -- held-stack bookkeeping (called from lock wrappers) ----------------

    def _stack(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def before_acquire(self, site: tuple) -> None:
        """Record ordering edges for an acquisition about to happen.

        Runs *before* the underlying acquire so an inversion raises
        instead of deadlocking the suite.  Edges between two locks from
        the same creation site (two instances of one class attribute)
        are skipped: ordering between peers is instance-level and the
        site key cannot tell the instances apart.

        Raises:
            LockOrderError: the opposite ordering was already witnessed.
        """
        stack = self._stack()
        if not stack:
            return
        inversion: tuple | None = None
        with self._mutex:
            for held in stack:
                if held == site:
                    continue
                key = (held, site)
                self.edges[key] = self.edges.get(key, 0) + 1
                if inversion is None and (site, held) in self.edges:
                    inversion = held
        if inversion is not None:
            message = (
                f"lock-order inversion: acquiring {site_label(site)} "
                f"({_site_text(site)}) while holding "
                f"{site_label(inversion)} ({_site_text(inversion)}), but "
                "the opposite order was witnessed earlier in this run — "
                "two threads interleaving these paths can deadlock"
            )
            with self._mutex:
                self.inversions.append(message)
            raise LockOrderError(message)

    def did_acquire(self, site: tuple, count: int = 1) -> None:
        """Push a successful acquisition onto the thread's held stack."""
        self._stack().extend([site] * count)

    def did_release(self, site: tuple, count: int = 1) -> None:
        """Pop the most recent ``count`` holds of ``site``."""
        stack = self._stack()
        for _ in range(count):
            for i in range(len(stack) - 1, -1, -1):
                if stack[i] == site:
                    del stack[i]
                    break

    def held(self) -> list:
        """The calling thread's held sites, acquisition order."""
        return list(self._stack())

    def note_blocking(self, op: str) -> None:
        """Record a wire primitive entered while locks are held."""
        stack = self._stack()
        if not stack:
            return
        key = (tuple(dict.fromkeys(stack)), op)
        with self._mutex:
            self.blocking[key] = self.blocking.get(key, 0) + 1


class TrackedLock:
    """A ``threading.Lock`` recording its orderings in the registry.

    Exposes the mutex protocol (``acquire``/``release``/context
    manager/``locked``) and deliberately *not* ``_release_save`` — a
    ``Condition`` wrapping it then falls back to plain
    ``release``/``acquire`` calls, which keep the held stack honest
    across ``wait()``.
    """

    __slots__ = ("_inner", "_site", "_registry")

    def __init__(self, inner, site: tuple, registry: LockRegistry) -> None:
        self._inner = inner
        self._site = site
        self._registry = registry

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        """Acquire, recording ordering edges first (see the registry)."""
        self._registry.before_acquire(self._site)
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._registry.did_acquire(self._site)
        return got

    def release(self) -> None:
        """Release and pop the held stack."""
        self._inner.release()
        self._registry.did_release(self._site)

    def locked(self) -> bool:
        """Whether the underlying lock is currently held by anyone."""
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<TrackedLock {_site_text(self._site)} {self._inner!r}>"


class TrackedRLock(TrackedLock):
    """A reentrant tracked lock, usable under a ``Condition``.

    Implements ``_release_save``/``_acquire_restore``/``_is_owned`` so
    ``Condition.wait`` releases the *full* recursion depth and the held
    stack mirrors it exactly.
    """

    __slots__ = ()

    def _release_save(self):
        state = self._inner._release_save()
        depth = state[0] if isinstance(state, tuple) else 1
        self._registry.did_release(self._site, count=depth)
        return state

    def _acquire_restore(self, state) -> None:
        self._inner._acquire_restore(state)
        depth = state[0] if isinstance(state, tuple) else 1
        self._registry.did_acquire(self._site, count=depth)

    def _is_owned(self) -> bool:
        return self._inner._is_owned()


class _State:
    """Module-level installation state (one sanitizer per process)."""

    def __init__(self) -> None:
        self.installed = False
        self.instrument_all = False
        self.registry = LockRegistry()
        self.saved_blocking: list[tuple[object, str, object]] = []


_state = _State()


def registry() -> LockRegistry:
    """The active (or most recent) run's registry."""
    return _state.registry


def _tracked_creation(depth: int = 2) -> "tuple | None":
    """The creation site when the caller's file should be instrumented.

    Only code inside ``repro`` source files gets tracked locks (unless
    :func:`install` was told ``instrument_all``); the rest of the
    process — pytest, stdlib, test helpers — keeps the real primitives.
    """
    frame = sys._getframe(depth)
    filename = frame.f_code.co_filename
    if not _state.instrument_all and not any(
        marker in filename for marker in _REPRO_MARKERS
    ):
        return None
    return (filename, frame.f_lineno)


def _lock_factory():
    """Replacement for ``threading.Lock`` while installed."""
    site = _tracked_creation()
    if site is None:
        return _real_lock()
    return TrackedLock(_real_lock(), site, _state.registry)


def _rlock_factory():
    """Replacement for ``threading.RLock`` while installed."""
    site = _tracked_creation()
    if site is None:
        return _real_rlock()
    return TrackedRLock(_real_rlock(), site, _state.registry)


def _condition_factory(lock=None):
    """Replacement for ``threading.Condition`` while installed.

    A condition constructed around a tracked lock simply uses it (its
    acquisitions already report to the registry under the *wrapped*
    lock's site — the same aliasing LOCK02 applies).  A bare
    ``Condition()`` gets a tracked reentrant lock created at the
    condition's own site.
    """
    if lock is None:
        site = _tracked_creation()
        if site is None:
            return _real_condition()
        lock = TrackedRLock(_real_rlock(), site, _state.registry)
    return _real_condition(lock)


def _wrap_blocking(name: str, real):
    """A wire primitive that reports held-across-blocking first."""

    def wrapped(*args, **kwargs):
        _state.registry.note_blocking(name)
        return real(*args, **kwargs)

    wrapped.__name__ = name
    wrapped.__doc__ = real.__doc__
    wrapped.__wrapped__ = real
    return wrapped


def _patch_blocking() -> None:
    """Rebind the wire primitives (and their importers) to wrappers.

    ``client``/``server`` import the functions by name, so patching
    ``repro.net.frame`` alone would miss their call sites; every module
    that re-bound a name gets the wrapper too, and :func:`uninstall`
    restores each binding.
    """
    import importlib

    frame_mod = importlib.import_module("repro.net.frame")
    wrappers = {
        name: _wrap_blocking(name, getattr(frame_mod, name))
        for name in _BLOCKING_FUNCTIONS
    }
    for module_name in _BLOCKING_REBIND_MODULES:
        module = importlib.import_module(module_name)
        for name, wrapper in wrappers.items():
            original = getattr(module, name, None)
            if original is None or original is wrapper:
                continue
            _state.saved_blocking.append((module, name, original))
            setattr(module, name, wrapper)


def install(instrument_all: bool = False) -> LockRegistry:
    """Turn the sanitizer on; returns the fresh run registry.

    Idempotent: a second call while installed returns the live
    registry.  ``instrument_all`` drops the creation-site filter so
    tests can track locks created in test files.
    """
    if _state.installed:
        return _state.registry
    _state.registry = LockRegistry()
    _state.instrument_all = instrument_all
    _state.saved_blocking = []
    threading.Lock = _lock_factory
    threading.RLock = _rlock_factory
    threading.Condition = _condition_factory
    _patch_blocking()
    _state.installed = True
    return _state.registry


def uninstall() -> None:
    """Restore the real primitives; the registry keeps its evidence."""
    if not _state.installed:
        return
    threading.Lock = _real_lock
    threading.RLock = _real_rlock
    threading.Condition = _real_condition
    for module, name, original in _state.saved_blocking:
        setattr(module, name, original)
    _state.saved_blocking = []
    _state.instrument_all = False
    _state.installed = False


# -- witness export ----------------------------------------------------------


def site_label(site: tuple) -> str:
    """``Class.attr`` label for a lock creation site.

    Resolved by parsing the creating file and finding the
    ``self.<attr> = <factory>(...)`` assignment spanning the creation
    line inside its innermost class; sites outside such an assignment
    (module-level or local locks) fall back to ``file.py:line``.
    """
    filename, lineno = site
    return _file_labels(filename).get(lineno, _site_text(site))


def _site_text(site: tuple) -> str:
    filename, lineno = site
    return f"{Path(filename).name}:{lineno}"


_label_cache: dict[str, dict[int, str]] = {}


def _file_labels(filename: str) -> dict[int, str]:
    """Line -> ``Class.attr`` map for one source file (cached)."""
    cached = _label_cache.get(filename)
    if cached is not None:
        return cached
    labels: dict[int, str] = {}
    try:
        tree = ast.parse(Path(filename).read_text(), filename=filename)
    except (OSError, SyntaxError):
        _label_cache[filename] = labels
        return labels
    # Outer classes first so nested classes overwrite (innermost wins).
    classes = sorted(
        (n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)),
        key=lambda n: n.lineno,
    )
    for cls in classes:
        for node in ast.walk(cls):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    span_end = node.value.end_lineno or node.value.lineno
                    for line in range(node.value.lineno, span_end + 1):
                        labels[line] = f"{cls.name}.{target.attr}"
    _label_cache[filename] = labels
    return labels


def export_witness(path: "str | Path") -> dict:
    """Write the witnessed edge set as LOCK02 ``--witness`` JSON.

    Edges are labelled ``Class.attr`` and merged across instances;
    pairs whose endpoints collapse to one label are dropped (LOCK02
    skips same-identity edges too).  Returns the payload.
    """
    reg = _state.registry
    with reg._mutex:
        raw_edges = dict(reg.edges)
        raw_blocking = dict(reg.blocking)
        inversions = list(reg.inversions)
    merged: dict[tuple[str, str], int] = {}
    for (held, taken), count in raw_edges.items():
        key = (site_label(held), site_label(taken))
        if key[0] == key[1]:
            continue
        merged[key] = merged.get(key, 0) + count
    payload = {
        "version": 1,
        "edges": [
            {"from": a, "to": b, "count": count}
            for (a, b), count in sorted(merged.items())
        ],
        "blocking": [
            {
                "locks": sorted(site_label(s) for s in held),
                "op": op,
                "count": count,
            }
            for (held, op), count in sorted(
                raw_blocking.items(),
                key=lambda item: (item[0][1], item[1]),
            )
        ],
        "inversions": inversions,
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return payload
