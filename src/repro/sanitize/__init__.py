"""Opt-in runtime sanitizers for the cluster's concurrency invariants.

``repro.sanitize`` is the runtime half of the turbscan lock discipline:
LOCK02 proves the possible acquisition graph acyclic from source, and
the :mod:`~repro.sanitize.lockdep` instrumentation records which of
those orderings (and which held-across-I/O events) the concurrency
suites actually exercise.  The harness turns it on with
``REPRO_SANITIZE=1`` and feeds the exported witness back into
``python -m repro.lint --witness`` so static cycle reports distinguish
runtime-confirmed edges from never-witnessed over-approximation.

Typical use::

    from repro import sanitize

    reg = sanitize.install()        # patch threading factories
    ...                             # run concurrency workloads
    sanitize.export_witness("lock-witness.json")
    sanitize.uninstall()
    assert not reg.inversions
"""

from repro.sanitize.lockdep import (
    SANITIZE_ENV,
    WITNESS_ENV,
    LockOrderError,
    LockRegistry,
    TrackedLock,
    TrackedRLock,
    export_witness,
    install,
    registry,
    site_label,
    uninstall,
)

__all__ = [
    "SANITIZE_ENV",
    "WITNESS_ENV",
    "LockOrderError",
    "LockRegistry",
    "TrackedLock",
    "TrackedRLock",
    "export_witness",
    "install",
    "registry",
    "site_label",
    "uninstall",
]
