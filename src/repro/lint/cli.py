"""Command-line front end: ``python -m repro.lint src/``.

Besides the human-readable report, the CLI speaks CI: ``--format json``
emits a machine-readable payload, ``--baseline FILE`` filters findings
already recorded with ``--write-baseline`` (so a gate only fails on
*new* issues mid-migration), and ``--witness FILE`` feeds the sanitizer's
runtime lock-order edge set into LOCK02.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import asdict
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.checkers import ALL_CHECKERS
from repro.lint.diagnostics import Diagnostic, LintSyntaxError, SourceFile
from repro.lint.program import Program
from repro.obs.report import report

#: Exit codes (CI contract).
EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_USAGE = 2


def module_name_for(path: Path) -> str:
    """Dotted module name for a file, anchored at ``src`` or ``repro``.

    ``src/repro/storage/wal.py`` -> ``repro.storage.wal``;
    ``.../repro/lint/__init__.py`` -> ``repro.lint``.  Files outside any
    recognised root fall back to their stem, which keeps them out of the
    scoped checkers (only COST01/HALO01 apply everywhere under
    ``repro.``).
    """
    parts = list(path.resolve().with_suffix("").parts)
    module: list[str]
    if "src" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("src")
        module = parts[anchor + 1 :]
    elif "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        module = parts[anchor:]
    else:
        module = [parts[-1]]
    if module and module[-1] == "__init__":
        module = module[:-1]
    return ".".join(module) if module else path.stem


def discover(paths: Iterable[str | Path]) -> list[Path]:
    """All ``.py`` files under the given files/directories, sorted."""
    files: set[Path] = set()
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def run_paths(
    paths: Iterable[str | Path],
    select: Sequence[str] | None = None,
    witness: str | Path | None = None,
) -> tuple[list[Diagnostic], int]:
    """Lint the given paths.

    Returns ``(diagnostics, file_count)`` with suppressions already
    applied.  ``select`` restricts the run to the named checker codes;
    ``witness`` names a sanitizer-exported lock-order edge set consumed
    by checkers exposing ``load_witness`` (LOCK02).
    """
    wanted = {code.upper() for code in select} if select else None
    checkers = [
        cls()
        for cls in ALL_CHECKERS
        if wanted is None or cls.code in wanted
    ]
    if witness is not None:
        for checker in checkers:
            loader = getattr(checker, "load_witness", None)
            if loader is not None:
                loader(witness)
    diagnostics: list[Diagnostic] = []
    sources: dict[str, SourceFile] = {}
    files = discover(paths)
    for file in files:
        try:
            source = SourceFile(file, module_name_for(file))
        except LintSyntaxError as error:
            diagnostics.append(
                Diagnostic("PARSE", str(error), str(file), 1)
            )
            continue
        sources[str(source.path)] = source
        for checker in checkers:
            if not checker.applies(source.module):
                continue
            for diag in checker.check(source):
                if not source.suppressed(diag.code, diag.line):
                    diagnostics.append(diag)
    program_checkers = [c for c in checkers if c.whole_program]
    if program_checkers and sources:
        program = Program(sources.values())
        for checker in program_checkers:
            for diag in checker.check_program(program):
                source = sources.get(diag.path)
                if source is not None and source.suppressed(
                    diag.code, diag.line
                ):
                    continue
                diagnostics.append(diag)
    for checker in checkers:
        for diag in checker.finish():
            source = sources.get(diag.path)
            if source is not None and source.suppressed(
                diag.code, diag.line
            ):
                continue
            diagnostics.append(diag)
    active = {c.code for c in checkers} - {"SUP01"}
    if any(c.code == "SUP01" for c in checkers):
        diagnostics.extend(
            _stale_suppressions(sources, active, full_run=wanted is None)
        )
    diagnostics.sort(key=lambda d: (d.path, d.line, d.col, d.code))
    return diagnostics, len(files)


def _stale_suppressions(
    sources: dict[str, SourceFile], active: set[str], full_run: bool
) -> list[Diagnostic]:
    """SUP01 diagnostics for directives that suppressed nothing.

    Evaluated after every checker has run, using the hit-counts the
    directives accumulated while filtering.  ``disable=all`` directives
    are only judged on full runs, where every checker had its chance.
    """
    diags: list[Diagnostic] = []
    for source in sources.values():
        for directive in source.directives:
            if "ALL" in directive.codes and not full_run:
                continue
            stale = directive.stale_codes(active)
            if not stale:
                continue
            if source.suppressed("SUP01", directive.lineno):
                continue
            listed = ",".join(sorted(stale)).lower()
            diags.append(
                Diagnostic(
                    "SUP01",
                    f"stale suppression: disable={listed} no longer "
                    "suppresses any diagnostic — delete the comment so "
                    "it cannot hide future regressions",
                    str(source.path),
                    directive.lineno,
                )
            )
    return diags


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "turblint: AST invariant checkers for the threshold-query "
            "engine (transaction discipline, cost accounting, halo "
            "consistency, lock hygiene, error taxonomy)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories"
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="CODE",
        help="run only the named checker (repeatable)",
    )
    parser.add_argument(
        "--list-checkers",
        action="store_true",
        help="list checker codes and exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json is one machine-readable object)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="record current findings as the baseline and exit clean",
    )
    parser.add_argument(
        "--witness",
        metavar="FILE",
        help=(
            "sanitizer-exported lock-order witness JSON; LOCK02 "
            "annotates cycle edges as runtime-confirmed or never "
            "witnessed"
        ),
    )
    try:
        options = parser.parse_args(argv)
    except SystemExit as error:
        return EXIT_USAGE if error.code not in (0, None) else 0

    from repro.lint.checkers import ALL_CHECKERS as registry

    if options.list_checkers:
        for cls in registry:
            report(f"{cls.code}  {cls.description}")
        return EXIT_CLEAN

    missing = [path for path in options.paths if not Path(path).exists()]
    if missing:
        report(
            f"no such file or directory: {', '.join(missing)}",
            error=True,
        )
        return EXIT_USAGE

    known = {cls.code for cls in registry}
    if options.select:
        unknown = {code.upper() for code in options.select} - known
        if unknown:
            report(
                f"unknown checker(s): {', '.join(sorted(unknown))}",
                error=True,
            )
            return EXIT_USAGE

    if options.baseline and not Path(options.baseline).exists():
        report(f"no such baseline file: {options.baseline}", error=True)
        return EXIT_USAGE

    diagnostics, file_count = run_paths(
        options.paths, options.select, witness=options.witness
    )

    if options.write_baseline:
        payload = {
            "version": 1,
            "fingerprints": sorted(
                {baseline_fingerprint(d) for d in diagnostics}
            ),
        }
        Path(options.write_baseline).write_text(
            json.dumps(payload, indent=2) + "\n"
        )
        report(
            f"turblint: wrote baseline with {len(diagnostics)} "
            f"finding(s) to {options.write_baseline}"
        )
        return EXIT_CLEAN

    known_fps: set[str] = set()
    if options.baseline:
        data = json.loads(Path(options.baseline).read_text())
        known_fps = set(data.get("fingerprints", []))
    fresh = [
        d for d in diagnostics if baseline_fingerprint(d) not in known_fps
    ]
    filtered = len(diagnostics) - len(fresh)

    if options.format == "json":
        report(
            json.dumps(
                {
                    "files": file_count,
                    "count": len(fresh),
                    "baseline_filtered": filtered,
                    "diagnostics": [asdict(d) for d in fresh],
                }
            )
        )
    else:
        for diag in fresh:
            report(diag.render())
        summary = (
            f"turblint: {file_count} file(s) checked, "
            f"{len(fresh)} issue(s) found"
        )
        if filtered:
            summary += f" ({filtered} suppressed by baseline)"
        report(summary)
    return EXIT_VIOLATIONS if fresh else EXIT_CLEAN


def console_main() -> None:
    """``repro-lint`` console-script entry point."""
    raise SystemExit(main())


def baseline_fingerprint(diag: Diagnostic) -> str:
    """Stable identity of a finding for baseline matching.

    Deliberately excludes line/column so unrelated edits shifting a
    known finding do not resurrect it.
    """
    return f"{diag.code}|{diag.path}|{diag.message}"
