"""Command-line front end: ``python -m repro.lint src/``."""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.checkers import ALL_CHECKERS
from repro.lint.diagnostics import Diagnostic, LintSyntaxError, SourceFile
from repro.obs.report import report

#: Exit codes (CI contract).
EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_USAGE = 2


def module_name_for(path: Path) -> str:
    """Dotted module name for a file, anchored at ``src`` or ``repro``.

    ``src/repro/storage/wal.py`` -> ``repro.storage.wal``;
    ``.../repro/lint/__init__.py`` -> ``repro.lint``.  Files outside any
    recognised root fall back to their stem, which keeps them out of the
    scoped checkers (only COST01/HALO01 apply everywhere under
    ``repro.``).
    """
    parts = list(path.resolve().with_suffix("").parts)
    module: list[str]
    if "src" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("src")
        module = parts[anchor + 1 :]
    elif "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        module = parts[anchor:]
    else:
        module = [parts[-1]]
    if module and module[-1] == "__init__":
        module = module[:-1]
    return ".".join(module) if module else path.stem


def discover(paths: Iterable[str | Path]) -> list[Path]:
    """All ``.py`` files under the given files/directories, sorted."""
    files: set[Path] = set()
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def run_paths(
    paths: Iterable[str | Path], select: Sequence[str] | None = None
) -> tuple[list[Diagnostic], int]:
    """Lint the given paths.

    Returns ``(diagnostics, file_count)`` with suppressions already
    applied.  ``select`` restricts the run to the named checker codes.
    """
    wanted = {code.upper() for code in select} if select else None
    checkers = [
        cls()
        for cls in ALL_CHECKERS
        if wanted is None or cls.code in wanted
    ]
    diagnostics: list[Diagnostic] = []
    sources: dict[str, SourceFile] = {}
    files = discover(paths)
    for file in files:
        try:
            source = SourceFile(file, module_name_for(file))
        except LintSyntaxError as error:
            diagnostics.append(
                Diagnostic("PARSE", str(error), str(file), 1)
            )
            continue
        sources[str(source.path)] = source
        for checker in checkers:
            if not checker.applies(source.module):
                continue
            for diag in checker.check(source):
                if not source.suppressed(diag.code, diag.line):
                    diagnostics.append(diag)
    for checker in checkers:
        for diag in checker.finish():
            source = sources.get(diag.path)
            if source is not None and source.suppressed(
                diag.code, diag.line
            ):
                continue
            diagnostics.append(diag)
    diagnostics.sort(key=lambda d: (d.path, d.line, d.col, d.code))
    return diagnostics, len(files)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "turblint: AST invariant checkers for the threshold-query "
            "engine (transaction discipline, cost accounting, halo "
            "consistency, lock hygiene, error taxonomy)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories"
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="CODE",
        help="run only the named checker (repeatable)",
    )
    parser.add_argument(
        "--list-checkers",
        action="store_true",
        help="list checker codes and exit",
    )
    try:
        options = parser.parse_args(argv)
    except SystemExit as error:
        return EXIT_USAGE if error.code not in (0, None) else 0

    from repro.lint.checkers import ALL_CHECKERS as registry

    if options.list_checkers:
        for cls in registry:
            report(f"{cls.code}  {cls.description}")
        return EXIT_CLEAN

    missing = [path for path in options.paths if not Path(path).exists()]
    if missing:
        report(
            f"no such file or directory: {', '.join(missing)}",
            error=True,
        )
        return EXIT_USAGE

    known = {cls.code for cls in registry}
    if options.select:
        unknown = {code.upper() for code in options.select} - known
        if unknown:
            report(
                f"unknown checker(s): {', '.join(sorted(unknown))}",
                error=True,
            )
            return EXIT_USAGE

    diagnostics, file_count = run_paths(options.paths, options.select)
    for diag in diagnostics:
        report(diag.render())
    issues = len(diagnostics)
    report(
        f"turblint: {file_count} file(s) checked, {issues} issue(s) found"
    )
    return EXIT_VIOLATIONS if issues else EXIT_CLEAN
