"""``python -m repro.lint`` entry point."""

from repro.lint.cli import main

raise SystemExit(main())
