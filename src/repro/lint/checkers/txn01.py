"""TXN01 — transaction discipline.

The paper runs every cache read and update "within a transaction with
snapshot isolation level" (§4, Algorithm 1), and the engine's
:class:`~repro.storage.mvcc.Transaction` must be committed or aborted on
every control-flow path — a leaked ACTIVE transaction pins its snapshot
and blocks first-updater-wins conflict detection forever.  This checker
enforces, in the transactional modules:

* a transaction obtained outside a ``with`` statement must be finished:
  at least one ``txn.commit()``/``txn.abort()`` must exist, and every
  ``commit`` must sit inside a ``try`` whose handlers all abort the
  transaction (with at least one catch-all handler), or whose
  ``finally`` aborts it — otherwise an exception raised mid-transaction
  leaks it;
* a ``begin()``/``transaction()`` call whose result is discarded is a
  leak by construction;
* table mutations (``insert``/``update``/``delete`` on a table obtained
  via ``db.table(...)``) must pass a transaction as their first
  argument — no mutation outside a transaction.

Heuristics (documented, deliberate): returning a fresh transaction
transfers ownership to the caller and is allowed; a parameter named
``txn`` or annotated ``Transaction`` counts as a live transaction.
"""

from __future__ import annotations

import ast

from repro.lint.base import Checker, call_attr, function_defs, module_in
from repro.lint.diagnostics import Diagnostic, SourceFile

#: Methods that create a transaction.
TXN_FACTORIES = {"begin", "transaction"}
#: Table methods that mutate rows.
TABLE_MUTATORS = {"insert", "update", "delete"}
#: Handler types treated as catch-alls.
CATCH_ALL = {"Exception", "BaseException"}


def _own_statements(fn: ast.AST) -> list[ast.stmt]:
    """Statements of ``fn`` excluding nested function/class bodies."""
    out: list[ast.stmt] = []
    stack: list[ast.stmt] = list(getattr(fn, "body", []))
    while stack:
        stmt = stack.pop()
        out.append(stmt)
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                stack.append(child)
            else:
                stack.extend(
                    s for s in ast.walk(child) if isinstance(s, ast.stmt)
                )
    return out


def _is_txn_factory_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and call_attr(node) in TXN_FACTORIES
        and isinstance(node.func, ast.Attribute)
    )


def _annotation_mentions_transaction(annotation: ast.AST | None) -> bool:
    if annotation is None:
        return False
    return "Transaction" in ast.dump(annotation)


class TxnDiscipline(Checker):
    """Every transaction commits or aborts on all control-flow paths."""

    code = "TXN01"
    description = (
        "transactions begun in the storage/cache modules must commit or "
        "abort on every path; table mutations must run inside one"
    )

    def applies(self, module: str) -> bool:
        return module_in(
            module,
            "repro.storage.",
            "repro.core.cache",
            "repro.core.pdfcache",
            "repro.core.landmarks",
            "repro.core.threshold",
            "repro.core.batch",
            "repro.core.pdf",
            "repro.core.topk",
            "repro.cluster.node",
            "repro.cluster.mediator",
        )

    def check(self, source: SourceFile) -> list[Diagnostic]:
        diags: list[Diagnostic] = []
        for fn in function_defs(source.tree):
            diags.extend(self._check_function(source, fn))
        return diags

    # -- per-function analysis ------------------------------------------------

    def _check_function(
        self, source: SourceFile, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> list[Diagnostic]:
        diags: list[Diagnostic] = []
        own = _own_statements(fn)
        txn_names = self._txn_names_in_scope(source, fn)

        assigned: list[tuple[str, ast.Assign]] = []
        for stmt in own:
            if isinstance(stmt, ast.Assign) and _is_txn_factory_call(stmt.value):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        assigned.append((target.id, stmt))
            elif isinstance(stmt, ast.Expr) and _is_txn_factory_call(stmt.value):
                diags.append(
                    self.report(
                        source,
                        stmt,
                        "transaction begun and immediately discarded — it "
                        "can never be committed or aborted",
                    )
                )

        for name, stmt in assigned:
            diags.extend(self._check_lifecycle(source, fn, name, stmt))

        diags.extend(self._check_table_mutations(source, fn, own, txn_names))
        return diags

    def _txn_names_in_scope(
        self, source: SourceFile, fn: ast.AST
    ) -> set[str]:
        """Transaction-valued names visible inside ``fn`` (incl. closures)."""
        names: set[str] = set()
        scopes: list[ast.AST] = [fn] + source.enclosing(
            fn, ast.FunctionDef, ast.AsyncFunctionDef
        )
        for scope in scopes:
            args = scope.args
            for arg in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
            ):
                if arg.arg == "txn" or _annotation_mentions_transaction(
                    arg.annotation
                ):
                    names.add(arg.arg)
            for stmt in _own_statements(scope):
                if isinstance(stmt, ast.Assign) and _is_txn_factory_call(
                    stmt.value
                ):
                    names.update(
                        t.id for t in stmt.targets if isinstance(t, ast.Name)
                    )
                elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                    for item in stmt.items:
                        if _is_txn_factory_call(
                            item.context_expr
                        ) and isinstance(item.optional_vars, ast.Name):
                            names.add(item.optional_vars.id)
        return names

    # -- explicit begin/commit lifecycle --------------------------------------

    def _check_lifecycle(
        self,
        source: SourceFile,
        fn: ast.AST,
        name: str,
        assign: ast.Assign,
    ) -> list[Diagnostic]:
        commits = self._finish_calls(fn, name, "commit")
        aborts = self._finish_calls(fn, name, "abort")
        if not commits and not aborts:
            return [
                self.report(
                    source,
                    assign,
                    f"transaction {name!r} is never committed or aborted on "
                    "any path",
                )
            ]
        diags = []
        for commit in commits:
            if not self._commit_protected(source, commit, name):
                diags.append(
                    self.report(
                        source,
                        commit,
                        f"commit of {name!r} is unprotected: an exception "
                        "raised before this commit leaves the transaction "
                        "active (wrap the work in try/except with "
                        f"{name}.abort() on every handler, or abort in a "
                        "finally block)",
                    )
                )
        return diags

    def _finish_calls(
        self, fn: ast.AST, name: str, method: str
    ) -> list[ast.Call]:
        calls = []
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == method
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == name
            ):
                calls.append(node)
        return calls

    def _commit_protected(
        self, source: SourceFile, commit: ast.Call, name: str
    ) -> bool:
        for candidate in source.enclosing(commit, ast.Try):
            if not self._within_block(source, commit, candidate, candidate.body):
                continue
            if self._block_aborts(candidate.finalbody, name):
                return True
            handlers = candidate.handlers
            if (
                handlers
                and all(self._block_aborts(h.body, name) for h in handlers)
                and any(self._catches_all(h) for h in handlers)
            ):
                return True
        return False

    def _within_block(
        self,
        source: SourceFile,
        node: ast.AST,
        stop: ast.AST,
        block: list[ast.stmt],
    ) -> bool:
        block_ids = {id(stmt) for stmt in block}
        parents = source.parents()
        current: ast.AST | None = node
        while current is not None and current is not stop:
            if id(current) in block_ids:
                return True
            current = parents.get(current)
        return False

    def _block_aborts(self, stmts: list[ast.stmt], name: str) -> bool:
        for stmt in stmts:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "abort"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == name
                ):
                    return True
        return False

    def _catches_all(self, handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        types = (
            handler.type.elts
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        return any(
            isinstance(t, ast.Name) and t.id in CATCH_ALL for t in types
        )

    # -- table mutations must carry a transaction ------------------------------

    def _check_table_mutations(
        self,
        source: SourceFile,
        fn: ast.AST,
        own: list[ast.stmt],
        txn_names: set[str],
    ) -> list[Diagnostic]:
        table_names: set[str] = set()
        for stmt in own:
            if isinstance(stmt, ast.Assign):
                value = stmt.value
                if isinstance(value, ast.Call) and call_attr(value) == "table":
                    table_names.update(
                        t.id for t in stmt.targets if isinstance(t, ast.Name)
                    )
        diags = []
        for stmt in own:
            for node in ast.walk(stmt):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in TABLE_MUTATORS
                ):
                    continue
                receiver = node.func.value
                is_table = (
                    isinstance(receiver, ast.Name)
                    and receiver.id in table_names
                ) or (
                    isinstance(receiver, ast.Call)
                    and call_attr(receiver) == "table"
                )
                if not is_table:
                    continue
                first = node.args[0] if node.args else None
                if not (
                    isinstance(first, ast.Name) and first.id in txn_names
                ):
                    diags.append(
                        self.report(
                            source,
                            node,
                            f"table {node.func.attr} outside a transaction — "
                            "the first argument must be a live Transaction",
                        )
                    )
        return diags
