"""SUP01 — stale suppression comments.

A ``# turblint: disable=CODE`` comment is a debt marker: it says a real
finding was reviewed and accepted.  When the underlying code changes and
the finding disappears, the comment keeps silencing future regressions
at that site for free.  SUP01 flags every directive that no longer
suppresses any diagnostic so it can be deleted.

The detection cannot live in :meth:`check` — it needs to know what every
*other* checker reported (and had filtered) over the whole run — so the
driver (:func:`repro.lint.cli.run_paths`) evaluates directive hit-counts
after all checkers finish and emits SUP01 diagnostics itself.  Partial
``--select`` runs only judge directives for checkers that actually ran,
and blanket ``disable=all`` directives only on full runs, so a narrowed
run never declares a live suppression stale.
"""

from __future__ import annotations

from repro.lint.base import Checker


class StaleSuppression(Checker):
    """Suppression comments must still suppress a live diagnostic."""

    code = "SUP01"
    description = (
        "turblint suppression comments must still suppress a live "
        "diagnostic (stale ones hide future regressions)"
    )

    # All logic lives in run_paths(): it compares each directive's
    # recorded hits against the set of checkers that ran.  The class
    # exists so the code is registered, selectable and documented.
