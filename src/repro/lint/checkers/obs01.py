"""OBS01 — observability discipline: no raw clocks, prints, or leaked spans.

The observability layer (:mod:`repro.obs`) is the engine's single point
of contact with the host: wall-clock reads live in ``repro.obs.clock``,
console output goes through ``repro.obs.report``, and tracing spans are
recorded by ``repro.obs.tracing``.  Three habits defeat that design:

* importing or calling ``time`` directly — timings escape the
  observability layer and (inside the engine proper) break COST01's
  determinism contract as well; use ``repro.obs.clock`` /
  ``Stopwatch``;
* calling ``print`` or writing to ``sys.stdout``/``sys.stderr`` — output
  cannot be redirected or silenced by tests and services that must keep
  stdout clean; use ``repro.obs.report``;
* reading the clock through ``datetime.now()``/``datetime.utcnow()`` —
  the same leak as ``time.*`` through a different door;
* opening a span without a ``with`` statement — a span assigned to a
  variable is not closed on exceptions, so the trace tree ends up with
  dangling, never-ended spans.

The server paths of :mod:`repro.net` and :mod:`repro.cluster` are fully
in scope: a node server's reader loop and the mediator's scatter are
exactly where stray ``time.time()`` timings and debugging ``print``
calls tend to accrete, and where they are least visible.

Unlike COST01, this checker covers the harness and the lint CLI too:
*everything* outside ``repro.obs`` itself reports and times through the
observability layer.
"""

from __future__ import annotations

import ast

from repro.lint.base import Checker, dotted_name, module_in
from repro.lint.diagnostics import Diagnostic, SourceFile


class ObsDiscipline(Checker):
    """Engine code talks to the host only through ``repro.obs``."""

    code = "OBS01"
    description = (
        "engine code must route clocks and console output through "
        "repro.obs (no direct time.* or print), and spans must be "
        "opened with a with-statement"
    )

    def applies(self, module: str) -> bool:
        if not module_in(module, "repro."):
            return False
        return not module_in(module, "repro.obs.")

    def check(self, source: SourceFile) -> list[Diagnostic]:
        diags: list[Diagnostic] = []
        parents = source.parents()
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                diags.extend(self._check_import(source, node))
            elif isinstance(node, ast.ImportFrom):
                diags.extend(self._check_import_from(source, node))
            elif isinstance(node, ast.Call):
                diags.extend(self._check_call(source, node, parents))
        return diags

    def _check_import(
        self, source: SourceFile, node: ast.Import
    ) -> list[Diagnostic]:
        return [
            self.report(
                source,
                node,
                f"direct 'import {alias.name}' — use repro.obs.clock "
                "(now/Stopwatch) so all wall-clock reads go through the "
                "observability layer",
            )
            for alias in node.names
            if alias.name == "time" or alias.name.startswith("time.")
        ]

    def _check_import_from(
        self, source: SourceFile, node: ast.ImportFrom
    ) -> list[Diagnostic]:
        if node.module != "time":
            return []
        return [
            self.report(
                source,
                node,
                f"direct 'from time import {alias.name}' — use "
                "repro.obs.clock (now/Stopwatch) so all wall-clock reads "
                "go through the observability layer",
            )
            for alias in node.names
        ]

    def _check_call(
        self,
        source: SourceFile,
        node: ast.Call,
        parents: dict[ast.AST, ast.AST],
    ) -> list[Diagnostic]:
        diags: list[Diagnostic] = []
        dotted = dotted_name(node.func)
        if dotted is not None and dotted.split(".")[0] == "time":
            diags.append(
                self.report(
                    source,
                    node,
                    f"direct wall-clock call {dotted}() — use "
                    "repro.obs.clock (now/Stopwatch) instead",
                )
            )
        if dotted is not None and dotted.split(".")[-2:] in (
            ["datetime", "now"],
            ["datetime", "utcnow"],
        ):
            diags.append(
                self.report(
                    source,
                    node,
                    f"wall-clock read {dotted}() — use repro.obs.clock "
                    "(now/unix_now/Stopwatch) so all wall-clock reads go "
                    "through the observability layer",
                )
            )
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            diags.append(
                self.report(
                    source,
                    node,
                    "bare print() — route human-facing output through "
                    "repro.obs.report so it can be redirected or silenced",
                )
            )
        if dotted in ("sys.stdout.write", "sys.stderr.write"):
            diags.append(
                self.report(
                    source,
                    node,
                    f"direct {dotted}() — route console output through "
                    "repro.obs.report so it can be redirected or silenced",
                )
            )
        if self._is_span_call(dotted) and not isinstance(
            parents.get(node), ast.withitem
        ):
            diags.append(
                self.report(
                    source,
                    node,
                    f"span opened outside a with-statement ({dotted}(...)) "
                    "— use 'with ... as span:' so the span closes on "
                    "every path",
                )
            )
        return diags

    @staticmethod
    def _is_span_call(dotted: str | None) -> bool:
        """Whether a call's dotted name opens a tracing span.

        Matches ``tracing.span``, ``TRACER.span``, ``obs.span`` and the
        bare ``span`` import, but not e.g. ``current_span``.
        """
        if dotted is None:
            return False
        return dotted.split(".")[-1] == "span"
