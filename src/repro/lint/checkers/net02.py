"""NET02 — wire throughput: no full-payload concatenation on the hot path.

The data plane's whole performance story rests on payloads staying a
*list of buffers* from the codec down to the socket: ``send_frame``
takes a sequence of parts and hands them to vectored I/O
(``socket.sendmsg``), and the receive side reads straight into
preallocated buffers.  Rebuilding a contiguous payload anywhere in
between silently reintroduces the O(payload) copy the fast path exists
to avoid — a 16 MiB point-set transfer would be memcpy'd once per such
site, and the copies dominate wall time long before the NIC does.

Three habits reintroduce the copy:

* ``b"".join(parts)`` (any ``bytes``-literal ``.join``) — materialises
  every part into one new buffer;
* ``payload = header + body`` / ``payload += chunk`` on wire-facing
  names — bytes ``+`` always copies both operands;
* ``bytes(payload)`` / ``payload.tobytes()`` on a wire-facing name —
  the transport hands out zero-copy views (of the receive buffer or of
  a shared-memory ring slot), and materialising one copies the whole
  payload right where the view was supposed to save it.  Consumers
  that must outlive the view copy only what they keep, under a
  non-wire name.

The checker is scoped to ``repro.net.`` minus ``repro.net.http``: the
HTTP sidecar speaks a text protocol for humans and dashboards, where a
join of a few hundred bytes is the idiomatic choice.  Control-plane
sites inside the scope (tiny handshake or halo messages) carry an
explicit ``# turblint: disable=NET02`` with a justification.
"""

from __future__ import annotations

import ast

from repro.lint.base import Checker, module_in
from repro.lint.diagnostics import Diagnostic, SourceFile

#: Identifiers that name wire-facing byte buffers.  Exact final-segment
#: matches only, so ``header_len + blob_len`` arithmetic stays legal.
_WIRE_NAMES = frozenset(
    {
        "payload",
        "payloads",
        "body",
        "frame",
        "frames",
        "blob",
        "blobs",
        "wire",
        "buf",
        "buffer",
        "message",
        "chunk",
        "chunks",
    }
)


class NetZeroCopy(Checker):
    """Wire payloads stay buffer lists; no hot-path concatenation."""

    code = "NET02"
    description = (
        "no full-payload concatenation in repro.net: no bytes-literal "
        ".join() and no +/+= on wire-facing buffer names — keep parts "
        "as a buffer list down to the vectored send"
    )

    def applies(self, module: str) -> bool:
        if module_in(module, "repro.net.http."):
            return False
        return module_in(module, "repro.net.")

    def check(self, source: SourceFile) -> list[Diagnostic]:
        diags: list[Diagnostic] = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call) and self._is_bytes_join(node):
                diags.append(
                    self.report(
                        source,
                        node,
                        "bytes .join() materialises one contiguous "
                        "payload — pass the part list to the vectored "
                        "writer instead (send_frame takes a sequence "
                        "of buffers)",
                    )
                )
            elif isinstance(node, ast.Call):
                name = self._full_copy(node)
                if name is not None:
                    diags.append(
                        self.report(
                            source,
                            node,
                            f"materialising {name} with bytes()/"
                            ".tobytes() copies the whole payload out of "
                            "its zero-copy view (receive buffer or shm "
                            "ring slot) — keep the view, or copy only "
                            "what outlives it under a non-wire name",
                        )
                    )
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, ast.Add
            ):
                name = self._wire_name(node.target)
                if name is not None:
                    diags.append(
                        self.report(
                            source,
                            node,
                            f"{name} += copies the whole accumulated "
                            "payload each iteration — append parts to "
                            "a list (or extend a bytearray of "
                            "compressed chunks under a non-wire name)",
                        )
                    )
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
                name = self._wire_name(node.left) or self._wire_name(
                    node.right
                )
                if name is not None:
                    diags.append(
                        self.report(
                            source,
                            node,
                            f"concatenating {name} with + copies both "
                            "operands — emit them as separate parts of "
                            "the frame's buffer list",
                        )
                    )
        return diags

    @classmethod
    def _full_copy(cls, node: ast.Call) -> str | None:
        """The wire name a call copies wholesale, if any.

        Matches ``bytes(<wire name>)`` and ``<wire name>.tobytes()``;
        slices (``bytes(view[:n])``) stay legal — bounded probes and
        header peeks are not full-payload copies.
        """
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id == "bytes"
            and len(node.args) == 1
            and not node.keywords
        ):
            return cls._wire_name(node.args[0])
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "tobytes"
            and not node.args
            and not node.keywords
        ):
            return cls._wire_name(func.value)
        return None

    @staticmethod
    def _is_bytes_join(node: ast.Call) -> bool:
        """Whether the call is ``<bytes literal>.join(...)``."""
        return (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and isinstance(node.func.value, ast.Constant)
            and isinstance(node.func.value.value, bytes)
        )

    @staticmethod
    def _wire_name(node: ast.AST) -> str | None:
        """The node's wire-facing identifier, if it has one.

        Matches the *final* segment of a name or attribute chain
        (``payload``, ``self.payload``) against the wire vocabulary.
        """
        if isinstance(node, ast.Name) and node.id in _WIRE_NAMES:
            return node.id
        if isinstance(node, ast.Attribute) and node.attr in _WIRE_NAMES:
            return node.attr
        return None
