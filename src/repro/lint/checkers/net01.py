"""NET01 — network discipline: every blocking socket call has a deadline.

The transport tier (:mod:`repro.net`) promises that no RPC can hang a
query forever: every connect, send and receive is armed with a timeout
derived from an explicit :class:`~repro.net.frame.Deadline`.  Three
habits silently break that promise:

* ``sock.settimeout(None)`` — switches the socket back to fully
  blocking mode, so the next ``recv`` can wait forever;
* ``socket.create_connection(address)`` without a ``timeout=``
  argument — inherits the global default (blocking), so a dead host
  stalls the caller until the kernel gives up, minutes later;
* calling ``.connect()`` / ``.connect_ex()`` directly, or ``.recv()`` /
  ``.recvfrom()`` / ``.accept()`` in a function that never arms the
  socket with ``.settimeout(...)`` — a blocking wait with no budget.

The checker is deliberately scoped to ``repro.net.``: that package owns
every socket in the engine, so a socket call anywhere else is already a
layering bug other review catches.
"""

from __future__ import annotations

import ast

from repro.lint.base import Checker, dotted_name, module_in
from repro.lint.diagnostics import Diagnostic, SourceFile

#: Socket methods that block until data (or a peer) arrives.
_BLOCKING_RECEIVERS = ("recv", "recvfrom", "recv_into", "accept")

#: Socket methods that block while establishing a connection.
_RAW_CONNECTORS = ("connect", "connect_ex")


class NetDeadlines(Checker):
    """Blocking socket operations in repro.net must carry deadlines."""

    code = "NET01"
    description = (
        "socket calls in repro.net must carry explicit deadlines: no "
        "settimeout(None), no create_connection without timeout=, no "
        "bare connect, and no recv/accept in a function that never "
        "arms settimeout"
    )

    def applies(self, module: str) -> bool:
        return module_in(module, "repro.net.")

    def check(self, source: SourceFile) -> list[Diagnostic]:
        diags: list[Diagnostic] = []
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                diags.extend(self._check_function(source, node))
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                diags.extend(self._check_call(source, node))
        return diags

    def _check_call(
        self, source: SourceFile, node: ast.Call
    ) -> list[Diagnostic]:
        diags: list[Diagnostic] = []
        method = self._method_name(node)
        if method == "settimeout" and self._first_arg_is_none(node):
            diags.append(
                self.report(
                    source,
                    node,
                    "settimeout(None) puts the socket in fully blocking "
                    "mode — arm it with deadline.remaining() instead",
                )
            )
        if method in _RAW_CONNECTORS and not self._is_self_call(node):
            diags.append(
                self.report(
                    source,
                    node,
                    f"bare .{method}() blocks with no budget — use "
                    "socket.create_connection(address, "
                    "timeout=deadline.remaining())",
                )
            )
        dotted = dotted_name(node.func)
        if (
            dotted is not None
            and dotted.split(".")[-1] == "create_connection"
            and not self._has_timeout(node)
        ):
            diags.append(
                self.report(
                    source,
                    node,
                    "create_connection without timeout= inherits the "
                    "blocking default — pass timeout=deadline.remaining()",
                )
            )
        return diags

    def _check_function(
        self,
        source: SourceFile,
        function: "ast.FunctionDef | ast.AsyncFunctionDef",
    ) -> list[Diagnostic]:
        """Receives inside ``function`` need a ``settimeout`` in scope.

        The arming call and the blocking call usually sit a few lines
        apart (re-armed per OS call from the shared deadline), so the
        function body is the right scope to pair them in.
        """
        calls = [
            node
            for node in ast.walk(function)
            if isinstance(node, ast.Call)
        ]
        if any(self._method_name(call) == "settimeout" for call in calls):
            return []
        return [
            self.report(
                source,
                call,
                f".{self._method_name(call)}() in {function.name}() with "
                "no settimeout(...) in scope — arm the socket from the "
                "call's deadline before blocking on it",
            )
            for call in calls
            if self._method_name(call) in _BLOCKING_RECEIVERS
        ]

    @staticmethod
    def _method_name(node: ast.Call) -> str | None:
        """The attribute name of a method-style call, if any."""
        if isinstance(node.func, ast.Attribute):
            return node.func.attr
        return None

    @staticmethod
    def _first_arg_is_none(node: ast.Call) -> bool:
        """Whether the call's sole positional argument is ``None``."""
        return (
            len(node.args) == 1
            and isinstance(node.args[0], ast.Constant)
            and node.args[0].value is None
        )

    @staticmethod
    def _is_self_call(node: ast.Call) -> bool:
        """Whether the receiver is ``self`` (our own wrapper methods)."""
        return (
            isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
        )

    @staticmethod
    def _has_timeout(node: ast.Call) -> bool:
        """Whether the call passes a timeout (keyword or 2nd positional)."""
        if len(node.args) >= 2:
            return True
        return any(kw.arg == "timeout" for kw in node.keywords)
