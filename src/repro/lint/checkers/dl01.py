"""DL01 — deadline propagation over the whole-program call graph.

Every RPC in the cluster carries a :class:`repro.net.frame.Deadline`;
the invariant is that a blocking socket operation can never run with an
*unbounded* budget, and that the request plane lets callers bound it.
Two checks, both over the turbscan call graph:

1. **Unbudgeted path**: from any service entry point (public methods of
   ``Mediator``/``WebService``/``NodeServer``/``HttpFrontend`` plus the
   HTTP ``do_*`` handlers) there must be *no* call path to a raw socket
   operation that avoids every *deadline origin* — a function that
   constructs a ``Deadline``, reads a configured timeout attribute or
   constant, or arms a socket with a constant ``settimeout``.  A
   function that merely *receives* a deadline parameter threads a
   budget but does not originate one, so it does not break a path.
2. **Caller budget**: request-plane entry points (public ``Mediator``
   methods and ``WebService.handle``) that can reach a socket must
   accept a caller-controllable deadline — a ``timeout``/``deadline``
   parameter or a budget derived from the request — rather than relying
   solely on transport-level defaults.

Both checks resolve virtual calls (``self.transport`` dispatches to the
TCP transport even when the in-process one is the annotated type) and
follow spawn edges, so work handed to the scatter pool is still on the
path.
"""

from __future__ import annotations

import ast

from repro.lint.base import Checker, dotted_name
from repro.lint.diagnostics import Diagnostic
from repro.lint.program import FunctionInfo, Program

#: Socket methods that block unconditionally.
_SINK_ATTRS = {"sendall", "sendmsg", "sendto", "recv_into", "recvfrom"}
#: Socket methods that block but have generic names; only counted when
#: the receiver expression looks socket-like.
_SINK_ATTRS_GUARDED = {"recv", "accept", "connect"}
_SOCKETISH = ("sock", "listener")

#: Name fragments that mark a parameter/attribute as budget-carrying.
_BUDGET_FRAGMENTS = ("timeout", "deadline")

#: Classes whose public methods are service entry points, by bare name
#: (matched inside ``repro.cluster.``/``repro.net.`` modules).
_ENTRY_CLASSES = {
    "Mediator",
    "WebService",
    "NodeServer",
    "HttpFrontend",
    "AsyncHttpFrontend",
}

#: Awaited stream/socket coroutines that block on a peer.  Inside
#: ``repro.net.`` every such await must sit under an asyncio deadline —
#: an ``asyncio.wait_for(...)`` wrapper or an ``async with
#: asyncio.timeout(...)`` / ``timeout_at(...)`` block — because an
#: event loop has no per-socket ``settimeout``: an unbounded await on a
#: half-dead peer parks the coroutine (and its keep-alive slot)
#: forever.
_AIO_SINK_ATTRS = {
    "read",
    "readline",
    "readexactly",
    "readuntil",
    "drain",
    "wait_closed",
    "open_connection",
    "accept",
    "sock_recv",
    "sock_sendall",
}

#: Call names that arm an asyncio deadline over their operand/body.
_AIO_DEADLINE_CALLS = {"wait_for", "timeout", "timeout_at"}
#: Entry classes subject to the caller-budget check (request plane).
_BUDGET_CLASSES = {"Mediator", "WebService"}


def socket_sink_functions(program: Program) -> set[str]:
    """Functions performing raw (blocking) socket operations."""
    sinks: set[str] = set()
    for fn in program.functions.values():
        if not fn.module.startswith("repro."):
            continue
        if any(True for _ in _raw_socket_calls(fn)):
            sinks.add(fn.qualname)
    return sinks


def _raw_socket_calls(fn: FunctionInfo) -> list[ast.Call]:
    """Raw socket-op call nodes inside one function body."""
    calls = []
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Call):
            continue
        dotted = dotted_name(node.func)
        if dotted and dotted.endswith("create_connection"):
            calls.append(node)
            continue
        if not isinstance(node.func, ast.Attribute):
            continue
        attr = node.func.attr
        if attr in _SINK_ATTRS:
            calls.append(node)
        elif attr in _SINK_ATTRS_GUARDED:
            receiver = (dotted_name(node.func.value) or "").lower()
            if any(hint in receiver for hint in _SOCKETISH):
                calls.append(node)
    return calls


def deadline_params(fn: FunctionInfo) -> set[str]:
    """Parameter names of ``fn`` that carry a deadline/timeout budget."""
    names: set[str] = set()
    args = fn.node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        lowered = arg.arg.lower()
        if any(frag in lowered for frag in _BUDGET_FRAGMENTS):
            names.add(arg.arg)
        elif arg.annotation is not None and "Deadline" in ast.dump(
            arg.annotation
        ):
            names.add(arg.arg)
    return names


def is_deadline_origin(fn: FunctionInfo) -> bool:
    """Whether ``fn`` *originates* a budget (rather than threading one).

    True when the body constructs a ``Deadline``, reads a timeout-named
    attribute/constant or request key, or arms a socket with a constant
    ``settimeout``.  Reads of the function's own deadline parameters do
    not count: those thread the caller's budget.
    """
    params = deadline_params(fn)
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Call):
            dotted = dotted_name(node.func) or ""
            if "Deadline" in dotted:
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "settimeout"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value is not None
            ):
                return True
        elif isinstance(node, ast.Attribute):
            if _budget_named(node.attr):
                return True
        elif isinstance(node, ast.Name):
            if node.id not in params and _budget_named(node.id):
                return True
        elif isinstance(node, ast.Constant) and isinstance(
            node.value, str
        ):
            if _budget_named(node.value):
                return True
    return False


def _budget_named(name: str) -> bool:
    lowered = name.lower()
    return any(frag in lowered for frag in _BUDGET_FRAGMENTS)


class DeadlinePropagation(Checker):
    """Socket ops must be reachable only through deadline origins."""

    code = "DL01"
    description = (
        "every call path from a service entry point to a blocking "
        "socket op must thread or originate a Deadline"
    )
    whole_program = True

    def check_program(self, program: Program) -> list[Diagnostic]:
        """Run both deadline checks over the project call graph."""
        diags = self._check_async_deadlines(program)
        sinks = socket_sink_functions(program)
        if not sinks:
            return diags
        origins = {
            fn.qualname
            for fn in program.functions.values()
            if is_deadline_origin(fn)
        }
        entries = self._entry_points(program)
        reaches_sink = program.reverse_reachable(sinks)
        for entry, budget_plane in entries:
            fn = program.functions[entry]
            if fn.qualname in sinks:
                continue
            if fn.qualname not in reaches_sink:
                continue
            diags.extend(
                self._check_unbudgeted_path(program, fn, sinks, origins)
            )
            if budget_plane:
                diags.extend(self._check_caller_budget(fn, origins))
        return diags

    def _check_async_deadlines(
        self, program: Program
    ) -> list[Diagnostic]:
        """Awaited socket ops in ``repro.net.`` must carry deadlines.

        The threaded checks above reason over the call graph because a
        thread's budget travels through function calls; an ``await``'s
        budget is *lexical* (the enclosing ``wait_for``/``timeout``
        block), so this check is purely syntactic per coroutine.
        """
        diags: list[Diagnostic] = []
        for fn in program.functions.values():
            if not fn.module.startswith("repro.net."):
                continue
            if not isinstance(fn.node, ast.AsyncFunctionDef):
                continue
            source = program.sources.get(fn.module)
            if source is None:
                continue
            parents = source.parents()
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Await):
                    continue
                call = node.value
                if not isinstance(call, ast.Call) or not isinstance(
                    call.func, ast.Attribute
                ):
                    continue
                if call.func.attr not in _AIO_SINK_ATTRS:
                    continue
                if _await_has_deadline(node, parents):
                    continue
                diags.append(
                    Diagnostic(
                        self.code,
                        f"awaited socket operation .{call.func.attr}() "
                        "carries no deadline origin — wrap it in "
                        "asyncio.wait_for(...) or run it inside an "
                        "async with asyncio.timeout(...) block",
                        fn.path,
                        call.lineno,
                        call.col_offset,
                    )
                )
        return diags

    def _entry_points(
        self, program: Program
    ) -> list[tuple[str, bool]]:
        """``(function qualname, is request plane)`` service entries."""
        entries: list[tuple[str, bool]] = []
        for info in program.classes.values():
            if not info.module.startswith(("repro.cluster.", "repro.net.")):
                continue
            is_entry_class = info.name in _ENTRY_CLASSES
            for name, fqual in sorted(info.methods.items()):
                if name.startswith("do_"):
                    entries.append((fqual, False))
                elif is_entry_class and not name.startswith("_"):
                    entries.append(
                        (fqual, info.name in _BUDGET_CLASSES)
                    )
        return entries

    def _check_unbudgeted_path(
        self,
        program: Program,
        fn: FunctionInfo,
        sinks: set[str],
        origins: set[str],
    ) -> list[Diagnostic]:
        if fn.qualname in origins:
            return []
        path = program.find_path(
            fn.qualname, sinks, avoid=frozenset(origins)
        )
        if path is None:
            return []
        rendered = " -> ".join(
            [_short(fn.qualname)] + [_short(edge.callee) for edge in path]
        )
        return [
            Diagnostic(
                self.code,
                f"call path {rendered} reaches a blocking socket op "
                "without passing any deadline origin — the operation "
                "can block forever",
                fn.path,
                fn.node.lineno,
            )
        ]

    def _check_caller_budget(
        self, fn: FunctionInfo, origins: set[str]
    ) -> list[Diagnostic]:
        if deadline_params(fn) or fn.qualname in origins:
            return []
        return [
            Diagnostic(
                self.code,
                f"entry point {_short(fn.qualname)}() can reach blocking "
                "socket ops but accepts no timeout/deadline — callers "
                "cannot bound the request; thread a deadline parameter "
                "through to the transport",
                fn.path,
                fn.node.lineno,
            )
        ]


def _short(qualname: str) -> str:
    """``Class.method`` (or ``module.func``) tail of a qualname."""
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) >= 2 else qualname


def _await_has_deadline(
    node: ast.Await, parents: dict[ast.AST, ast.AST]
) -> bool:
    """Whether an awaited call sits under an asyncio deadline.

    Climbs the ancestor chain looking for an ``async with
    asyncio.timeout(...)`` / ``timeout_at(...)`` block or an enclosing
    ``wait_for(...)`` call; stops at the nearest function boundary —
    a deadline armed in the *calling* coroutine does not bound this
    await.
    """
    current = parents.get(node)
    while current is not None:
        if isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            return False
        if isinstance(current, ast.AsyncWith):
            for item in current.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call):
                    dotted = dotted_name(expr.func) or ""
                    if dotted.rsplit(".", 1)[-1] in _AIO_DEADLINE_CALLS:
                        return True
        if isinstance(current, ast.Call):
            dotted = dotted_name(current.func) or ""
            if dotted.rsplit(".", 1)[-1] in _AIO_DEADLINE_CALLS:
                return True
        current = parents.get(current)
    return False
