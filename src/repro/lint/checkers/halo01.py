"""HALO01 — stencil/halo consistency.

Threshold queries over derived fields evaluate finite-difference
stencils near block boundaries, so every data block is fetched with a
halo wide enough for the stencil (paper §3: "the evaluation of the
derived fields near the border of the data cube requires data from
adjacent data cubes").  A halo narrower than the stencil half-width
reads garbage; a hard-coded width silently breaks when the FD order
changes.  Three structural rules keep the contract visible in the AST:

* H1 — a ``*COEFFICIENTS`` table maps FD order ``n`` to exactly
  ``n // 2`` one-sided coefficients (order must be even and positive);
* H2 — the ``margin`` argument of the interior operators must derive
  from ``kernel_half_width(...)`` (directly, via a local binding, via a
  pass-through parameter, or arithmetic over those) — never a numeric
  literal;
* H3 — a :class:`~repro.fields.derived.DerivedField` registered with
  ``differential=True`` must have a norm function that applies a
  stencil operator, and vice versa (wrong flags under- or over-fetch
  the halo).
"""

from __future__ import annotations

import ast

from repro.lint.base import Checker, dotted_name, module_in
from repro.lint.diagnostics import Diagnostic, SourceFile

#: Interior stencil operators and the positional index of ``margin``.
INTERIOR_OPS = {
    "curl_interior": 3,
    "gradient_tensor_interior": 3,
    "derivative_interior": 4,
}
#: Operators whose margin may be omitted (they default it safely).
MARGIN_OPTIONAL = {"derivative_interior"}
HALF_WIDTH_FN = "kernel_half_width"


def _calls_half_width(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            dotted = dotted_name(sub.func)
            if dotted is not None and dotted.split(".")[-1] == HALF_WIDTH_FN:
                return True
    return False


class HaloConsistency(Checker):
    """Halo margins and coefficient tables agree with the FD order."""

    code = "HALO01"
    description = (
        "stencil coefficient tables, halo margins and DerivedField "
        "differential flags must agree with kernel_half_width"
    )

    def applies(self, module: str) -> bool:
        return module_in(module, "repro.")

    def check(self, source: SourceFile) -> list[Diagnostic]:
        diags: list[Diagnostic] = []
        diags.extend(self._check_coefficient_tables(source))
        diags.extend(self._check_margins(source))
        diags.extend(self._check_derived_fields(source))
        return diags

    # -- H1: coefficient tables -----------------------------------------------

    def _check_coefficient_tables(
        self, source: SourceFile
    ) -> list[Diagnostic]:
        diags: list[Diagnostic] = []
        for stmt in source.tree.body:
            if not (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id.endswith("COEFFICIENTS")
                and isinstance(stmt.value, ast.Dict)
            ):
                continue
            for key, value in zip(stmt.value.keys, stmt.value.values):
                if not (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, int)
                ):
                    continue
                order = key.value
                if order <= 0 or order % 2:
                    diags.append(
                        self.report(
                            source,
                            key,
                            f"FD order {order} must be a positive even "
                            "integer (central differences)",
                        )
                    )
                    continue
                if isinstance(value, (ast.Tuple, ast.List)) and len(
                    value.elts
                ) != order // 2:
                    diags.append(
                        self.report(
                            source,
                            value,
                            f"order-{order} stencil must list exactly "
                            f"{order // 2} one-sided coefficients "
                            f"(found {len(value.elts)}) — the halo "
                            "half-width is order // 2",
                        )
                    )
        return diags

    # -- H2: margins derive from kernel_half_width ----------------------------

    def _check_margins(self, source: SourceFile) -> list[Diagnostic]:
        diags: list[Diagnostic] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            op = dotted.split(".")[-1]
            if op not in INTERIOR_OPS:
                continue
            margin = self._margin_argument(node, INTERIOR_OPS[op])
            if margin is None:
                if op not in MARGIN_OPTIONAL:
                    diags.append(
                        self.report(
                            source,
                            node,
                            f"{op}() called without an explicit margin — "
                            "pass kernel_half_width(order) so the halo "
                            "tracks the stencil",
                        )
                    )
                continue
            if not self._margin_allowed(source, node, margin):
                what = (
                    f"hard-coded halo margin {margin.value!r}"
                    if isinstance(margin, ast.Constant)
                    else "halo margin not derived from kernel_half_width"
                )
                diags.append(
                    self.report(
                        source,
                        margin,
                        f"{what} in {op}() — derive it from "
                        "kernel_half_width(order) so the halo tracks the "
                        "stencil order",
                    )
                )
        return diags

    def _margin_argument(
        self, call: ast.Call, positional: int
    ) -> ast.expr | None:
        for keyword in call.keywords:
            if keyword.arg == "margin":
                return keyword.value
        if len(call.args) > positional:
            return call.args[positional]
        return None

    def _margin_allowed(
        self, source: SourceFile, call: ast.Call, margin: ast.expr
    ) -> bool:
        if margin is None or isinstance(margin, ast.Constant):
            return False
        if _calls_half_width(margin):
            return True
        allowed = self._allowed_names(source, call)
        for sub in ast.walk(margin):
            if isinstance(sub, ast.Name) and sub.id in allowed:
                return True
        return False

    def _allowed_names(self, source: SourceFile, call: ast.Call) -> set[str]:
        """Names bound from kernel_half_width, or enclosing parameters."""
        allowed: set[str] = set()
        for scope in source.enclosing(
            call, ast.FunctionDef, ast.AsyncFunctionDef
        ):
            args = scope.args
            for arg in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
            ):
                allowed.add(arg.arg)
            for node in ast.walk(scope):
                if isinstance(node, ast.Assign) and _calls_half_width(
                    node.value
                ):
                    allowed.update(
                        t.id
                        for t in node.targets
                        if isinstance(t, ast.Name)
                    )
                elif isinstance(node, ast.AnnAssign):
                    if node.value is not None and _calls_half_width(
                        node.value
                    ):
                        if isinstance(node.target, ast.Name):
                            allowed.add(node.target.id)
        return allowed

    # -- H3: DerivedField differential flag matches the norm ------------------

    def _check_derived_fields(self, source: SourceFile) -> list[Diagnostic]:
        module_defs: dict[str, ast.FunctionDef] = {
            stmt.name: stmt
            for stmt in source.tree.body
            if isinstance(stmt, ast.FunctionDef)
        }
        diags: list[Diagnostic] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None or dotted.split(".")[-1] != "DerivedField":
                continue
            differential = self._argument(node, "differential", 3)
            norm = self._argument(node, "norm", 5)
            if not (
                isinstance(differential, ast.Constant)
                and isinstance(differential.value, bool)
                and isinstance(norm, ast.Name)
                and norm.id in module_defs
            ):
                continue  # dynamically built (expression compiler) — skip
            uses_stencil = self._uses_stencil(module_defs[norm.id])
            if differential.value and not uses_stencil:
                diags.append(
                    self.report(
                        source,
                        node,
                        f"DerivedField registered with differential=True "
                        f"but norm {norm.id!r} applies no stencil operator "
                        "— the engine would fetch a halo it never uses",
                    )
                )
            elif not differential.value and uses_stencil:
                diags.append(
                    self.report(
                        source,
                        node,
                        f"DerivedField registered with differential=False "
                        f"but norm {norm.id!r} applies a stencil operator "
                        "— blocks would be fetched without the halo the "
                        "stencil needs",
                    )
                )
        return diags

    def _argument(
        self, call: ast.Call, name: str, positional: int
    ) -> ast.expr | None:
        for keyword in call.keywords:
            if keyword.arg == name:
                return keyword.value
        if len(call.args) > positional:
            return call.args[positional]
        return None

    def _uses_stencil(self, fn: ast.FunctionDef) -> bool:
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if (
                    dotted is not None
                    and dotted.split(".")[-1] in INTERIOR_OPS
                ):
                    return True
        return False
