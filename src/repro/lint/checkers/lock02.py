"""LOCK02 — whole-program lock-order graph and locks held across I/O.

LOCK01 sees one class at a time and propagates acquisitions one call
level deep; real deadlock cycles in this codebase cross layers (pool ->
client, server -> storage, mediator -> pool).  LOCK02 rebuilds the
acquisition analysis on the turbscan :class:`~repro.lint.program.Program`:

* every ``with self.lock`` / ``with obj.lock`` block is resolved to a
  lock identity ``Class.attr`` (a ``Condition`` wrapping another lock is
  an alias of the wrapped lock, not a new one);
* per-function summaries record which locks a function acquires and
  which calls it makes while holding them; acquisition sets are closed
  transitively over *synchronous* call edges (spawned work starts with a
  fresh lock stack);
* the resulting global graph must be acyclic, and no lock may be held
  across a call that transitively reaches a raw socket operation (the
  held-across-blocking check; deliberate cases carry a justified
  suppression).

The runtime sanitizer (``repro.sanitize``) records the *witnessed* edge
set while the concurrency suites run; pass it via ``--witness`` (or the
``REPRO_LINT_WITNESS`` environment variable) and cycle reports annotate
each edge as runtime-confirmed or never witnessed, separating live
deadlock risk from static over-approximation.

Like LOCK01, lock identity is syntactic: one lock object shared by two
classes appears as two nodes, which under-reports but never invents
edges.  Same-identity edges (two instances of the same class) are
skipped rather than reported as self-cycles.
"""

from __future__ import annotations

import ast
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.base import Checker, dotted_name
from repro.lint.checkers.dl01 import socket_sink_functions
from repro.lint.checkers.lock01 import LOCK_FACTORIES, find_cycles
from repro.lint.diagnostics import Diagnostic
from repro.lint.program import FunctionInfo, Program

#: Environment variable naming a witness file (CI convenience).
WITNESS_ENV = "REPRO_LINT_WITNESS"


@dataclass
class _Summary:
    """What one function does with locks."""

    acquires: set[str] = field(default_factory=set)
    #: (held lock ids, call line) for every call made under a lock.
    held_calls: list[tuple[frozenset[str], int]] = field(
        default_factory=list
    )
    #: direct nested-with edges (held -> taken, line).
    edges: list[tuple[str, str, int]] = field(default_factory=list)


class LockOrderWholeProgram(Checker):
    """Global lock acquisition graph: acyclic, never held across I/O."""

    code = "LOCK02"
    description = (
        "the whole-program lock acquisition graph must stay acyclic "
        "and no lock may be held across a blocking network call"
    )
    whole_program = True

    def __init__(self) -> None:
        self._witness: set[tuple[str, str]] | None = None
        env_path = os.environ.get(WITNESS_ENV)
        if env_path:
            self.load_witness(env_path)

    def load_witness(self, path: str | Path) -> None:
        """Load a sanitizer-exported witnessed lock-order edge set."""
        data = json.loads(Path(path).read_text())
        self._witness = {
            (edge["from"], edge["to"]) for edge in data.get("edges", [])
        }

    # -- lock collection ---------------------------------------------------

    def _collect_locks(
        self, program: Program
    ) -> dict[str, dict[str, str]]:
        """Per class qualname: attr -> canonical lock attr.

        ``threading.Condition(self._lock)`` makes the condition attr an
        alias of ``_lock`` so condition use never fabricates a second
        node for the same underlying mutex.
        """
        table: dict[str, dict[str, str]] = {}
        for info in program.classes.values():
            if not info.module.startswith("repro."):
                continue
            attrs: dict[str, str] = {}
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    canonical = self._lock_canonical(
                        target.attr, node.value, attrs
                    )
                    if canonical is not None:
                        attrs[target.attr] = canonical
            if attrs:
                table[info.qualname] = attrs
        return table

    @staticmethod
    def _lock_canonical(
        attr: str, value: ast.expr, known: dict[str, str]
    ) -> str | None:
        if not isinstance(value, ast.Call):
            return None
        dotted = dotted_name(value.func)
        factory = dotted.split(".")[-1] if dotted else None
        if factory not in LOCK_FACTORIES:
            return None
        if factory == "Condition" and value.args:
            wrapped = dotted_name(value.args[0])
            if wrapped and wrapped.startswith("self."):
                inner = wrapped[len("self.") :]
                return known.get(inner, inner)
        return attr

    # -- per-function summaries --------------------------------------------

    def _summarize(
        self,
        program: Program,
        fn: FunctionInfo,
        locks: dict[str, dict[str, str]],
    ) -> _Summary:
        summary = _Summary()

        def lock_id(expr: ast.expr) -> str | None:
            if not isinstance(expr, ast.Attribute):
                return None
            receiver = program.expr_type(fn, expr.value)
            if receiver is None or receiver not in locks:
                return None
            canonical = locks[receiver].get(expr.attr)
            if canonical is None:
                return None
            cls_name = program.classes[receiver].name
            return f"{cls_name}.{canonical}"

        def record_calls(node: ast.AST, stack: list[str]) -> None:
            if not stack:
                return
            held = frozenset(stack)
            for call in _expr_calls(node):
                summary.held_calls.append((held, call.lineno))

        def walk(stmts: list[ast.stmt], stack: list[str], deferred: bool) -> None:
            for stmt in stmts:
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    inner = list(stack)
                    for item in stmt.items:
                        record_calls(item, inner)
                        taken = lock_id(item.context_expr)
                        if taken is None:
                            continue
                        for held in inner:
                            if held != taken:
                                summary.edges.append(
                                    (held, taken, item.context_expr.lineno)
                                )
                        if not deferred:
                            summary.acquires.add(taken)
                        inner.append(taken)
                    walk(stmt.body, inner, deferred)
                    continue
                if isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    walk(stmt.body, [], True)
                    continue
                record_calls(stmt, stack)
                for attr in ("body", "orelse", "finalbody"):
                    nested = getattr(stmt, attr, None)
                    if nested and isinstance(nested, list) and nested and isinstance(nested[0], ast.stmt):
                        walk(nested, stack, deferred)
                for handler in getattr(stmt, "handlers", []):
                    walk(handler.body, stack, deferred)

        walk(list(fn.node.body), [], False)
        return summary

    # -- the whole-program pass --------------------------------------------

    def check_program(self, program: Program) -> list[Diagnostic]:
        """Build the global acquisition graph and check both invariants."""
        locks = self._collect_locks(program)
        if not locks:
            return []
        summaries = {
            fn.qualname: self._summarize(program, fn, locks)
            for fn in program.functions.values()
            if fn.module.startswith("repro.")
        }
        closure = self._transitive_acquisitions(program, summaries)
        edges = self._global_edges(program, summaries, closure)
        diags = self._cycle_diagnostics(edges)
        diags.extend(
            self._blocking_diagnostics(program, summaries, closure)
        )
        return diags

    def _transitive_acquisitions(
        self, program: Program, summaries: dict[str, _Summary]
    ) -> dict[str, set[str]]:
        """Locks each function may acquire, closed over call edges."""
        closure = {
            name: set(summary.acquires)
            for name, summary in summaries.items()
        }
        call_edges = [
            (edge.caller, edge.callee)
            for edge in program.edges
            if edge.kind == "call"
            and edge.caller in closure
            and edge.callee in closure
        ]
        changed = True
        while changed:
            changed = False
            for caller, callee in call_edges:
                missing = closure[callee] - closure[caller]
                if missing:
                    closure[caller] |= missing
                    changed = True
        return closure

    def _global_edges(
        self,
        program: Program,
        summaries: dict[str, _Summary],
        closure: dict[str, set[str]],
    ) -> dict[tuple[str, str], tuple[str, int]]:
        edges: dict[tuple[str, str], tuple[str, int]] = {}
        for name, summary in summaries.items():
            fn = program.functions[name]
            for held, taken, line in summary.edges:
                edges.setdefault((held, taken), (fn.path, line))
            for held_set, line in summary.held_calls:
                for callee in program.callees_at(name, line):
                    for taken in closure.get(callee, ()):
                        for held in held_set:
                            if held != taken:
                                edges.setdefault(
                                    (held, taken), (fn.path, line)
                                )
        return edges

    def _cycle_diagnostics(
        self, edges: dict[tuple[str, str], tuple[str, int]]
    ) -> list[Diagnostic]:
        graph: dict[str, list[str]] = {}
        for a, b in edges:
            graph.setdefault(a, []).append(b)
        diags = []
        for cycle in find_cycles(graph):
            first = (cycle[0], cycle[1])
            path, line = edges.get(first, ("<lock graph>", 1))
            message = (
                "whole-program lock-order cycle: "
                + " -> ".join(cycle)
                + " — threads taking these locks in opposite orders "
                "can deadlock"
            )
            if self._witness is not None:
                notes = []
                for a, b in zip(cycle, cycle[1:]):
                    seen = (a, b) in self._witness
                    notes.append(
                        f"{a}->{b} "
                        + ("witnessed at runtime" if seen else "never witnessed")
                    )
                message += " [" + "; ".join(notes) + "]"
            diags.append(Diagnostic(self.code, message, path, line))
        return diags

    def _blocking_diagnostics(
        self,
        program: Program,
        summaries: dict[str, _Summary],
        closure: dict[str, set[str]],
    ) -> list[Diagnostic]:
        sinks = socket_sink_functions(program)
        blocking = program.reverse_reachable(sinks, spawn=False)
        diags = []
        for name, summary in summaries.items():
            fn = program.functions[name]
            reported: set[int] = set()
            for held_set, line in summary.held_calls:
                if line in reported:
                    continue
                offenders = sorted(
                    callee
                    for callee in program.callees_at(name, line)
                    if callee in blocking
                )
                if not offenders:
                    continue
                reported.add(line)
                held = ", ".join(sorted(held_set))
                diags.append(
                    Diagnostic(
                        self.code,
                        f"lock(s) {held} held across blocking network "
                        f"call {_tail(offenders[0])}() — stalls every "
                        "other thread contending for the lock for up to "
                        "the full network timeout",
                        fn.path,
                        line,
                    )
                )
        return diags


def _tail(qualname: str) -> str:
    return ".".join(qualname.split(".")[-2:])


def _expr_calls(node: ast.AST) -> list[ast.Call]:
    """Call nodes in a statement's expressions, excluding nested
    statements, lambdas and function definitions (those run elsewhere or
    are walked separately with the correct lock stack)."""
    out: list[ast.Call] = []

    def rec(current: ast.AST) -> None:
        for child in ast.iter_child_nodes(current):
            if isinstance(
                child,
                (
                    ast.stmt,
                    ast.ExceptHandler,
                    ast.Lambda,
                    ast.FunctionDef,
                    ast.AsyncFunctionDef,
                ),
            ):
                continue
            if isinstance(child, ast.Call):
                out.append(child)
            rec(child)

    rec(node)
    return out
