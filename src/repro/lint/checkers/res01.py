"""RES01 — resource ownership for closeable objects.

Connections, pools, servers and databases all expose ``close()`` (or
``shutdown()``); leaking one silently pins sockets, file descriptors
and flusher threads.  The rule: every instantiation of a project class
that defines ``close``/``shutdown``, created inside
``repro.net``/``repro.storage``/``repro.cluster``, must have a clear
owner.  Accepted dispositions of the new object:

* used as a context manager (``with Resource(...):``);
* stored on ``self`` (attribute, container attribute or subscript) of a
  class that itself has ``close``/``shutdown`` — ownership rolls up;
* returned or yielded to the caller — ownership transfers out;
* passed as an argument to another call — ownership transfers in;
* explicitly ``close()``d / ``shutdown()``  in the same function.

Anything else — a bare expression statement, a local that is never
closed, returned or handed off, or storage on an owner that cannot
release it — is a leak path.  The analysis is intentionally flow-
insensitive (a close on *any* path counts), so it under-reports rather
than nags about error-path cleanup; ERR01 and context-manager idioms
cover those.
"""

from __future__ import annotations

import ast

from repro.lint.base import Checker, dotted_name
from repro.lint.diagnostics import Diagnostic
from repro.lint.program import FunctionInfo, Program

_SCOPES = ("repro.net.", "repro.storage.", "repro.cluster.")
_CLOSERS = ("close", "shutdown")

#: Stdlib factories returning a closeable server/listener object.  The
#: asyncio door's ``await asyncio.start_server(...)`` pins a listening
#: socket exactly like a project NodeServer does, so its result is held
#: to the same ownership rule even though the class is not ours.
_SERVER_FACTORIES = ("start_server", "start_unix_server", "create_server")


class ResourceOwnership(Checker):
    """Every closeable created in net/storage/cluster has an owner."""

    code = "RES01"
    description = (
        "objects with close()/shutdown() created in net/storage/cluster "
        "must be closed, owned by a closeable object, or handed off"
    )
    whole_program = True

    def check_program(self, program: Program) -> list[Diagnostic]:
        """Audit every resolved constructor call site in scope."""
        diags: list[Diagnostic] = self._check_server_factories(program)
        resources = self._resource_classes(program)
        if not resources:
            return diags
        for site in program.instantiations:
            fn = program.functions.get(site.function)
            if fn is None or not fn.module.startswith(_SCOPES):
                continue
            if site.cls not in resources:
                continue
            short = program.classes[site.cls].name
            problem = self._disposition(program, fn, site.node, short)
            if problem is not None:
                diags.append(
                    Diagnostic(
                        self.code,
                        problem,
                        site.path,
                        site.node.lineno,
                        site.node.col_offset,
                    )
                )
        return diags

    def _check_server_factories(
        self, program: Program
    ) -> list[Diagnostic]:
        """Asyncio server/listener factory results must be owned too."""
        diags: list[Diagnostic] = []
        for fn in program.functions.values():
            if not fn.module.startswith(_SCOPES):
                continue
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                dotted = dotted_name(node.func) or ""
                if dotted.rsplit(".", 1)[-1] not in _SERVER_FACTORIES:
                    continue
                problem = self._disposition(
                    program, fn, node, "asyncio server"
                )
                if problem is not None:
                    diags.append(
                        Diagnostic(
                            self.code,
                            problem,
                            fn.path,
                            node.lineno,
                            node.col_offset,
                        )
                    )
        return diags

    def _resource_classes(self, program: Program) -> set[str]:
        """Project classes that define (or inherit) close/shutdown."""
        return {
            qual
            for qual in program.classes
            if qual.startswith("repro.")
            and any(
                program.resolve_method(qual, closer, virtual=False)
                for closer in _CLOSERS
            )
        }

    def _closeable(self, program: Program, cls: str | None) -> bool:
        if cls is None:
            return False
        return any(
            program.resolve_method(cls, closer, virtual=False)
            for closer in _CLOSERS
        )

    # -- disposition of one creation site ----------------------------------

    def _disposition(
        self,
        program: Program,
        fn: FunctionInfo,
        call: ast.Call,
        short: str,
    ) -> str | None:
        """``None`` when the new object has an owner, else the problem."""
        source = program.sources.get(fn.module)
        if source is None:
            return None
        parents = source.parents()
        node: ast.AST = call
        parent = parents.get(node)
        while parent is not None:
            if isinstance(parent, ast.withitem):
                return None
            if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom)):
                return None
            if isinstance(parent, ast.Call) and node is not parent.func:
                return None  # passed as argument: ownership transfers
            if isinstance(parent, ast.Attribute):
                if parent.attr in _CLOSERS:
                    return None
                break
            if isinstance(parent, (ast.Assign, ast.AnnAssign)):
                targets = (
                    parent.targets
                    if isinstance(parent, ast.Assign)
                    else [parent.target]
                )
                return self._assigned(
                    program, fn, short, targets
                )
            if isinstance(parent, ast.Expr):
                return (
                    f"{short} instance is created and immediately "
                    "dropped — nothing can ever close it"
                )
            if isinstance(
                parent,
                (
                    ast.BoolOp,
                    ast.IfExp,
                    ast.Await,
                    ast.Starred,
                    ast.List,
                    ast.Tuple,
                    ast.Set,
                    ast.ListComp,
                    ast.SetComp,
                    ast.GeneratorExp,
                    ast.comprehension,
                    ast.NamedExpr,
                    ast.withitem,
                ),
            ):
                node = parent
                parent = parents.get(node)
                continue
            break
        return None

    def _assigned(
        self,
        program: Program,
        fn: FunctionInfo,
        short: str,
        targets: list[ast.expr],
    ) -> str | None:
        for target in targets:
            if isinstance(target, ast.Name):
                return self._local_disposition(
                    program, fn, short, target.id
                )
            attr_target = target
            if isinstance(attr_target, ast.Subscript):
                attr_target = attr_target.value
            if (
                isinstance(attr_target, ast.Attribute)
                and isinstance(attr_target.value, ast.Name)
                and attr_target.value.id == "self"
            ):
                if self._closeable(program, fn.cls):
                    return None
                owner = (fn.cls or "module scope").split(".")[-1]
                return (
                    f"{short} instance is stored on {owner}, which has "
                    "no close()/shutdown() to release it"
                )
        return None

    def _local_disposition(
        self,
        program: Program,
        fn: FunctionInfo,
        short: str,
        name: str,
    ) -> str | None:
        """Check every use of local ``name`` for an ownership hand-off."""
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == name
                    and func.attr in _CLOSERS
                ):
                    return None
                for arg in [*node.args, *[k.value for k in node.keywords]]:
                    inner = arg.value if isinstance(arg, ast.Starred) else arg
                    if isinstance(inner, ast.Name) and inner.id == name:
                        return None  # handed to another function
            elif isinstance(node, (ast.Return, ast.Yield)):
                value = node.value
                if value is not None and any(
                    isinstance(sub, ast.Name) and sub.id == name
                    for sub in ast.walk(value)
                ):
                    return None
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Name) and expr.id == name:
                        return None
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    stored = target
                    if isinstance(stored, ast.Subscript):
                        stored = stored.value
                    if (
                        isinstance(stored, ast.Attribute)
                        and isinstance(node.value, ast.Name)
                        and node.value.id == name
                    ):
                        if isinstance(
                            stored.value, ast.Name
                        ) and stored.value.id == "self" and self._closeable(
                            program, fn.cls
                        ):
                            return None
        return (
            f"{short} instance bound to local '{name}' is never closed, "
            "returned, stored on a closeable owner or handed off — leak"
        )
