"""The turblint checker suite."""

from __future__ import annotations

from repro.lint.checkers.cost01 import CostAccounting
from repro.lint.checkers.dl01 import DeadlinePropagation
from repro.lint.checkers.err01 import ErrorTaxonomy
from repro.lint.checkers.halo01 import HaloConsistency
from repro.lint.checkers.lock01 import LockHygiene
from repro.lint.checkers.lock02 import LockOrderWholeProgram
from repro.lint.checkers.net01 import NetDeadlines
from repro.lint.checkers.net02 import NetZeroCopy
from repro.lint.checkers.obs01 import ObsDiscipline
from repro.lint.checkers.res01 import ResourceOwnership
from repro.lint.checkers.sup01 import StaleSuppression
from repro.lint.checkers.txn01 import TxnDiscipline

#: Checker classes in reporting order.
ALL_CHECKERS = (
    TxnDiscipline,
    CostAccounting,
    HaloConsistency,
    LockHygiene,
    LockOrderWholeProgram,
    DeadlinePropagation,
    ResourceOwnership,
    ErrorTaxonomy,
    NetDeadlines,
    NetZeroCopy,
    ObsDiscipline,
    StaleSuppression,
)

__all__ = [
    "ALL_CHECKERS",
    "CostAccounting",
    "DeadlinePropagation",
    "ErrorTaxonomy",
    "HaloConsistency",
    "LockHygiene",
    "LockOrderWholeProgram",
    "NetDeadlines",
    "NetZeroCopy",
    "ObsDiscipline",
    "ResourceOwnership",
    "StaleSuppression",
    "TxnDiscipline",
]
