"""ERR01 — error taxonomy.

The web service maps engine failures onto typed wire errors
(``TurbulenceError`` codes mirroring the service's documented error
table), and the storage engine signals conflicts with
:class:`~repro.storage.errors.SerializationConflictError` so callers
can retry first-updater-wins aborts.  Both contracts die the moment a
module catches everything or raises an untyped ``Exception``:

* ``except:`` (bare) also swallows ``KeyboardInterrupt``/``SystemExit``
  and is always a bug;
* ``raise Exception(...)`` / ``raise BaseException(...)`` produces an
  error no caller can dispatch on — raise a member of the typed
  hierarchy in :mod:`repro.storage.errors` instead;
* ``except Exception`` that does not re-raise converts every engine
  failure (including serialization conflicts that *must* propagate to
  the retry loop) into silent mis-behaviour.
"""

from __future__ import annotations

import ast

from repro.lint.base import Checker, dotted_name, module_in
from repro.lint.diagnostics import Diagnostic, SourceFile

BROAD = {"Exception", "BaseException"}


class ErrorTaxonomy(Checker):
    """Typed errors only: no bare excepts, no raise Exception."""

    code = "ERR01"
    description = (
        "cluster/storage/net code must raise typed errors and never "
        "swallow broad exception classes"
    )

    def applies(self, module: str) -> bool:
        return module_in(
            module, "repro.cluster.", "repro.storage.", "repro.net."
        )

    def check(self, source: SourceFile) -> list[Diagnostic]:
        diags: list[Diagnostic] = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ExceptHandler):
                diags.extend(self._check_handler(source, node))
            elif isinstance(node, ast.Raise):
                diags.extend(self._check_raise(source, node))
        return diags

    def _check_handler(
        self, source: SourceFile, node: ast.ExceptHandler
    ) -> list[Diagnostic]:
        if node.type is None:
            return [
                self.report(
                    source,
                    node,
                    "bare 'except:' swallows SystemExit/KeyboardInterrupt "
                    "— catch a typed error from repro.storage.errors",
                )
            ]
        caught = (
            node.type.elts
            if isinstance(node.type, ast.Tuple)
            else [node.type]
        )
        names = {
            (dotted_name(t) or "").rsplit(".", 1)[-1] for t in caught
        }
        if names & BROAD and not self._reraises(node):
            return [
                self.report(
                    source,
                    node,
                    "broad 'except Exception' without re-raise — engine "
                    "errors (including serialization conflicts that the "
                    "retry loop needs) would be silently swallowed",
                )
            ]
        return []

    def _reraises(self, node: ast.ExceptHandler) -> bool:
        return any(
            isinstance(sub, ast.Raise) for sub in ast.walk(node)
        )

    def _check_raise(
        self, source: SourceFile, node: ast.Raise
    ) -> list[Diagnostic]:
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        name = (dotted_name(exc) or "") if exc is not None else ""
        if name.rsplit(".", 1)[-1] in BROAD:
            return [
                self.report(
                    source,
                    node,
                    f"raise {name} is untyped — raise a member of the "
                    "typed hierarchy in repro.storage.errors so callers "
                    "can dispatch on it",
                )
            ]
        return []
