"""LOCK01 — concurrency hygiene.

The mediator scatters one task per data node across a thread pool
(paper §5: queries are "executed in parallel on the data nodes"), so
the storage and cluster layers are run concurrently.  Two static rules
keep that safe:

* the *lock-order graph* — an edge ``A -> B`` whenever lock ``B`` is
  acquired while ``A`` is held — must stay acyclic, or two threads can
  deadlock; acquiring a non-reentrant ``threading.Lock`` while already
  holding it is an immediate self-deadlock;
* a field that is mutated under ``with self._lock`` somewhere must not
  also be mutated outside the lock in a *public* method (private
  helpers are assumed to be called with the lock held — a documented
  heuristic matching this codebase's convention).

Lock identity is syntactic (``Class.attr``): two classes sharing one
lock object are modelled as separate nodes, which can only under-report
cycles, never invent them.  Method-call propagation is one level deep
and same-class only — a deliberate blind spot: cross-class and
transitive acquisition chains (pool -> client, mediator -> storage) are
covered by **LOCK02**, which supersedes this rule's ordering analysis
with a whole-program acquisition graph over the turbscan call graph
(see ``repro.lint.checkers.lock02``).  LOCK01 remains the fast per-file
gate for self-deadlocks and unguarded mutations.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from repro.lint.base import Checker, dotted_name, module_in
from repro.lint.diagnostics import Diagnostic, SourceFile

LOCK_NAME_RE = re.compile(r"(?i)(lock|latch|mutex)")
#: threading factory names; plain Lock is the non-reentrant one.
LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}


@dataclass
class _ClassLocks:
    """Lock attributes of one class, keyed by attribute name."""

    name: str
    attrs: set[str] = field(default_factory=set)
    #: Attribute names known to be plain (non-reentrant) threading.Lock.
    non_reentrant: set[str] = field(default_factory=set)


@dataclass
class _Mutation:
    attr: str
    method: str
    locked: bool
    node: ast.AST


class LockHygiene(Checker):
    """Acyclic lock order; shared fields mutated only under their lock."""

    code = "LOCK01"
    description = (
        "lock acquisition order must be acyclic and fields guarded by a "
        "lock must not be mutated outside it in public methods"
    )

    def __init__(self) -> None:
        #: edge -> (path, line) where first observed.
        self._edges: dict[tuple[str, str], tuple[str, int]] = {}

    def applies(self, module: str) -> bool:
        return module_in(module, "repro.storage.", "repro.cluster.")

    def check(self, source: SourceFile) -> list[Diagnostic]:
        diags: list[Diagnostic] = []
        for stmt in source.tree.body:
            if isinstance(stmt, ast.ClassDef):
                diags.extend(self._check_class(source, stmt))
        return diags

    # -- per-class analysis ---------------------------------------------------

    def _check_class(
        self, source: SourceFile, cls: ast.ClassDef
    ) -> list[Diagnostic]:
        locks = self._collect_locks(cls)
        if not locks.attrs:
            return []
        diags: list[Diagnostic] = []
        mutations: list[_Mutation] = []
        method_acquires: dict[str, set[str]] = {}
        lock_held_calls: list[tuple[str, str]] = []  # (held lock, method)

        methods = [
            stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for method in methods:
            acquired: set[str] = set()
            self._walk(
                source,
                locks,
                method,
                method.body,
                [],
                diags,
                mutations,
                acquired,
                lock_held_calls,
            )
            method_acquires[method.name] = acquired

        # One-level, same-class propagation: calling a lock-taking method
        # while holding a lock orders the held lock before the taken ones.
        for held, callee in lock_held_calls:
            for taken in method_acquires.get(callee, ()):
                if taken != held:
                    self._edges.setdefault(
                        (held, taken), (str(source.path), 1)
                    )

        diags.extend(self._check_mutations(source, locks, mutations))
        return diags

    def _collect_locks(self, cls: ast.ClassDef) -> _ClassLocks:
        locks = _ClassLocks(cls.name)
        for node in ast.walk(cls):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        self._classify(locks, target.attr, node.value)
            elif isinstance(node, ast.AnnAssign):
                # dataclass field: _lock: threading.Lock = field(...)
                if isinstance(node.target, ast.Name) and (
                    LOCK_NAME_RE.search(node.target.id)
                    or "Lock" in ast.dump(node.annotation)
                ):
                    locks.attrs.add(node.target.id)
                    if node.annotation is not None and ast.dump(
                        node.annotation
                    ).count("'Lock'"):
                        locks.non_reentrant.add(node.target.id)
        return locks

    def _classify(
        self, locks: _ClassLocks, attr: str, value: ast.expr
    ) -> None:
        if isinstance(value, ast.Call):
            dotted = dotted_name(value.func)
            factory = dotted.split(".")[-1] if dotted else None
            if factory in LOCK_FACTORIES:
                locks.attrs.add(attr)
                if factory == "Lock":
                    locks.non_reentrant.add(attr)
                return
        if LOCK_NAME_RE.search(attr) and isinstance(
            value, (ast.Name, ast.Attribute)
        ):
            # lock passed in from outside (e.g. a shared database latch)
            locks.attrs.add(attr)

    # -- lock-stack walk ------------------------------------------------------

    def _walk(
        self,
        source: SourceFile,
        locks: _ClassLocks,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        stmts: list[ast.stmt],
        stack: list[str],
        diags: list[Diagnostic],
        mutations: list[_Mutation],
        acquired: set[str],
        lock_held_calls: list[tuple[str, str]],
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner = list(stack)
                for item in stmt.items:
                    key = self._lock_key(locks, item.context_expr)
                    if key is None:
                        continue
                    attr = key.rsplit(".", 1)[-1]
                    if key in inner and attr in locks.non_reentrant:
                        diags.append(
                            self.report(
                                source,
                                item.context_expr,
                                f"re-acquiring non-reentrant lock {key} "
                                "while already holding it — self-deadlock",
                            )
                        )
                    if inner and inner[-1] != key:
                        self._edges.setdefault(
                            (inner[-1], key),
                            (
                                str(source.path),
                                getattr(item.context_expr, "lineno", 1),
                            ),
                        )
                    inner.append(key)
                    acquired.add(key)
                self._walk(
                    source,
                    locks,
                    method,
                    stmt.body,
                    inner,
                    diags,
                    mutations,
                    acquired,
                    lock_held_calls,
                )
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # nested defs run later (often on other threads): fresh stack
                self._walk(
                    source,
                    locks,
                    method,
                    stmt.body,
                    [],
                    diags,
                    mutations,
                    acquired,
                    lock_held_calls,
                )
                continue
            self._record_statement(
                locks, method, stmt, stack, mutations, lock_held_calls
            )
            for block in ("body", "orelse", "finalbody"):
                nested = getattr(stmt, block, None)
                if nested:
                    self._walk(
                        source,
                        locks,
                        method,
                        nested,
                        stack,
                        diags,
                        mutations,
                        acquired,
                        lock_held_calls,
                    )
            for handler in getattr(stmt, "handlers", []):
                self._walk(
                    source,
                    locks,
                    method,
                    handler.body,
                    stack,
                    diags,
                    mutations,
                    acquired,
                    lock_held_calls,
                )

    def _record_statement(
        self,
        locks: _ClassLocks,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        stmt: ast.stmt,
        stack: list[str],
        mutations: list[_Mutation],
        lock_held_calls: list[tuple[str, str]],
    ) -> None:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        for target in targets:
            attr = self._mutated_attr(target)
            if attr is not None and attr not in locks.attrs:
                mutations.append(
                    _Mutation(attr, method.name, bool(stack), stmt)
                )
        if stack:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"
                ):
                    lock_held_calls.append((stack[-1], node.func.attr))

    def _mutated_attr(self, target: ast.expr) -> str | None:
        node = target
        if isinstance(node, ast.Subscript):
            node = node.value
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    def _lock_key(
        self, locks: _ClassLocks, expr: ast.expr
    ) -> str | None:
        dotted = dotted_name(expr)
        if dotted is None or not dotted.startswith("self."):
            return None
        path = dotted[len("self.") :]
        leaf = path.rsplit(".", 1)[-1]
        if path in locks.attrs or LOCK_NAME_RE.search(leaf):
            return f"{locks.name}.{path}"
        return None

    # -- guarded-field mutations ----------------------------------------------

    def _check_mutations(
        self,
        source: SourceFile,
        locks: _ClassLocks,
        mutations: list[_Mutation],
    ) -> list[Diagnostic]:
        guarded = {m.attr for m in mutations if m.locked}
        diags = []
        for mutation in mutations:
            if (
                mutation.attr in guarded
                and not mutation.locked
                and not mutation.method.startswith("_")
            ):
                diags.append(
                    self.report(
                        source,
                        mutation.node,
                        f"field self.{mutation.attr} is mutated under "
                        f"{locks.name}'s lock elsewhere but without it in "
                        f"public method {mutation.method}() — racy update",
                    )
                )
        return diags

    # -- whole-run lock-order cycle detection ---------------------------------

    def finish(self) -> list[Diagnostic]:
        graph: dict[str, list[str]] = {}
        for a, b in self._edges:
            graph.setdefault(a, []).append(b)
        cycles = find_cycles(graph)
        diags = []
        for cycle in cycles:
            first_edge = (cycle[0], cycle[1])
            path, line = self._edges.get(first_edge, ("<lock graph>", 1))
            diags.append(
                Diagnostic(
                    self.code,
                    "lock-order cycle: "
                    + " -> ".join(cycle)
                    + " — threads taking these locks in opposite orders "
                    "can deadlock",
                    path,
                    line,
                )
            )
        return diags


def find_cycles(graph: dict[str, list[str]]) -> list[list[str]]:
    """Canonicalised elementary cycles of a directed graph.

    Each cycle is returned once as ``[a, b, ..., a]``, rotated so the
    lexicographically smallest node leads.  Shared by LOCK01 (per-class
    graph) and LOCK02 (whole-program acquisition graph).
    """
    seen_cycles: set[tuple[str, ...]] = set()
    cycles: list[list[str]] = []
    state: dict[str, int] = {}  # 1 = on stack, 2 = done

    def visit(node: str, path: list[str]) -> None:
        state[node] = 1
        path.append(node)
        for succ in graph.get(node, ()):
            if state.get(succ) == 1:
                start = path.index(succ)
                cycle = path[start:] + [succ]
                lowest = min(range(len(cycle) - 1), key=cycle.__getitem__)
                canonical = tuple(
                    cycle[lowest:-1] + cycle[:lowest] + [cycle[lowest]]
                )
                if canonical not in seen_cycles:
                    seen_cycles.add(canonical)
                    cycles.append(list(canonical))
            elif state.get(succ) is None:
                visit(succ, path)
        path.pop()
        state[node] = 2

    for node in sorted(graph):
        if state.get(node) is None:
            visit(node, [])
    return cycles
