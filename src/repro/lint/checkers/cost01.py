"""COST01 — cost-accounting completeness and determinism.

The evaluation in the paper compares strategies by *modelled* cost
(bytes read, seconds of simulated I/O and compute), so the engine's
results must be deterministic and every expensive operation must be
charged to a :class:`~repro.costmodel.ledger.CostLedger`.  Two things
break that contract:

* reading the wall clock (``time.time``, ``perf_counter``,
  ``datetime.now``…) inside engine code — timings would vary run to
  run, so wall-clock reads are only allowed in the benchmark harness
  and in ``repro.obs`` (the observability layer measures real elapsed
  time by design; it never feeds it back into query results);
* computing a simulated device time (``read_time``/``write_time``/
  ``compute_time``/``transfer_time``) and discarding the result — the
  cost was modelled but never charged, silently understating a
  strategy's cost.
"""

from __future__ import annotations

import ast

from repro.lint.base import Checker, dotted_name, module_in
from repro.lint.diagnostics import Diagnostic, SourceFile

#: (module, attribute) pairs that read the wall clock.
WALL_CLOCK = {
    ("time", "time"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "process_time"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
}
#: Names importable from ``time`` that read the wall clock.
WALL_CLOCK_IMPORTS = {
    "time",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
}
#: Device-model methods whose return value is a simulated duration.
DEVICE_TIME = {"compute_time", "read_time", "write_time", "transfer_time"}


class CostAccounting(Checker):
    """No wall-clock reads; no discarded simulated device times."""

    code = "COST01"
    description = (
        "engine code must not read the wall clock, and simulated device "
        "times must be charged to a CostLedger, not discarded"
    )

    def applies(self, module: str) -> bool:
        if not module_in(module, "repro."):
            return False
        return not module_in(
            module, "repro.harness.", "repro.benchmarks.", "repro.obs."
        )

    def check(self, source: SourceFile) -> list[Diagnostic]:
        diags: list[Diagnostic] = []
        parents = source.parents()
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ImportFrom):
                diags.extend(self._check_import(source, node))
            elif isinstance(node, ast.Call):
                diags.extend(self._check_call(source, node, parents))
        return diags

    def _check_import(
        self, source: SourceFile, node: ast.ImportFrom
    ) -> list[Diagnostic]:
        if node.module != "time":
            return []
        return [
            self.report(
                source,
                node,
                f"wall-clock import 'from time import {alias.name}' — "
                "engine timings must come from the simulated cost model, "
                "not the host clock",
            )
            for alias in node.names
            if alias.name in WALL_CLOCK_IMPORTS
        ]

    def _check_call(
        self,
        source: SourceFile,
        node: ast.Call,
        parents: dict[ast.AST, ast.AST],
    ) -> list[Diagnostic]:
        diags: list[Diagnostic] = []
        dotted = dotted_name(node.func)
        if dotted is not None:
            parts = dotted.split(".")
            if len(parts) >= 2 and (parts[-2], parts[-1]) in WALL_CLOCK:
                diags.append(
                    self.report(
                        source,
                        node,
                        f"wall-clock read {dotted}() — engine timings must "
                        "come from the simulated cost model; only the "
                        "benchmark harness may touch the host clock",
                    )
                )
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in DEVICE_TIME
            and isinstance(parents.get(node), ast.Expr)
        ):
            diags.append(
                self.report(
                    source,
                    node,
                    f"simulated device time {node.func.attr}() computed but "
                    "discarded — charge it to the CostLedger or do not "
                    "model it",
                )
            )
        return diags
