"""turblint: AST-based invariant checkers for the threshold-query engine.

The engine's correctness rests on invariants the runtime never checks:
snapshot-isolation transactions must commit or abort on every
control-flow path, every byte moved and grid point computed must be
charged to the :class:`~repro.costmodel.ledger.CostLedger`, kernel halo
half-widths must cover their stencils, lock acquisition must stay
acyclic, and wire/engine errors must use the typed hierarchies.  This
package enforces them statically over the project's own AST.

Run as ``python -m repro.lint src/``; a non-zero exit code means
violations (for CI).  Individual diagnostics are suppressed with a
``# turblint: disable=CODE`` comment on the flagged line, or file-wide
with ``# turblint: disable-file=CODE``.
"""

from __future__ import annotations

from repro.lint.base import Checker
from repro.lint.cli import main, run_paths
from repro.lint.diagnostics import Diagnostic, SourceFile

__all__ = ["Checker", "Diagnostic", "SourceFile", "main", "run_paths"]
