"""Checker base class and shared AST helpers."""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from repro.lint.diagnostics import Diagnostic, SourceFile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.program import Program


class Checker:
    """One invariant checker.

    A checker instance lives for a whole lint run: :meth:`check` is
    called once per in-scope file, and :meth:`finish` once at the end
    (for cross-file analyses such as the lock-order graph).  Checkers
    that set ``whole_program`` additionally receive the turbscan
    :class:`~repro.lint.program.Program` model — built once per run over
    *every* scanned file — via :meth:`check_program`.  Reported
    diagnostics are filtered against the file's suppressions before they
    reach the caller.
    """

    #: Diagnostic code, e.g. ``"TXN01"``.
    code: str = ""
    #: One-line human description of the enforced invariant.
    description: str = ""
    #: Whether the checker needs the whole-program model.
    whole_program: bool = False

    def applies(self, module: str) -> bool:
        """Whether ``module`` (dotted name) is in this checker's scope."""
        return True

    def check(self, source: SourceFile) -> list[Diagnostic]:
        """Diagnostics for one file (already scoped via :meth:`applies`)."""
        return []

    def finish(self) -> list[Diagnostic]:
        """Diagnostics requiring whole-run state (default: none)."""
        return []

    def check_program(self, program: Program) -> list[Diagnostic]:
        """Diagnostics over the whole-program model (default: none).

        Only called when ``whole_program`` is true.  Rules scope
        themselves here (the per-file :meth:`applies` gate does not
        constrain which modules contribute to the model).
        """
        return []

    def report(
        self, source: SourceFile, node: ast.AST, message: str
    ) -> Diagnostic:
        """Build a diagnostic of this checker's code at ``node``."""
        return Diagnostic(
            self.code,
            message,
            str(source.path),
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0),
        )


def module_in(module: str, *scopes: str) -> bool:
    """Whether ``module`` equals a scope or lives under a ``scope.`` prefix.

    A scope ending in ``.`` matches any submodule; otherwise exact match.
    """
    for scope in scopes:
        if scope.endswith("."):
            if module.startswith(scope) or module == scope[:-1]:
                return True
        elif module == scope:
            return True
    return False


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, or ``None``."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def call_attr(node: ast.Call) -> str | None:
    """The final attribute name of a method call, e.g. ``commit``."""
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def function_defs(tree: ast.Module) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function/method definition in the module, at any depth."""
    return [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
