"""turbscan whole-program model: symbol table, call graph, reachability.

The per-file checkers see one AST at a time; the rules added with
turbscan (LOCK02, DL01, RES01) need to reason about *paths through the
project* — which locks a transitively-called function acquires, whether
a mediator entry point can reach a socket without a deadline, where a
pooled connection created in one method is released in another.  This
module builds the shared substrate once per lint run:

* a **symbol table**: every module, class, function and method under
  the scanned tree, with imports resolved to project-qualified names
  (``repro.net.pool.ConnectionPool.call``);
* lightweight **type inference**: parameter/attribute annotations,
  ``self.attr = ClassName(...)`` assignments in ``__init__``, container
  element types from ``list[X]``-style annotations and comprehensions,
  and callee return annotations — enough to resolve ``self.attr.method``
  and ``pool[i].call`` receivers;
* a **call graph** whose edges are either synchronous ``call`` edges or
  ``spawn`` edges (``executor.submit(f)``, ``Thread(target=f)``, and
  code inside nested functions/lambdas, which runs on another thread or
  at a later time).  Calls on an annotated abstract receiver resolve
  *virtually* to every override, so a ``Transport`` call reaches both
  the in-process and TCP implementations.

Resolution is deliberately conservative: names that cannot be resolved
to a project symbol produce no edge (rules under-report rather than
guess).  Checkers opt in by setting ``whole_program = True`` and
implementing ``check_program`` (see :class:`repro.lint.base.Checker`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.lint.diagnostics import SourceFile

#: Annotation heads treated as homogeneous containers (element type in
#: the subscript).  Lower-case; matched against the head's last part.
_CONTAINER_HEADS = {
    "list",
    "set",
    "frozenset",
    "tuple",
    "deque",
    "sequence",
    "iterable",
    "iterator",
    "collection",
}

#: Annotation heads whose *last* subscript argument is the element type
#: (mappings: ``dict[str, ConnectionPool]`` holds pools).
_MAPPING_HEADS = {"dict", "mapping", "mutablemapping", "defaultdict"}


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    qualname: str
    module: str
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    path: str
    cls: str | None = None
    #: Inferred types of parameters and locals (name -> class qualname).
    locals_types: dict[str, str] = field(default_factory=dict)
    #: Inferred container element types (name -> class qualname).
    locals_elems: dict[str, str] = field(default_factory=dict)


@dataclass
class ClassInfo:
    """One class definition with resolved bases and attribute types."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    path: str
    bases: list[str] = field(default_factory=list)
    #: method name -> function qualname
    methods: dict[str, str] = field(default_factory=dict)
    #: attribute -> class qualname of the stored instance
    attr_types: dict[str, str] = field(default_factory=dict)
    #: attribute -> element class qualname for container attributes
    attr_elems: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class CallEdge:
    """A resolved edge in the project call graph.

    ``kind`` is ``"call"`` for ordinary synchronous calls and
    ``"spawn"`` for deferred execution: ``submit``/``Thread(target=)``
    hand-offs and calls written inside nested functions or lambdas.
    """

    caller: str
    callee: str
    kind: str
    path: str
    line: int


@dataclass(frozen=True)
class Instantiation:
    """A resolved constructor call site (used by RES01)."""

    function: str
    cls: str
    node: ast.Call
    path: str


class Program:
    """Project-wide symbol table and call graph over parsed sources."""

    def __init__(self, sources: Iterable[SourceFile]) -> None:
        self.sources: dict[str, SourceFile] = {}
        for source in sources:
            self.sources.setdefault(source.module, source)
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.imports: dict[str, dict[str, str]] = {}
        self.subclasses: dict[str, set[str]] = {}
        self.edges: list[CallEdge] = []
        self.instantiations: list[Instantiation] = []
        self._out: dict[str, list[CallEdge]] = {}
        self._in: dict[str, list[CallEdge]] = {}
        self._site_calls: dict[tuple[str, int], set[str]] = {}
        self._collect_symbols()
        self._resolve_bases()
        self._infer_attr_types()
        self._build_edges()

    # -- symbol collection -------------------------------------------------

    def _collect_symbols(self) -> None:
        for module, source in self.sources.items():
            table: dict[str, str] = {}
            for node in ast.walk(source.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        bound = alias.asname or alias.name.split(".")[0]
                        target = alias.name if alias.asname else bound
                        table[bound] = target
                elif isinstance(node, ast.ImportFrom):
                    base = self._import_base(module, node)
                    for alias in node.names:
                        if alias.name == "*":
                            continue
                        bound = alias.asname or alias.name
                        table[bound] = f"{base}.{alias.name}" if base else alias.name
            self.imports[module] = table
            for stmt in source.tree.body:
                if isinstance(stmt, ast.ClassDef):
                    self._collect_class(module, source, stmt)
                elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{module}.{stmt.name}"
                    self.functions[qual] = FunctionInfo(
                        qual, module, stmt.name, stmt, str(source.path)
                    )

    def _collect_class(
        self, module: str, source: SourceFile, node: ast.ClassDef
    ) -> None:
        qual = f"{module}.{node.name}"
        info = ClassInfo(qual, module, node.name, node, str(source.path))
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fqual = f"{qual}.{stmt.name}"
                info.methods[stmt.name] = fqual
                self.functions[fqual] = FunctionInfo(
                    fqual, module, stmt.name, stmt, str(source.path), cls=qual
                )
        self.classes[qual] = info

    @staticmethod
    def _import_base(module: str, node: ast.ImportFrom) -> str:
        if not node.level:
            return node.module or ""
        parts = module.split(".")
        # ``from . import x`` in a module strips one component (the
        # module itself); each extra dot strips one more package.
        base = parts[: len(parts) - node.level]
        if node.module:
            base.append(node.module)
        return ".".join(base)

    def _resolve_bases(self) -> None:
        for info in self.classes.values():
            for base in info.node.bases:
                name = _dotted(base)
                if name is None:
                    continue
                resolved = self.resolve(info.module, name)
                if resolved in self.classes:
                    info.bases.append(resolved)
                    self.subclasses.setdefault(resolved, set()).add(
                        info.qualname
                    )

    # -- name resolution ---------------------------------------------------

    def resolve(self, module: str, dotted: str) -> str | None:
        """Resolve a dotted name used in ``module`` to a project symbol.

        Tries the module's import bindings, module-local definitions and
        the absolute form; returns a class/function qualname or ``None``.
        """
        parts = dotted.split(".")
        table = self.imports.get(module, {})
        candidates = []
        if parts[0] in table:
            candidates.append(".".join([table[parts[0]], *parts[1:]]))
        candidates.append(f"{module}.{dotted}")
        candidates.append(dotted)
        for cand in candidates:
            if cand in self.classes or cand in self.functions:
                return cand
        return None

    def resolve_method(
        self, cls: str, name: str, *, virtual: bool = True
    ) -> list[str]:
        """Function qualnames implementing ``name`` on ``cls``.

        Walks base classes for the inherited definition; with
        ``virtual`` also includes every subclass override, modelling
        dynamic dispatch on an abstract receiver.
        """
        found: list[str] = []
        own = self._lookup_up(cls, name, set())
        if own is not None:
            found.append(own)
        if virtual:
            for sub in sorted(self._descendants(cls)):
                info = self.classes.get(sub)
                if info is not None and name in info.methods:
                    found.append(info.methods[name])
        seen: set[str] = set()
        return [f for f in found if not (f in seen or seen.add(f))]

    def _lookup_up(
        self, cls: str, name: str, seen: set[str]
    ) -> str | None:
        if cls in seen:
            return None
        seen.add(cls)
        info = self.classes.get(cls)
        if info is None:
            return None
        if name in info.methods:
            return info.methods[name]
        for base in info.bases:
            result = self._lookup_up(base, name, seen)
            if result is not None:
                return result
        return None

    def _descendants(self, cls: str) -> set[str]:
        out: set[str] = set()
        frontier = list(self.subclasses.get(cls, ()))
        while frontier:
            sub = frontier.pop()
            if sub in out:
                continue
            out.add(sub)
            frontier.extend(self.subclasses.get(sub, ()))
        return out

    def attr_type(self, cls: str, attr: str) -> str | None:
        """Inferred instance type of ``cls.attr`` (base classes too)."""
        return self._attr_lookup(cls, attr, "attr_types")

    def attr_elem(self, cls: str, attr: str) -> str | None:
        """Inferred container element type of ``cls.attr``."""
        return self._attr_lookup(cls, attr, "attr_elems")

    def _attr_lookup(
        self, cls: str, attr: str, table: str
    ) -> str | None:
        seen: set[str] = set()
        frontier = [cls]
        while frontier:
            current = frontier.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            value = getattr(info, table).get(attr)
            if value is not None:
                return value
            frontier.extend(info.bases)
        return None

    # -- annotation and expression typing ----------------------------------

    def _annotation_types(
        self, module: str, node: ast.AST | None
    ) -> tuple[str | None, str | None]:
        """``(instance type, element type)`` for an annotation node."""
        if node is None:
            return None, None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None, None
        if isinstance(node, (ast.Name, ast.Attribute)):
            name = _dotted(node)
            if name is None:
                return None, None
            resolved = self.resolve(module, name)
            return (resolved if resolved in self.classes else None), None
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            for side in (node.left, node.right):
                direct, elem = self._annotation_types(module, side)
                if direct or elem:
                    return direct, elem
            return None, None
        if isinstance(node, ast.Subscript):
            head = (_dotted(node.value) or "").split(".")[-1].lower()
            args = (
                list(node.slice.elts)
                if isinstance(node.slice, ast.Tuple)
                else [node.slice]
            )
            if head == "optional" and args:
                return self._annotation_types(module, args[0])
            if head in _MAPPING_HEADS and args:
                direct, _ = self._annotation_types(module, args[-1])
                return None, direct
            if head in _CONTAINER_HEADS and args:
                for arg in args:
                    direct, _ = self._annotation_types(module, arg)
                    if direct:
                        return None, direct
            return None, None
        return None, None

    def expr_type(
        self, fn: FunctionInfo, expr: ast.AST
    ) -> str | None:
        """Class qualname an expression evaluates to, or ``None``."""
        if isinstance(expr, ast.Await):
            return self.expr_type(fn, expr.value)
        if isinstance(expr, ast.Name):
            return fn.locals_types.get(expr.id)
        if isinstance(expr, (ast.BoolOp, ast.IfExp)):
            options = (
                expr.values
                if isinstance(expr, ast.BoolOp)
                else [expr.body, expr.orelse]
            )
            for option in options:
                found = self.expr_type(fn, option)
                if found is not None:
                    return found
            return None
        if isinstance(expr, ast.Attribute):
            base = self.expr_type(fn, expr.value)
            if base is not None:
                return self.attr_type(base, expr.attr)
            return None
        if isinstance(expr, ast.Subscript):
            return self._elem_type(fn, expr.value)
        if isinstance(expr, ast.Call):
            for target in self._callee_symbols(fn, expr):
                if target in self.classes:
                    return target
                info = self.functions.get(target)
                if info is not None:
                    direct, _ = self._annotation_types(
                        info.module, info.node.returns
                    )
                    if direct is not None:
                        return direct
            return None
        return None

    def _elem_type(self, fn: FunctionInfo, expr: ast.AST) -> str | None:
        """Element type of a container-valued expression."""
        if isinstance(expr, ast.Name):
            return fn.locals_elems.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self.expr_type(fn, expr.value)
            if base is not None:
                return self.attr_elem(base, expr.attr)
        return None

    # -- attribute type inference ------------------------------------------

    def _infer_attr_types(self) -> None:
        for info in self.classes.values():
            for stmt in info.node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    direct, elem = self._annotation_types(
                        info.module, stmt.annotation
                    )
                    if direct:
                        info.attr_types[stmt.target.id] = direct
                    if elem:
                        info.attr_elems[stmt.target.id] = elem
            for fqual in info.methods.values():
                self._infer_from_method(info, self.functions[fqual])

    def _infer_from_method(
        self, info: ClassInfo, fn: FunctionInfo
    ) -> None:
        self._seed_params(fn)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.AnnAssign):
                target = node.target
                if self._is_self_attr(target):
                    direct, elem = self._annotation_types(
                        fn.module, node.annotation
                    )
                    attr = target.attr  # type: ignore[union-attr]
                    if direct:
                        info.attr_types.setdefault(attr, direct)
                    if elem:
                        info.attr_elems.setdefault(attr, elem)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    self._infer_assign(info, fn, target, node.value)

    def _infer_assign(
        self,
        info: ClassInfo,
        fn: FunctionInfo,
        target: ast.AST,
        value: ast.AST,
    ) -> None:
        if self._is_self_attr(target):
            attr = target.attr  # type: ignore[union-attr]
            direct = self.expr_type(fn, value)
            if direct is not None:
                info.attr_types.setdefault(attr, direct)
            elem = self._value_elem_type(fn, value)
            if elem is not None:
                info.attr_elems.setdefault(attr, elem)
        elif (
            isinstance(target, ast.Subscript)
            and self._is_self_attr(target.value)
        ):
            attr = target.value.attr  # type: ignore[union-attr]
            direct = self.expr_type(fn, value)
            if direct is not None:
                info.attr_elems.setdefault(attr, direct)

    def _value_elem_type(
        self, fn: FunctionInfo, value: ast.AST
    ) -> str | None:
        """Element type of a literal list/set or comprehension value."""
        if isinstance(value, (ast.List, ast.Set, ast.Tuple)):
            for item in value.elts:
                found = self.expr_type(fn, item)
                if found is not None:
                    return found
        if isinstance(value, (ast.ListComp, ast.SetComp)):
            return self.expr_type(fn, value.elt)
        return None

    @staticmethod
    def _is_self_attr(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        )

    def _seed_params(self, fn: FunctionInfo) -> None:
        if fn.locals_types:
            return
        if fn.cls is not None:
            fn.locals_types["self"] = fn.cls
        args = fn.node.args
        for arg in [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
        ]:
            direct, elem = self._annotation_types(
                fn.module, arg.annotation
            )
            if direct:
                fn.locals_types.setdefault(arg.arg, direct)
            if elem:
                fn.locals_elems.setdefault(arg.arg, elem)

    # -- call graph --------------------------------------------------------

    def _build_edges(self) -> None:
        for fn in self.functions.values():
            self._infer_locals(fn)
        for fn in self.functions.values():
            for call, deferred in _iter_calls(fn.node):
                self._edges_for_call(fn, call, deferred)
        for edge in self.edges:
            self._out.setdefault(edge.caller, []).append(edge)
            self._in.setdefault(edge.callee, []).append(edge)
            if edge.kind == "call":
                self._site_calls.setdefault(
                    (edge.caller, edge.line), set()
                ).add(edge.callee)

    def _infer_locals(self, fn: FunctionInfo) -> None:
        self._seed_params(fn)
        for node in ast.walk(fn.node):
            targets: list[ast.AST] = []
            value: ast.AST | None = None
            if isinstance(node, ast.Assign):
                targets, value = list(node.targets), node.value
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                direct, elem = self._annotation_types(
                    fn.module, node.annotation
                )
                if direct:
                    fn.locals_types.setdefault(node.target.id, direct)
                if elem:
                    fn.locals_elems.setdefault(node.target.id, elem)
                continue
            elif isinstance(node, ast.With):
                for item in node.items:
                    if isinstance(item.optional_vars, ast.Name):
                        found = self.expr_type(fn, item.context_expr)
                        if found:
                            fn.locals_types.setdefault(
                                item.optional_vars.id, found
                            )
                continue
            elif isinstance(node, ast.For) and isinstance(
                node.target, ast.Name
            ):
                found = self._elem_type(fn, node.iter)
                if found:
                    fn.locals_types.setdefault(node.target.id, found)
                continue
            else:
                continue
            for target in targets:
                if not isinstance(target, ast.Name) or value is None:
                    continue
                direct = self.expr_type(fn, value)
                if direct:
                    fn.locals_types.setdefault(target.id, direct)
                elem = self._value_elem_type(fn, value)
                if elem:
                    fn.locals_elems.setdefault(target.id, elem)

    def _callee_symbols(
        self, fn: FunctionInfo, call: ast.Call
    ) -> list[str]:
        """Project symbols (classes or functions) a call may target."""
        func = call.func
        if isinstance(func, ast.Name):
            resolved = self.resolve(fn.module, func.id)
            return [resolved] if resolved else []
        if isinstance(func, ast.Attribute):
            name = _dotted(func)
            if name is not None:
                resolved = self.resolve(fn.module, name)
                if resolved is not None:
                    return [resolved]
            receiver = self.expr_type(fn, func.value)
            if receiver is not None:
                return self.resolve_method(receiver, func.attr)
        return []

    def _edges_for_call(
        self, fn: FunctionInfo, call: ast.Call, deferred: bool
    ) -> None:
        kind = "spawn" if deferred else "call"
        line = call.lineno
        for target in self._callee_symbols(fn, call):
            if target in self.classes:
                self.instantiations.append(
                    Instantiation(fn.qualname, target, call, fn.path)
                )
                for init in self.resolve_method(
                    target, "__init__", virtual=False
                ):
                    self._add_edge(fn, init, kind, line)
            elif target in self.functions:
                self._add_edge(fn, target, kind, line)
        # Spawn hand-offs: executor.submit(f, ...) and Thread(target=f).
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "submit"
            and call.args
        ):
            for arg in call.args:
                for target in self._funcref_symbols(fn, arg):
                    self._add_edge(fn, target, "spawn", line)
        for keyword in call.keywords:
            if keyword.arg == "target":
                for target in self._funcref_symbols(fn, keyword.value):
                    self._add_edge(fn, target, "spawn", line)

    def _funcref_symbols(
        self, fn: FunctionInfo, node: ast.AST
    ) -> list[str]:
        """Functions a bare reference (not a call) may denote."""
        if isinstance(node, ast.Name):
            resolved = self.resolve(fn.module, node.id)
            if resolved in self.functions:
                return [resolved]
            return []
        if isinstance(node, ast.Attribute):
            receiver = self.expr_type(fn, node.value)
            if receiver is not None:
                return self.resolve_method(receiver, node.attr)
        return []

    def _add_edge(
        self, fn: FunctionInfo, callee: str, kind: str, line: int
    ) -> None:
        self.edges.append(
            CallEdge(fn.qualname, callee, kind, fn.path, line)
        )

    # -- graph queries -----------------------------------------------------

    def callees_at(self, function: str, line: int) -> set[str]:
        """Synchronous callees resolved for a call site."""
        return self._site_calls.get((function, line), set())

    def out_edges(self, function: str) -> list[CallEdge]:
        """Edges leaving ``function``."""
        return self._out.get(function, [])

    def reachable(
        self, starts: Iterable[str], *, spawn: bool = True
    ) -> set[str]:
        """Functions reachable from ``starts`` along call/spawn edges."""
        seen = set(starts)
        frontier = list(seen)
        while frontier:
            current = frontier.pop()
            for edge in self._out.get(current, ()):
                if edge.kind == "spawn" and not spawn:
                    continue
                if edge.callee not in seen:
                    seen.add(edge.callee)
                    frontier.append(edge.callee)
        return seen

    def reverse_reachable(
        self, targets: Iterable[str], *, spawn: bool = True
    ) -> set[str]:
        """Functions from which some target is reachable."""
        seen = set(targets)
        frontier = list(seen)
        while frontier:
            current = frontier.pop()
            for edge in self._in.get(current, ()):
                if edge.kind == "spawn" and not spawn:
                    continue
                if edge.caller not in seen:
                    seen.add(edge.caller)
                    frontier.append(edge.caller)
        return seen

    def find_path(
        self,
        start: str,
        targets: set[str],
        *,
        avoid: frozenset[str] = frozenset(),
        spawn: bool = True,
    ) -> list[CallEdge] | None:
        """A breadth-first edge path from ``start`` into ``targets``.

        Nodes in ``avoid`` are never traversed *through* (a target in
        ``avoid`` is still unreachable).  Returns ``None`` when every
        path is blocked.
        """
        if start in targets:
            return []
        parents: dict[str, CallEdge] = {}
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop(0)
            for edge in self._out.get(current, ()):
                if edge.kind == "spawn" and not spawn:
                    continue
                nxt = edge.callee
                if nxt in seen or nxt in avoid:
                    continue
                parents[nxt] = edge
                if nxt in targets:
                    path = [edge]
                    while path[0].caller != start:
                        path.insert(0, parents[path[0].caller])
                    return path
                seen.add(nxt)
                frontier.append(nxt)
        return None


def _iter_calls(
    root: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[tuple[ast.Call, bool]]:
    """Yield ``(call, deferred)`` for every call under ``root``.

    ``deferred`` is true for calls written inside nested function
    definitions or lambdas: they execute later (often on another
    thread), so lock-stack reasoning must not treat them as running at
    the enclosing call site.
    """

    def visit(node: ast.AST, deferred: bool) -> Iterator[tuple[ast.Call, bool]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.Call):
                yield child, deferred
            nested = deferred or isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            )
            yield from visit(child, nested)

    yield from visit(root, False)
