"""Diagnostics, suppression comments and source-file loading.

Every checker reports :class:`Diagnostic` records against a
:class:`SourceFile`, which owns the parsed AST plus the suppression
comments extracted from the raw text.  Suppressions use the syntax::

    do_risky_thing()  # turblint: disable=TXN01
    # turblint: disable-file=LOCK01     (anywhere in the file)

``disable=all`` silences every checker for the line (or file).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path

_SUPPRESS_RE = re.compile(
    r"#\s*turblint:\s*(disable|disable-file)\s*=\s*([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*|all)"
)


@dataclass(frozen=True)
class Diagnostic:
    """One reported violation, pointing at a source location."""

    code: str
    message: str
    path: str
    line: int
    col: int = 0

    def render(self) -> str:
        """The ``path:line:col: CODE message`` display form."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


class LintSyntaxError(Exception):
    """A scanned file failed to parse (reported, never swallowed)."""


class SourceFile:
    """A parsed Python source file plus its suppression directives.

    Args:
        path: filesystem path (used in diagnostics).
        module: dotted module name used for checker scoping (e.g.
            ``repro.storage.wal``).  Tests pass synthetic names to run a
            fixture under a specific checker's scope.
        text: source text; read from ``path`` when omitted.
    """

    def __init__(
        self, path: str | Path, module: str, text: str | None = None
    ) -> None:
        self.path = Path(path)
        self.module = module
        self.text = self.path.read_text() if text is None else text
        try:
            self.tree = ast.parse(self.text, filename=str(self.path))
        except SyntaxError as error:
            raise LintSyntaxError(f"{self.path}: {error}") from error
        self.line_disables: dict[int, set[str]] = {}
        self.file_disables: set[str] = set()
        self._parse_suppressions()
        self._parents: dict[ast.AST, ast.AST] | None = None

    def _parse_suppressions(self) -> None:
        for lineno, line in enumerate(self.text.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if match is None:
                continue
            codes = {
                code.strip().upper() for code in match.group(2).split(",")
            }
            if match.group(1) == "disable-file":
                self.file_disables |= codes
            else:
                self.line_disables.setdefault(lineno, set()).update(codes)

    def suppressed(self, code: str, line: int) -> bool:
        """Whether a diagnostic of ``code`` at ``line`` is silenced."""
        for scope in (self.file_disables, self.line_disables.get(line, set())):
            if "ALL" in scope or code.upper() in scope:
                return True
        return False

    def parents(self) -> dict[ast.AST, ast.AST]:
        """Child-to-parent map over the AST (built once, cached)."""
        if self._parents is None:
            table: dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    table[child] = node
            self._parents = table
        return self._parents

    def enclosing(
        self, node: ast.AST, *kinds: type[ast.AST]
    ) -> list[ast.AST]:
        """Ancestors of ``node`` matching ``kinds``, innermost first."""
        parents = self.parents()
        found = []
        current = parents.get(node)
        while current is not None:
            if isinstance(current, kinds):
                found.append(current)
            current = parents.get(current)
        return found
