"""Diagnostics, suppression comments and source-file loading.

Every checker reports :class:`Diagnostic` records against a
:class:`SourceFile`, which owns the parsed AST plus the suppression
comments extracted from the raw text.  Suppressions use the syntax::

    do_risky_thing()  # turblint: disable=TXN01
    # turblint: disable-file=LOCK01     (anywhere in the file)

``disable=all`` silences every checker for the line (or file).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path

_SUPPRESS_RE = re.compile(
    r"#\s*turblint:\s*(disable|disable-file)\s*=\s*([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*|all)"
)


@dataclass(frozen=True)
class Diagnostic:
    """One reported violation, pointing at a source location."""

    code: str
    message: str
    path: str
    line: int
    col: int = 0

    def render(self) -> str:
        """The ``path:line:col: CODE message`` display form."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


class LintSyntaxError(Exception):
    """A scanned file failed to parse (reported, never swallowed)."""


@dataclass
class SuppressionDirective:
    """One ``# turblint: disable[-file]=...`` comment in a file.

    Tracks which of its codes actually silenced a diagnostic during the
    run (``hits``) so SUP01 can flag stale directives.  ``codes`` holds
    upper-cased codes, or ``{"ALL"}`` for a blanket disable.
    """

    lineno: int
    kind: str  # "line" | "file"
    codes: set[str]
    hits: set[str]

    def stale_codes(self, active: set[str]) -> set[str]:
        """Codes this directive names that never fired.

        Only codes in ``active`` (checkers that actually ran) are
        considered — a partial ``--select`` run must not declare
        directives for unrun checkers stale.  A blanket ``all``
        directive is stale when nothing at all was suppressed by it.
        """
        if "ALL" in self.codes:
            return {"ALL"} if not self.hits else set()
        return {c for c in self.codes & active if c not in self.hits}


class SourceFile:
    """A parsed Python source file plus its suppression directives.

    Args:
        path: filesystem path (used in diagnostics).
        module: dotted module name used for checker scoping (e.g.
            ``repro.storage.wal``).  Tests pass synthetic names to run a
            fixture under a specific checker's scope.
        text: source text; read from ``path`` when omitted.
    """

    def __init__(
        self, path: str | Path, module: str, text: str | None = None
    ) -> None:
        self.path = Path(path)
        self.module = module
        self.text = self.path.read_text() if text is None else text
        try:
            self.tree = ast.parse(self.text, filename=str(self.path))
        except SyntaxError as error:
            raise LintSyntaxError(f"{self.path}: {error}") from error
        self.line_disables: dict[int, set[str]] = {}
        self.file_disables: set[str] = set()
        self.directives: list[SuppressionDirective] = []
        self._parse_suppressions()
        self._parents: dict[ast.AST, ast.AST] | None = None

    def _parse_suppressions(self) -> None:
        # Only real COMMENT tokens count: a directive quoted inside a
        # docstring (e.g. the examples at the top of this module) must
        # neither suppress anything nor be reported stale by SUP01.
        for lineno, comment in self._comments():
            match = _SUPPRESS_RE.search(comment)
            if match is None:
                continue
            codes = {
                code.strip().upper() for code in match.group(2).split(",")
            }
            if match.group(1) == "disable-file":
                self.file_disables |= codes
                self.directives.append(
                    SuppressionDirective(lineno, "file", codes, set())
                )
            else:
                self.line_disables.setdefault(lineno, set()).update(codes)
                self.directives.append(
                    SuppressionDirective(lineno, "line", codes, set())
                )

    def _comments(self) -> list[tuple[int, str]]:
        """``(lineno, text)`` for every comment token in the file."""
        reader = io.StringIO(self.text).readline
        try:
            return [
                (token.start[0], token.string)
                for token in tokenize.generate_tokens(reader)
                if token.type == tokenize.COMMENT
            ]
        except (tokenize.TokenError, IndentationError):
            # The AST parsed, so this is a tokenizer-only corner case;
            # fall back to scanning raw lines (over-matching is the
            # pre-existing behaviour).
            return list(
                enumerate(self.text.splitlines(), start=1)
            )

    def suppressed(self, code: str, line: int) -> bool:
        """Whether a diagnostic of ``code`` at ``line`` is silenced.

        As a side effect, records the hit on every directive that
        matches, which is what lets SUP01 find stale suppressions.
        """
        code = code.upper()
        hit = False
        for directive in self.directives:
            if directive.kind == "line" and directive.lineno != line:
                continue
            if "ALL" in directive.codes or code in directive.codes:
                directive.hits.add(code)
                hit = True
        return hit

    def parents(self) -> dict[ast.AST, ast.AST]:
        """Child-to-parent map over the AST (built once, cached)."""
        if self._parents is None:
            table: dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    table[child] = node
            self._parents = table
        return self._parents

    def enclosing(
        self, node: ast.AST, *kinds: type[ast.AST]
    ) -> list[ast.AST]:
        """Ancestors of ``node`` matching ``kinds``, innermost first."""
        parents = self.parents()
        found = []
        current = parents.get(node)
        while current is not None:
            if isinstance(current, kinds):
                found.append(current)
            current = parents.get(current)
        return found
