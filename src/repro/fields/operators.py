"""Differential operators on 3-D vector and scalar fields.

Vector fields are arrays of shape ``(nx, ny, nz, 3)`` indexed ``[x, y,
z, component]``; scalars drop the trailing axis.  Every operator comes
in a ``_periodic`` flavour (whole wrapped domain) and an ``_interior``
flavour (halo-padded block, as assembled by the per-node executor).
"""

from __future__ import annotations

import numpy as np

from repro.fields.finite_difference import (
    derivative_interior,
    derivative_periodic,
)


def _check_vector(field: np.ndarray) -> None:
    if field.ndim != 4 or field.shape[3] != 3:
        raise ValueError(f"expected (nx, ny, nz, 3) vector field, got {field.shape}")


def curl_periodic(field: np.ndarray, spacing: float, order: int = 4) -> np.ndarray:
    """Curl of a periodic vector field (paper Eq. 1).

    Returns an array of the same shape.  For the velocity this is the
    vorticity; for the magnetic field, the electric current.
    """
    _check_vector(field)

    def d(comp: int, axis: int) -> np.ndarray:
        return derivative_periodic(field[..., comp], axis, spacing, order)

    return np.stack(
        [d(2, 1) - d(1, 2), d(0, 2) - d(2, 0), d(1, 0) - d(0, 1)], axis=-1
    )


def curl_interior(
    block: np.ndarray, spacing: float, order: int = 4, margin: int | None = None
) -> np.ndarray:
    """Curl on the interior of a halo-padded vector block."""
    _check_vector(block)

    def d(comp: int, axis: int) -> np.ndarray:
        return derivative_interior(block[..., comp], axis, spacing, order, margin)

    return np.stack(
        [d(2, 1) - d(1, 2), d(0, 2) - d(2, 0), d(1, 0) - d(0, 1)], axis=-1
    )


def divergence_periodic(
    field: np.ndarray, spacing: float, order: int = 4
) -> np.ndarray:
    """Divergence of a periodic vector field (0 for solenoidal fields)."""
    _check_vector(field)
    return sum(
        derivative_periodic(field[..., comp], comp, spacing, order)
        for comp in range(3)
    )


def gradient_tensor_periodic(
    field: np.ndarray, spacing: float, order: int = 4
) -> np.ndarray:
    """Velocity-gradient tensor A_ij = dv_i/dx_j of a periodic field.

    Returns shape ``(nx, ny, nz, 3, 3)``.  The paper notes this tensor
    has 9 components versus the velocity's 3, which is why shipping it to
    a client is prohibitively expensive (§5.3).
    """
    _check_vector(field)
    rows = [
        np.stack(
            [
                derivative_periodic(field[..., i], j, spacing, order)
                for j in range(3)
            ],
            axis=-1,
        )
        for i in range(3)
    ]
    return np.stack(rows, axis=-2)


def gradient_tensor_interior(
    block: np.ndarray, spacing: float, order: int = 4, margin: int | None = None
) -> np.ndarray:
    """Velocity-gradient tensor on the interior of a halo-padded block."""
    _check_vector(block)
    rows = [
        np.stack(
            [
                derivative_interior(block[..., i], j, spacing, order, margin)
                for j in range(3)
            ],
            axis=-1,
        )
        for i in range(3)
    ]
    return np.stack(rows, axis=-2)


def q_criterion_from_gradient(gradient: np.ndarray) -> np.ndarray:
    """Second velocity-gradient invariant Q = -tr(A^2)/2.

    For incompressible flow Q = (||Omega||^2 - ||S||^2)/2, positive in
    rotation-dominated regions (vortex cores).  Computed from all nine
    tensor components — the non-linear combination the paper cites as
    the reason Q costs more to evaluate than the vorticity (§5.4).
    """
    a_squared = np.einsum("...ij,...ji->...", gradient, gradient)
    return -0.5 * a_squared


def r_invariant_from_gradient(gradient: np.ndarray) -> np.ndarray:
    """Third velocity-gradient invariant R = -det(A)."""
    return -np.linalg.det(gradient)
