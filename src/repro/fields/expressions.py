"""A declarative expression language for derived fields.

The paper's future work (§7) calls for "declarative and graphical user
interfaces that will allow users to combine existing building blocks and
perform computations that have not been explicitly implemented" —
because the production stored procedure needed hand-written code per
derived field.  This module supplies that capability: an expression such
as ::

    norm(curl(velocity))            # the vorticity norm
    abs(q(velocity))                # |Q|-criterion
    norm(curl(magnetic))            # electric current
    abs(div(velocity))              # compressibility check
    norm(curl(velocity)) * 0.5      # scaled quantities

compiles into a :class:`~repro.fields.derived.DerivedField` that the
threshold engine evaluates like any built-in — with the kernel halo
*inferred* from the nesting depth of differential operators and the
per-point compute cost estimated from the operators used.

Grammar::

    expr    := sum
    sum     := product (('+' | '-') product)*
    product := atom (('*' ) atom)*
    atom    := NUMBER | IDENT | IDENT '(' expr ')' | '(' expr ')'

Functions: ``curl`` (vector->vector), ``div`` (vector->scalar), ``grad``
(scalar->vector), ``q``/``r`` (vector->scalar invariants), ``norm``
(vector->scalar), ``abs`` (scalar->scalar).  An expression must reference
exactly one raw stored field and must produce a scalar (the thresholdable
norm); arithmetic requires scalar operands (or literals).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.fields.derived import DerivedField
from repro.fields.finite_difference import derivative_interior, kernel_half_width
from repro.fields.operators import (
    curl_interior,
    gradient_tensor_interior,
    q_criterion_from_gradient,
    r_invariant_from_gradient,
)


class ExpressionError(ValueError):
    """Malformed or ill-typed field expression."""


# -- AST -------------------------------------------------------------------

VECTOR, SCALAR = "vector", "scalar"


@dataclass(frozen=True)
class _Node:
    """One AST node.

    ``kind`` is ``field``, ``number``, ``call`` or an operator symbol;
    ``children`` are operand nodes; ``value`` the field name / literal /
    function name.
    """

    kind: str
    value: object = None
    children: tuple["_Node", ...] = ()


_FUNCTIONS: dict[str, dict] = {
    # name: input type, output type, derivative depth, unit cost
    "curl": {"in": VECTOR, "out": VECTOR, "depth": 1, "units": 1.0},
    "div": {"in": VECTOR, "out": SCALAR, "depth": 1, "units": 0.6},
    "grad": {"in": SCALAR, "out": VECTOR, "depth": 1, "units": 0.6},
    "q": {"in": VECTOR, "out": SCALAR, "depth": 1, "units": 1.8},
    "r": {"in": VECTOR, "out": SCALAR, "depth": 1, "units": 2.4},
    "norm": {"in": VECTOR, "out": SCALAR, "depth": 0, "units": 0.05},
    "abs": {"in": SCALAR, "out": SCALAR, "depth": 0, "units": 0.02},
}

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<number>\d+\.\d+|\d+)|(?P<ident>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op>[()+\-*,]))"
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens, pos = [], 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ExpressionError(f"cannot parse expression near {text[pos:]!r}")
        pos = match.end()
        for kind in ("number", "ident", "op"):
            value = match.group(kind)
            if value is not None:
                tokens.append((kind, value))
                break
    return tokens


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]]) -> None:
        self._tokens = tokens
        self._pos = 0

    def parse(self) -> _Node:
        node = self._sum()
        if self._pos != len(self._tokens):
            raise ExpressionError(
                f"unexpected token {self._tokens[self._pos][1]!r}"
            )
        return node

    def _peek(self) -> tuple[str, str] | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _accept(self, kind: str, value: str | None = None):
        token = self._peek()
        if token and token[0] == kind and (value is None or token[1] == value):
            self._pos += 1
            return token
        return None

    def _expect(self, kind: str, value: str | None = None):
        token = self._accept(kind, value)
        if token is None:
            want = value or kind
            got = self._peek()
            raise ExpressionError(
                f"expected {want!r}, found {got[1] if got else 'end'!r}"
            )
        return token

    def _sum(self) -> _Node:
        node = self._product()
        while True:
            if self._accept("op", "+"):
                node = _Node("+", children=(node, self._product()))
            elif self._accept("op", "-"):
                node = _Node("-", children=(node, self._product()))
            else:
                return node

    def _product(self) -> _Node:
        node = self._atom()
        while self._accept("op", "*"):
            node = _Node("*", children=(node, self._atom()))
        return node

    def _atom(self) -> _Node:
        if self._accept("op", "("):
            node = self._sum()
            self._expect("op", ")")
            return node
        token = self._accept("number")
        if token:
            return _Node("number", float(token[1]))
        token = self._expect("ident")
        name = token[1]
        if self._accept("op", "("):
            argument = self._sum()
            self._expect("op", ")")
            if name not in _FUNCTIONS:
                raise ExpressionError(
                    f"unknown function {name!r}; known: {sorted(_FUNCTIONS)}"
                )
            return _Node("call", name, (argument,))
        return _Node("field", name)


# -- analysis ------------------------------------------------------------------


@dataclass(frozen=True)
class FieldExpression:
    """A compiled derived-field expression.

    Attributes:
        text: the source expression.
        source: the single raw field referenced.
        source_components: its component count.
        depth: nesting depth of differential operators (halo = depth *
            kernel half-width of the FD order).
        units_per_point: estimated compute cost per grid point.
    """

    text: str
    root: _Node
    source: str
    source_components: int
    depth: int
    units_per_point: float

    def as_derived_field(self, name: str) -> DerivedField:
        """Wrap as a :class:`DerivedField` registrable in a registry."""
        root, depth = self.root, self.depth

        def norm(block: np.ndarray, spacing: float, order: int) -> np.ndarray:
            margin = depth * kernel_half_width(order)
            value, remaining = _evaluate(root, block, spacing, order, margin)
            out = _trim(value, remaining)
            if out.ndim == 4:  # scalar carried with a trailing axis
                out = out[..., 0]
            return np.abs(out.astype(np.float64))

        return DerivedField(
            name=name,
            source=self.source,
            source_components=self.source_components,
            differential=depth > 0,
            units_per_point=self.units_per_point,
            norm=norm,
            halo_depth=max(depth, 1),
        )


def compile_expression(
    text: str, raw_fields: dict[str, int] | None = None
) -> FieldExpression:
    """Parse, type-check and cost a field expression.

    Args:
        text: the expression source.
        raw_fields: name -> component count of the raw stored fields
            available (defaults to velocity/magnetic = 3, pressure = 1).

    Raises:
        ExpressionError: syntax errors, unknown names, type errors,
            multiple raw fields, or a non-scalar result.
    """
    if raw_fields is None:
        raw_fields = {"velocity": 3, "magnetic": 3, "pressure": 1}
    root = _Parser(_tokenize(text)).parse()

    sources: set[str] = set()
    units = [0.0]

    def check(node: _Node) -> str:
        if node.kind == "number":
            return "number"
        if node.kind == "field":
            if node.value not in raw_fields:
                raise ExpressionError(
                    f"unknown raw field {node.value!r}; "
                    f"known: {sorted(raw_fields)}"
                )
            sources.add(node.value)
            return VECTOR if raw_fields[node.value] == 3 else SCALAR
        if node.kind == "call":
            spec = _FUNCTIONS[node.value]
            argument = check(node.children[0])
            if argument != spec["in"]:
                raise ExpressionError(
                    f"{node.value}() expects a {spec['in']}, got {argument}"
                )
            units[0] += spec["units"]
            return spec["out"]
        # arithmetic
        left = check(node.children[0])
        right = check(node.children[1])
        for operand in (left, right):
            if operand == VECTOR:
                raise ExpressionError(
                    f"operator {node.kind!r} requires scalar operands"
                )
        units[0] += 0.02
        if left == right == "number":
            return "number"
        return SCALAR

    result = check(root)
    if result == "number":
        raise ExpressionError("expression is a constant, not a field")
    if result != SCALAR:
        raise ExpressionError(
            "a thresholdable expression must produce a scalar "
            "(wrap vectors in norm(...))"
        )
    if len(sources) != 1:
        raise ExpressionError(
            f"expression must reference exactly one raw field, got "
            f"{sorted(sources) or 'none'}"
        )

    def depth_of(node: _Node) -> int:
        child_depth = max((depth_of(c) for c in node.children), default=0)
        if node.kind == "call":
            return child_depth + _FUNCTIONS[node.value]["depth"]
        return child_depth

    source = sources.pop()
    return FieldExpression(
        text=text,
        root=root,
        source=source,
        source_components=raw_fields[source],
        depth=depth_of(root),
        units_per_point=max(units[0], 0.02),
    )


# -- evaluation -------------------------------------------------------------------


def _trim(array: np.ndarray, margin: int) -> np.ndarray:
    if margin == 0:
        return array
    sl = (slice(margin, -margin),) * 3
    return array[sl]


def _align(a: np.ndarray, am: int, b: np.ndarray, bm: int):
    """Trim two operands to the smaller margin."""
    margin = min(am, bm)
    return _trim(a, am - margin), _trim(b, bm - margin), margin


def _evaluate(
    node: _Node, block: np.ndarray, spacing: float, order: int, margin: int
):
    """Evaluate ``node`` on a block carrying ``margin`` halo cells.

    Returns ``(array, remaining_margin)``; differential operators shrink
    the array and consume ``kernel_half_width(order)`` margin each.
    """
    half = kernel_half_width(order)
    if node.kind == "number":
        return float(node.value), margin
    if node.kind == "field":
        return block, margin
    if node.kind == "call":
        value, m = _evaluate(node.children[0], block, spacing, order, margin)
        name = node.value
        if name == "curl":
            return curl_interior(value, spacing, order, half), m - half
        if name == "div":
            out = sum(
                derivative_interior(value[..., c], c, spacing, order, half)
                for c in range(3)
            )
            return out[..., None], m - half
        if name == "grad":
            scalar = value[..., 0]
            out = np.stack(
                [
                    derivative_interior(scalar, axis, spacing, order, half)
                    for axis in range(3)
                ],
                axis=-1,
            )
            return out, m - half
        if name in ("q", "r"):
            tensor = gradient_tensor_interior(value, spacing, order, half)
            fn = (
                q_criterion_from_gradient
                if name == "q"
                else r_invariant_from_gradient
            )
            return fn(tensor)[..., None], m - half
        if name == "norm":
            return np.sqrt(
                np.sum(np.square(value, dtype=np.float64), axis=-1)
            )[..., None], m
        # abs
        return np.abs(value), m

    left, lm = _evaluate(node.children[0], block, spacing, order, margin)
    right, rm = _evaluate(node.children[1], block, spacing, order, margin)
    if isinstance(left, float) or isinstance(right, float):
        m = rm if isinstance(left, float) else lm
        a, b = left, right
    else:
        a, b, m = _align(left, lm, right, rm)
    if node.kind == "+":
        return a + b, m
    if node.kind == "-":
        return a - b, m
    return a * b, m
