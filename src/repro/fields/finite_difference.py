"""Central finite-difference derivatives of order 2, 4, 6 and 8.

The JHTDB evaluates spatial derivatives with centred finite differencing
of selectable order (paper Eq. 2 shows the 4th-order stencil).  An
order-``2m`` centred first derivative uses the ``2m`` neighbours within
distance ``m`` along the axis, so the *kernel half-width* — the halo of
extra data a node must fetch from its neighbours — is ``order // 2``.

Two evaluation modes are provided:

* :func:`derivative_periodic` differentiates a whole periodic domain
  (ground truth for tests and for client-side baselines);
* :func:`derivative_interior` differentiates the interior of a block
  that carries a halo of ``margin`` points on every face, which is how
  the per-node executor works on assembled atom data.
"""

from __future__ import annotations

import numpy as np

#: Finite-difference orders with known centred coefficients.
SUPPORTED_ORDERS = (2, 4, 6, 8)

# Coefficients c_k of sum_k c_k * (f(x + k*dx) - f(x - k*dx)) / dx for the
# centred first derivative, indexed by order.
_COEFFICIENTS: dict[int, tuple[float, ...]] = {
    2: (1 / 2,),
    4: (2 / 3, -1 / 12),
    6: (3 / 4, -3 / 20, 1 / 60),
    8: (4 / 5, -1 / 5, 4 / 105, -1 / 280),
}


def fd_coefficients(order: int) -> tuple[float, ...]:
    """Centred-difference coefficients ``(c_1, ..., c_m)`` for ``order``.

    Raises:
        ValueError: for an unsupported order.
    """
    try:
        return _COEFFICIENTS[order]
    except KeyError:
        raise ValueError(
            f"order {order} unsupported; pick one of {SUPPORTED_ORDERS}"
        ) from None


def kernel_half_width(order: int) -> int:
    """Halo points needed on each face for an ``order`` derivative."""
    fd_coefficients(order)
    return order // 2


def derivative_periodic(
    data: np.ndarray, axis: int, spacing: float, order: int = 4
) -> np.ndarray:
    """First derivative along ``axis`` of a periodic field.

    ``data`` may have trailing component axes; only ``axis`` (0, 1 or 2)
    is differentiated.

    Raises:
        ValueError: bad axis, non-positive spacing or unsupported order.
    """
    _check_axis_spacing(axis, spacing)
    out = np.zeros_like(data, dtype=np.result_type(data, np.float64))
    for k, coeff in enumerate(fd_coefficients(order), start=1):
        out += coeff * (np.roll(data, -k, axis=axis) - np.roll(data, k, axis=axis))
    return out / spacing


def derivative_interior(
    block: np.ndarray, axis: int, spacing: float, order: int = 4, margin: int | None = None
) -> np.ndarray:
    """First derivative on the interior of a halo-padded block.

    ``block`` holds the region of interest plus a halo of ``margin``
    points on every face of the first three axes (``margin`` defaults to
    the kernel half-width).  The result has the interior shape
    ``(nx - 2*margin, ny - 2*margin, nz - 2*margin, ...)``.

    Raises:
        ValueError: if the halo is thinner than the stencil needs.
    """
    _check_axis_spacing(axis, spacing)
    half = kernel_half_width(order)
    if margin is None:
        margin = half
    if margin < half:
        raise ValueError(f"margin {margin} too small for order {order} (needs {half})")
    for ax in range(3):
        if block.shape[ax] < 2 * margin + 1:
            raise ValueError(
                f"block axis {ax} of size {block.shape[ax]} thinner than halo"
            )
    out = np.zeros(_interior_shape(block.shape, margin), dtype=np.float64)
    for k, coeff in enumerate(fd_coefficients(order), start=1):
        plus = _interior_view(block, margin, axis, +k)
        minus = _interior_view(block, margin, axis, -k)
        out += coeff * (plus.astype(np.float64) - minus)
    return out / spacing


def _interior_shape(shape: tuple[int, ...], margin: int) -> tuple[int, ...]:
    return tuple(
        n - 2 * margin if ax < 3 else n for ax, n in enumerate(shape)
    )


def _interior_view(
    block: np.ndarray, margin: int, axis: int, offset: int
) -> np.ndarray:
    """The interior of ``block`` shifted by ``offset`` along ``axis``."""
    slices = []
    for ax in range(block.ndim):
        if ax >= 3:
            slices.append(slice(None))
            continue
        start = margin + (offset if ax == axis else 0)
        stop = block.shape[ax] - margin + (offset if ax == axis else 0)
        slices.append(slice(start, stop))
    return block[tuple(slices)]


def _check_axis_spacing(axis: int, spacing: float) -> None:
    if axis not in (0, 1, 2):
        raise ValueError(f"axis must be 0, 1 or 2, got {axis}")
    if spacing <= 0:
        raise ValueError(f"spacing must be positive, got {spacing}")
