"""Derived fields: finite differences, differential operators, registry.

The database stores only raw simulation fields (velocity, pressure,
magnetic field); the scientifically interesting quantities — vorticity,
the Q and R velocity-gradient invariants, the electric current — are
*derived* on demand through kernel computations with local support
(paper §3, §4).  This package provides:

* central finite differences of order 2/4/6/8
  (:mod:`~repro.fields.finite_difference`),
* differential operators built on them — gradient, curl, divergence,
  the velocity-gradient tensor (:mod:`~repro.fields.operators`),
* the derived-field registry mapping field names to their source field,
  kernel half-width and per-point compute cost
  (:mod:`~repro.fields.derived`).
"""

from repro.fields.finite_difference import (
    SUPPORTED_ORDERS,
    derivative_interior,
    derivative_periodic,
    fd_coefficients,
    kernel_half_width,
)
from repro.fields.operators import (
    curl_interior,
    curl_periodic,
    divergence_periodic,
    gradient_tensor_interior,
    gradient_tensor_periodic,
)
from repro.fields.derived import (
    DerivedField,
    FieldRegistry,
    UnknownFieldError,
    default_registry,
)

__all__ = [
    "SUPPORTED_ORDERS",
    "DerivedField",
    "FieldRegistry",
    "UnknownFieldError",
    "curl_interior",
    "curl_periodic",
    "default_registry",
    "derivative_interior",
    "derivative_periodic",
    "divergence_periodic",
    "fd_coefficients",
    "gradient_tensor_interior",
    "gradient_tensor_periodic",
    "kernel_half_width",
]
