"""The derived-field registry.

A :class:`DerivedField` ties together everything the threshold engine
needs to know about one quantity: which raw stored field it derives
from, how wide its computation kernel is (and hence how much halo the
executor must fetch), how expensive it is per grid point, and how to
compute its thresholdable norm on a halo-padded block.

The production stored procedure "must have an implementation for each
derived field of interest" (paper §7); the registry is this
reproduction's equivalent, and :meth:`FieldRegistry.register` is how new
fields are added.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.fields.finite_difference import kernel_half_width
from repro.fields.operators import (
    curl_interior,
    gradient_tensor_interior,
    q_criterion_from_gradient,
    r_invariant_from_gradient,
)


class UnknownFieldError(KeyError):
    """Requested field is not in the registry."""


@dataclass(frozen=True)
class DerivedField:
    """Metadata and kernel of one thresholdable field.

    Attributes:
        name: public field name used in queries.
        source: name of the raw stored field the kernel reads.
        source_components: component count of the source field.
        differential: whether the kernel applies finite differences (its
            halo is then the FD order's half-width; raw fields need none).
        units_per_point: compute cost in work units per grid point
            (vorticity defines 1.0; see
            :class:`repro.costmodel.devices.CpuSpec`).
        norm: function ``(block, spacing, order) -> norm array`` mapping
            a halo-padded source block to the interior's scalar norm.
        halo_depth: how many differential operators nest (compiled
            expressions like ``curl(curl(v))`` need a proportionally
            wider halo).
    """

    name: str
    source: str
    source_components: int
    differential: bool
    units_per_point: float
    norm: Callable[[np.ndarray, float, int], np.ndarray]
    halo_depth: int = 1

    def halo(self, order: int) -> int:
        """Halo points needed per face at the given FD order."""
        if not self.differential:
            return 0
        return self.halo_depth * kernel_half_width(order)


def _vector_norm(field: np.ndarray) -> np.ndarray:
    return np.sqrt(np.sum(np.square(field, dtype=np.float64), axis=-1))


def _curl_norm(block: np.ndarray, spacing: float, order: int) -> np.ndarray:
    margin = kernel_half_width(order)
    return _vector_norm(curl_interior(block, spacing, order, margin))


def _q_norm(block: np.ndarray, spacing: float, order: int) -> np.ndarray:
    margin = kernel_half_width(order)
    gradient = gradient_tensor_interior(block, spacing, order, margin)
    return np.abs(q_criterion_from_gradient(gradient))


def _r_norm(block: np.ndarray, spacing: float, order: int) -> np.ndarray:
    margin = kernel_half_width(order)
    gradient = gradient_tensor_interior(block, spacing, order, margin)
    return np.abs(r_invariant_from_gradient(gradient))


def _raw_vector_norm(block: np.ndarray, spacing: float, order: int) -> np.ndarray:
    return _vector_norm(block)


def _raw_scalar_norm(block: np.ndarray, spacing: float, order: int) -> np.ndarray:
    return np.abs(block[..., 0].astype(np.float64))


class FieldRegistry:
    """Name -> :class:`DerivedField` lookup with registration."""

    def __init__(self) -> None:
        self._fields: dict[str, DerivedField] = {}

    def register(self, field: DerivedField) -> DerivedField:
        """Add a field definition; returns it.

        Raises:
            ValueError: if the name is already taken.
        """
        if field.name in self._fields:
            raise ValueError(f"field {field.name!r} already registered")
        self._fields[field.name] = field
        return field

    def register_expression(
        self, name: str, text: str, raw_fields: dict[str, int] | None = None
    ) -> DerivedField:
        """Compile a declarative expression and register it under ``name``.

        This is the paper's §7 capability — combining existing building
        blocks without writing a new stored procedure::

            registry.register_expression("enstrophy_like",
                                         "norm(curl(velocity)) * 0.5")

        See :mod:`repro.fields.expressions` for the grammar.

        Raises:
            ExpressionError: on a malformed or ill-typed expression.
            ValueError: if the name is already taken.
        """
        from repro.fields.expressions import compile_expression

        expression = compile_expression(text, raw_fields)
        return self.register(expression.as_derived_field(name))

    def get(self, name: str) -> DerivedField:
        """Look up a field.  Raises :class:`UnknownFieldError`."""
        try:
            return self._fields[name]
        except KeyError:
            raise UnknownFieldError(
                f"unknown field {name!r}; known: {sorted(self._fields)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._fields

    def names(self) -> list[str]:
        """All registered field names, sorted."""
        return sorted(self._fields)


def default_registry() -> FieldRegistry:
    """The stock registry covering every field the paper evaluates.

    * ``vorticity`` — curl of the velocity (Fig. 2/4/6, Table 1, Fig. 9a/d);
    * ``q_criterion`` — second velocity-gradient invariant (Fig. 9b/e);
    * ``r_invariant`` — third invariant (§3);
    * ``electric_current`` — curl of the magnetic field (§3);
    * ``magnetic``, ``velocity`` — raw stored fields thresholded on their
      norm with a single-point kernel (Fig. 9c/f);
    * ``pressure`` — raw stored scalar.
    """
    registry = FieldRegistry()
    registry.register(
        DerivedField("vorticity", "velocity", 3, True, 1.0, _curl_norm)
    )
    registry.register(
        DerivedField("q_criterion", "velocity", 3, True, 1.8, _q_norm)
    )
    registry.register(
        DerivedField("r_invariant", "velocity", 3, True, 2.4, _r_norm)
    )
    registry.register(
        DerivedField("electric_current", "magnetic", 3, True, 1.0, _curl_norm)
    )
    registry.register(
        DerivedField("magnetic", "magnetic", 3, False, 0.02, _raw_vector_norm)
    )
    registry.register(
        DerivedField("velocity", "velocity", 3, False, 0.02, _raw_vector_norm)
    )
    registry.register(
        DerivedField("pressure", "pressure", 1, False, 0.02, _raw_scalar_norm)
    )
    return registry
