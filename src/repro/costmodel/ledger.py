"""Cost ledger: simulated-time accounting with parallel composition.

A :class:`CostLedger` accumulates simulated seconds per cost
:class:`Category`.  Ledgers compose in two ways, mirroring the structure
of a distributed query:

* **serial** (``a.add(b)``) — phases executed one after another on the
  same executor; times sum per category.
* **parallel** (``CostLedger.parallel([...])``) — symmetric data-parallel
  branches (cluster nodes, or worker processes within a node) that march
  through the same phases concurrently; the critical path of each phase
  is its slowest branch, so times combine as a per-category maximum.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable


class Category(enum.Enum):
    """Cost categories matching the stacked bars of the paper's Figure 9."""

    CACHE_LOOKUP = "cache_lookup"
    IO = "io"
    COMPUTE = "compute"
    MEDIATOR_DB = "mediator_db"
    MEDIATOR_USER = "mediator_user"

    def __repr__(self) -> str:  # terse repr for breakdown dumps
        return self.value


# Standard meter names used across the engine.
METER_IO_BYTES = "io_bytes"  #: bytes read from the data (HDD) tables
METER_IO_SEEKS = "io_seeks"  #: discontiguous extents touched on HDD
METER_CACHE_BYTES = "cache_bytes"  #: bytes read/written on the cache SSD
METER_COMPUTE_UNITS = "compute_units"  #: kernel work units executed
METER_RESULT_POINTS = "result_points"  #: points returned to the mediator
METER_HALO_SECONDS = "halo_seconds"  #: node-to-node boundary transfer time
METER_HALO_BYTES = "halo_bytes"  #: bytes of boundary data fetched from peers
METER_WIRE_BYTES = "wire_bytes"  #: real bytes moved over mediator<->node sockets


class CostLedger:
    """Simulated seconds accumulated per :class:`Category`.

    Besides seconds, a ledger carries *meters* — named work counters
    (bytes read, seeks, kernel points) that compose additively under both
    serial and parallel merging.  Orchestration layers use them to
    re-derive a category's time under a different device regime (e.g.
    I/O time of P processes sharing one disk array).
    """

    __slots__ = ("_seconds", "_meters")

    def __init__(self, seconds: dict[Category, float] | None = None) -> None:
        self._seconds: dict[Category, float] = {cat: 0.0 for cat in Category}
        self._meters: dict[str, float] = {}
        if seconds:
            for cat, value in seconds.items():
                self.charge(cat, value)

    def charge(self, category: Category, seconds: float) -> None:
        """Add ``seconds`` of simulated time to ``category``.

        Raises:
            ValueError: on a negative charge.
        """
        if seconds < 0:
            raise ValueError(f"negative charge {seconds} to {category}")
        self._seconds[category] += float(seconds)

    def count(self, meter: str, amount: float) -> None:
        """Add ``amount`` units of work to the named meter.

        Raises:
            ValueError: on a negative amount.
        """
        if amount < 0:
            raise ValueError(f"negative count {amount} for meter {meter!r}")
        self._meters[meter] = self._meters.get(meter, 0.0) + amount

    def meter(self, name: str) -> float:
        """Current value of a meter (0 if never counted)."""
        return self._meters.get(name, 0.0)

    def meters(self) -> dict[str, float]:
        """A copy of every meter, for serialization and reports."""
        return dict(self._meters)

    def set_category(self, category: Category, seconds: float) -> None:
        """Overwrite a category's time (used to re-derive contended I/O).

        Raises:
            ValueError: on negative seconds.
        """
        if seconds < 0:
            raise ValueError(f"negative time {seconds} for {category}")
        self._seconds[category] = float(seconds)

    def __getitem__(self, category: Category) -> float:
        return self._seconds[category]

    @property
    def total(self) -> float:
        """Total simulated elapsed seconds across all categories."""
        return sum(self._seconds.values())

    def add(self, other: "CostLedger") -> None:
        """Serial composition: append ``other``'s phases after this one's."""
        for cat in Category:
            self._seconds[cat] += other._seconds[cat]
        for name, amount in other._meters.items():
            self._meters[name] = self._meters.get(name, 0.0) + amount

    @classmethod
    def parallel(cls, branches: Iterable["CostLedger"]) -> "CostLedger":
        """Parallel composition of symmetric branches.

        Each phase's critical path is the slowest branch, so seconds
        combine as a per-category maximum; meters count total work done
        and therefore sum.  An empty iterable yields an all-zero ledger.
        """
        combined = cls()
        for branch in branches:
            for cat in Category:
                combined._seconds[cat] = max(
                    combined._seconds[cat], branch._seconds[cat]
                )
            for name, amount in branch._meters.items():
                combined._meters[name] = combined._meters.get(name, 0.0) + amount
        return combined

    def copy(self) -> "CostLedger":
        """An independent copy (seconds and meters)."""
        dup = CostLedger(dict(self._seconds))
        dup._meters = dict(self._meters)
        return dup

    def scaled(self, factor: float) -> "CostLedger":
        """A new ledger with seconds and meters multiplied by ``factor``.

        Used to project small-grid measurements to paper scale.
        """
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        dup = CostLedger({cat: s * factor for cat, s in self._seconds.items()})
        dup._meters = {name: v * factor for name, v in self._meters.items()}
        return dup

    def breakdown(self) -> dict[str, float]:
        """Category-name -> seconds mapping, for reports."""
        return {cat.value: self._seconds[cat] for cat in Category}

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{cat.value}={self._seconds[cat]:.4g}"
            for cat in Category
            if self._seconds[cat]
        )
        return f"CostLedger({parts or 'empty'})"
