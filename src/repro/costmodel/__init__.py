"""Deterministic cost model of the JHTDB cluster hardware.

The paper's evaluation (§5) reports *time breakdowns* — I/O vs compute vs
cache lookup vs mediator/network time — measured on production hardware: 4
database nodes with 24-disk RAID-5 HDD arrays, per-node SSDs for the cache
tables, a LAN between mediator and nodes, and WAN clients speaking SOAP.
A laptop cannot exhibit those ratios at 1024^3 scale, so this package
models them: every byte moved through a device and every grid point pushed
through a kernel is charged deterministic simulated seconds to a
:class:`CostLedger`, calibrated against the paper's own measurements
(see :mod:`repro.costmodel.calibration`).

Wall-clock performance of the actual Python pipeline is measured
separately by pytest-benchmark; the ledger is what reproduces the
figures' shapes.
"""

from repro.costmodel.ledger import Category, CostLedger
from repro.costmodel.devices import (
    CpuSpec,
    HddArraySpec,
    NetworkSpec,
    SsdSpec,
)
from repro.costmodel.calibration import ClusterSpec, paper_cluster, paper_scale_spec

__all__ = [
    "Category",
    "ClusterSpec",
    "CostLedger",
    "CpuSpec",
    "HddArraySpec",
    "NetworkSpec",
    "SsdSpec",
    "paper_cluster",
    "paper_scale_spec",
]
