"""Cluster hardware specification calibrated against the paper's numbers.

The default :func:`paper_cluster` reproduces the ratios the paper reports
for its production deployment (§5.1, §5.2–5.4):

* a no-cache full-timestep vorticity query at 4 nodes x 4 processes takes
  ~100-115 s, of which I/O and compute dominate in roughly equal parts
  (Fig. 8, Fig. 9a);
* single-process I/O alone is ~half the single-process total, and extra
  processes shrink I/O time only modestly (Fig. 8);
* cache hits answer in 0.5-9 s, dominated by shipping results to the
  user (Fig. 9d-f, Table 1);
* local (client-side) evaluation of the same query takes tens of hours
  (§5.3) because the 9-component velocity gradient must cross the WAN in
  XML.

Calibration targets the paper's 1024^3 MHD dataset with single-precision
vector fields (12 GiB of velocity per timestep, ~3 GiB per node on 4
nodes).  With ``stream_mib_s = 25`` one process reads its node's share in
~125 s — the Fig. 8 I/O-only bar — and ``units_per_s = 2e6`` makes the
vorticity kernel over 256M points per node cost ~128 s single-process,
matching the Fig. 8 total of ~260 s.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.costmodel.devices import CpuSpec, HddArraySpec, NetworkSpec, SsdSpec


@dataclass(frozen=True)
class ClusterSpec:
    """Hardware description used to charge simulated time.

    Attributes:
        hdd: per-node RAID arrays holding the data tables.
        ssd: per-node solid-state drive holding the cache tables.
        lan: mediator <-> database-node link.
        interconnect: node <-> node link carrying halo (boundary) bands.
        wan: mediator <-> end-user link (SOAP/XML inflation applied).
        cpu: per-process kernel computation rate.
        point_record_bytes: bytes per result point as stored/shipped
            (BIGINT zindex + FLOAT value + row overhead).
    """

    hdd: HddArraySpec = field(default_factory=HddArraySpec)
    ssd: SsdSpec = field(default_factory=SsdSpec)
    lan: NetworkSpec = field(
        default_factory=lambda: NetworkSpec(bandwidth_mib_s=110.0, latency_s=5e-4)
    )
    interconnect: NetworkSpec = field(
        default_factory=lambda: NetworkSpec(bandwidth_mib_s=110.0, latency_s=2e-4)
    )
    wan: NetworkSpec = field(
        default_factory=lambda: NetworkSpec(
            bandwidth_mib_s=12.0, latency_s=0.05, inflation=5.0
        )
    )
    cpu: CpuSpec = field(default_factory=CpuSpec)
    point_record_bytes: int = 20

    def with_overrides(self, **kwargs) -> "ClusterSpec":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)


def paper_cluster() -> ClusterSpec:
    """The default spec calibrated to the paper's production cluster."""
    return ClusterSpec()


def paper_scale_spec(side: int, base: ClusterSpec | None = None) -> ClusterSpec:
    """A spec that charges paper-scale seconds for a ``side``-sized grid.

    The paper's experiments are throughput-dominated: a node share is
    gigabytes, so per-extent seeks and per-request latencies vanish next
    to streaming time.  A laptop-sized grid (64^3-128^3) inverts that
    regime — fixed costs dominate and every scaling curve flattens.

    Dividing every *throughput* (disk, SSD, network, CPU) by the volume
    ratio ``(1024 / side)^3`` while keeping seeks and latencies unchanged
    restores the paper's operating point exactly: each byte read at
    64^3 stands for 4096 bytes at 1024^3, so the simulated seconds are
    directly comparable with the paper's reported numbers.

    The node interconnect is deliberately *not* scaled: halo bands grow
    with a region's surface (times the atom depth), not its volume, so
    at a small grid their byte count is already disproportionately large
    relative to the interior; charging them at face value keeps the halo
    exchange as minor as it is at production scale.

    Raises:
        ValueError: for a side larger than the paper's grid.
    """
    if side <= 0 or side > 1024:
        raise ValueError(f"side must be in (0, 1024], got {side}")
    base = base or paper_cluster()
    factor = (1024 / side) ** 3
    return replace(
        base,
        hdd=replace(base.hdd, stream_mib_s=base.hdd.stream_mib_s / factor),
        ssd=replace(
            base.ssd,
            read_mib_s=base.ssd.read_mib_s / factor,
            write_mib_s=base.ssd.write_mib_s / factor,
        ),
        lan=replace(base.lan, bandwidth_mib_s=base.lan.bandwidth_mib_s / factor),
        wan=replace(base.wan, bandwidth_mib_s=base.wan.bandwidth_mib_s / factor),
        cpu=replace(base.cpu, units_per_s=base.cpu.units_per_s / factor),
    )
