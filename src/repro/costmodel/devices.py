"""Device specifications charging simulated seconds per operation.

Each spec converts an operation (read N bytes with K seeks; ship N bytes
over a link; run a kernel over N grid points) into deterministic seconds.
The HDD array additionally models the *multi-process contention* the paper
analyses in §5.3: data tables are striped over a small number of RAID
arrays, so extra reader processes raise aggregate throughput only
sub-linearly.
"""

from __future__ import annotations

from dataclasses import dataclass

_MIB = float(1 << 20)


@dataclass(frozen=True)
class SsdSpec:
    """A solid-state drive (cache tables live here, paper Fig. 5)."""

    read_mib_s: float = 250.0
    write_mib_s: float = 200.0
    latency_s: float = 1e-4

    def __post_init__(self) -> None:
        _require_positive(self, "read_mib_s", "write_mib_s")
        _require_nonnegative(self, "latency_s")

    def read_time(self, nbytes: int, seeks: int = 1) -> float:
        """Seconds to read ``nbytes`` with ``seeks`` index lookups."""
        return seeks * self.latency_s + nbytes / (self.read_mib_s * _MIB)

    def write_time(self, nbytes: int, seeks: int = 1) -> float:
        """Seconds to write ``nbytes`` with ``seeks`` positioning steps."""
        return seeks * self.latency_s + nbytes / (self.write_mib_s * _MIB)


@dataclass(frozen=True)
class HddArraySpec:
    """A node's set of RAID arrays holding the partitioned data tables.

    ``stream_mib_s`` is the *effective* single-stream throughput on the
    live production system (the paper's nodes served other queries and OS
    traffic concurrently, §5.3, so this is far below raw hardware rates).
    ``arrays`` is the number of independent RAID arrays the partitioned
    table's files are striped over (4 per node in the paper's setup), and
    ``parallel_gain`` the fraction of an extra array's bandwidth each
    additional concurrent reader unlocks.
    """

    stream_mib_s: float = 25.0
    seek_s: float = 8e-3
    arrays: int = 4
    parallel_gain: float = 0.8

    def __post_init__(self) -> None:
        _require_positive(self, "stream_mib_s", "arrays")
        _require_nonnegative(self, "seek_s")
        if not 0.0 <= self.parallel_gain <= 1.0:
            raise ValueError("parallel_gain must be in [0, 1]")

    def aggregate_throughput(self, streams: int) -> float:
        """Effective MiB/s seen by ``streams`` concurrent reader processes.

        One stream gets the base rate.  Additional streams let the
        scheduler drive more of the arrays in parallel, but the gain
        saturates: the asymptote is ``1 + parallel_gain`` times the base
        rate (so I/O time never drops much below ~half — exactly the
        behaviour of the paper's Fig. 8).
        """
        if streams < 1:
            raise ValueError("streams must be >= 1")
        return self.stream_mib_s * (1.0 + self.parallel_gain * (1.0 - 1.0 / streams))

    def read_time(self, nbytes: int, seeks: int = 1, streams: int = 1) -> float:
        """Seconds for ``streams`` processes to collectively read ``nbytes``.

        ``seeks`` counts discontiguous extents (one per clustered-index
        range scan).
        """
        return seeks * self.seek_s + nbytes / (
            self.aggregate_throughput(streams) * _MIB
        )


@dataclass(frozen=True)
class NetworkSpec:
    """A network link; ``inflation`` models wire-format overhead.

    The JHTDB's SOAP web-services wrap results in XML, which the paper
    notes makes responses "much larger" than the raw payload (§5.3); the
    WAN link therefore carries ``inflation`` times the logical bytes.
    """

    bandwidth_mib_s: float
    latency_s: float = 5e-4
    inflation: float = 1.0

    def __post_init__(self) -> None:
        _require_positive(self, "bandwidth_mib_s")
        _require_nonnegative(self, "latency_s")
        if self.inflation < 1.0:
            raise ValueError("inflation must be >= 1")

    def transfer_time(self, nbytes: int, round_trips: int = 1) -> float:
        """Seconds to ship ``nbytes`` (plus format overhead) over the link."""
        wire_bytes = nbytes * self.inflation
        return round_trips * self.latency_s + wire_bytes / (
            self.bandwidth_mib_s * _MIB
        )


@dataclass(frozen=True)
class CpuSpec:
    """Kernel-computation rate of one worker process.

    Derived-field cost is expressed in *work units per grid point* (the
    vorticity kernel defines 1.0); a process retires ``units_per_s`` work
    units per second.
    """

    units_per_s: float = 2.0e6

    def __post_init__(self) -> None:
        _require_positive(self, "units_per_s")

    def compute_time(self, points: int, units_per_point: float) -> float:
        """Seconds for one process to run a kernel over ``points`` points."""
        if points < 0 or units_per_point < 0:
            raise ValueError("points and units_per_point must be non-negative")
        return points * units_per_point / self.units_per_s


def _require_positive(spec: object, *fields: str) -> None:
    for name in fields:
        if getattr(spec, name) <= 0:
            raise ValueError(f"{type(spec).__name__}.{name} must be positive")


def _require_nonnegative(spec: object, *fields: str) -> None:
    for name in fields:
        if getattr(spec, name) < 0:
            raise ValueError(f"{type(spec).__name__}.{name} must be non-negative")
