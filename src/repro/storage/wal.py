"""Write-ahead logging and crash recovery.

A production analysis cluster must offer "the fault-tolerance,
scalability and availability guarantees necessary for a system managing
multi-terabyte datasets" (paper §6) — in the JHTDB's case supplied by
SQL Server.  This module adds that durability layer to the embedded
engine: every write appends a logical redo record, commits force the log
(charging the log device), and :func:`recover` replays the committed
transactions — in commit order — into a fresh database, discarding
whatever in-flight transactions the crash cut off.

Logical (operation-level) logging suits this engine: tables are
rebuilt from records rather than patched page-by-page, so the log is
small and replay trivially idempotent from an empty start.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass
from typing import Iterable

from repro.storage.database import Database, StorageDevice
from repro.storage.errors import StorageError
from repro.storage.schema import TableSchema


class WalKind(enum.Enum):
    INSERT = "insert"
    INSERT_MANY = "insert_many"
    DELETE = "delete"
    UPDATE = "update"
    COMMIT = "commit"
    ABORT = "abort"


@dataclass(frozen=True)
class WalRecord:
    """One log record.

    ``payload`` depends on the kind: the full row for INSERT, the list
    of rows for INSERT_MANY (one record per batch, which is the point),
    the primary key for DELETE, ``(key, changes)`` for UPDATE, nothing
    for COMMIT/ABORT.
    """

    lsn: int
    txn_id: int
    kind: WalKind
    table: str | None = None
    payload: object = None


class WriteAheadLog:
    """An append-only log of logical redo records.

    Args:
        device: optional device charged for forced flushes at commit
            (sequential appends; one flush per commit, as group commit
            would batch them).
    """

    def __init__(self, device: StorageDevice | None = None) -> None:
        self._records: list[WalRecord] = []
        self._lock = threading.Lock()
        self._device = device
        self._next_lsn = 0
        self._unflushed = 0
        self.flushes = 0
        self.flushed_bytes = 0

    def __len__(self) -> int:
        return len(self._records)

    @property
    def appends(self) -> int:
        """Total records ever appended (survives truncation)."""
        with self._lock:
            return self._next_lsn

    def append(
        self,
        txn_id: int,
        kind: WalKind,
        table: str | None = None,
        payload: object = None,
    ) -> WalRecord:
        """Append one record; returns it with its assigned LSN."""
        with self._lock:
            record = WalRecord(self._next_lsn, txn_id, kind, table, payload)
            self._next_lsn += 1
            self._records.append(record)
            self._unflushed += 1
            return record

    def flush(self) -> int:
        """Force all appended records to the log device; returns bytes."""
        with self._lock:
            pending = self._records[len(self._records) - self._unflushed :]
            self._unflushed = 0
        nbytes = sum(_record_size(record) for record in pending)
        if self._device is not None and nbytes:
            self._device.charge_write(nbytes, seeks=0)
        with self._lock:
            self.flushes += 1
            self.flushed_bytes += nbytes
        return nbytes

    def records(self) -> list[WalRecord]:
        """A snapshot of the current log contents."""
        with self._lock:
            return list(self._records)

    def truncate_to(self, lsn: int) -> int:
        """Drop records up to ``lsn`` inclusive (checkpointing).

        Returns how many records were dropped.  Only safe once every
        transaction at or below ``lsn`` has been checkpointed elsewhere.
        """
        with self._lock:
            keep = [r for r in self._records if r.lsn > lsn]
            dropped = len(self._records) - len(keep)
            self._records = keep
            return dropped


def _record_size(record: WalRecord) -> int:
    """Rough on-disk size of a record for device charging."""
    base = 24  # lsn + txn + kind + table ref
    payload = record.payload
    if isinstance(payload, dict):
        return base + sum(_value_size(v) for v in payload.values())
    if isinstance(payload, (tuple, list)):
        return base + sum(_value_size(v) for v in payload)
    return base + _value_size(payload)


def _value_size(value: object) -> int:
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, str):
        return len(value.encode())
    if isinstance(value, dict):
        return sum(_value_size(v) for v in value.values())
    if isinstance(value, (tuple, list)):
        return sum(_value_size(v) for v in value)
    return 8


@dataclass(frozen=True)
class Checkpoint:
    """A fuzzy snapshot of the committed state at some LSN.

    Recovery starts from the checkpoint's rows and replays only the log
    tail past ``lsn``, bounding recovery time regardless of history
    length (the reason production engines checkpoint).
    """

    lsn: int
    rows: dict[str, list[dict]]  # table -> committed rows


def checkpoint(db: Database, log: WriteAheadLog) -> Checkpoint:
    """Capture the committed state of every *logged* table.

    Must run without concurrent writers (a quiesced checkpoint).  The
    caller may afterwards call :meth:`WriteAheadLog.truncate_to` with
    the checkpoint's ``lsn`` to bound the log.
    """
    records = log.records()
    lsn = records[-1].lsn if records else -1
    rows: dict[str, list[dict]] = {}
    with db.transaction() as txn:
        # Creation order puts FK parents before children, so replaying
        # the snapshot in this order satisfies referential checks.
        for name in db._tables:
            table = db.table(name)
            if table.schema.logged:
                rows[name] = [dict(row) for row in table.scan(txn)]
    return Checkpoint(lsn, rows)


def recover(
    log: WriteAheadLog | Iterable[WalRecord],
    schemas: list[tuple[TableSchema, str]],
    devices: list[StorageDevice],
    name: str = "recovered",
    from_checkpoint: Checkpoint | None = None,
) -> Database:
    """Rebuild a database from a log (and optional checkpoint) after a crash.

    Args:
        log: the surviving log (or its records).
        schemas: ``(schema, device_name)`` pairs of the catalog, in
            creation order (parents before FK children).
        devices: devices to register on the recovered database.
        from_checkpoint: start from this snapshot and replay only the
            records past its LSN.

    Returns:
        a fresh :class:`Database` containing exactly the effects of the
        committed transactions, applied in commit order.

    Raises:
        StorageError: if replay hits an inconsistency (e.g. a logged
            table missing from the catalog).
    """
    records = log.records() if isinstance(log, WriteAheadLog) else list(log)
    db = Database(name)
    for device in devices:
        db.add_device(device)
    for schema, device_name in schemas:
        db.create_table(schema, device=device_name)

    if from_checkpoint is not None:
        with db.transaction() as txn:
            for table_name, rows in from_checkpoint.rows.items():
                if table_name not in db.table_names:
                    raise StorageError(
                        f"checkpoint references unknown table {table_name!r}"
                    )
                for row in rows:
                    db.table(table_name).insert(txn, dict(row))
        records = [r for r in records if r.lsn > from_checkpoint.lsn]

    # Group data records by transaction; note commit order.
    operations: dict[int, list[WalRecord]] = {}
    commit_order: list[int] = []
    for record in records:
        if record.kind is WalKind.COMMIT:
            commit_order.append(record.txn_id)
        elif record.kind is WalKind.ABORT:
            operations.pop(record.txn_id, None)
        else:
            operations.setdefault(record.txn_id, []).append(record)

    for txn_id in commit_order:
        ops = operations.pop(txn_id, [])
        with db.transaction() as txn:
            for record in ops:
                if record.table not in db.table_names:
                    raise StorageError(
                        f"log references unknown table {record.table!r}"
                    )
                table = db.table(record.table)
                if record.kind is WalKind.INSERT:
                    table.insert(txn, dict(record.payload))
                elif record.kind is WalKind.INSERT_MANY:
                    table.insert_many(txn, [dict(r) for r in record.payload])
                elif record.kind is WalKind.DELETE:
                    # Cascaded child deletes were logged individually, so
                    # a parent's replayed cascade may have removed this
                    # row already.
                    table.delete(txn, tuple(record.payload))
                else:
                    key, changes = record.payload
                    table.update(txn, tuple(key), dict(changes))
    return db
