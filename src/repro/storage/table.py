"""Tables: clustered primary-key storage with MVCC, indexes and FKs.

A :class:`Table` keeps a B+-tree of version chains keyed by the primary
key (the clustered index), row payloads in a slotted-page heap whose
pages are charged through the owning device's buffer pool, optional
secondary B+-tree indexes, and foreign-key enforcement against parent
tables.  All access happens inside a :class:`~repro.storage.mvcc.Transaction`.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Iterator

from repro.storage.btree import BPlusTree
from repro.storage.bufferpool import BufferPool
from repro.storage.errors import (
    DuplicateKeyError,
    ForeignKeyError,
    SchemaError,
    StorageError,
)
from repro.storage.heap import HeapFile, encode_row
from repro.storage.mvcc import Transaction, Version, VersionChain
from repro.storage.schema import ForeignKey, TableSchema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.database import StorageDevice


class Table:
    """One table: schema + clustered version chains + heap + indexes."""

    def __init__(
        self,
        schema: TableSchema,
        device: "StorageDevice",
        file_id: int,
        buffer_pool: BufferPool,
        latch: "threading.RLock | None" = None,
    ) -> None:
        self.schema = schema
        self._device = device
        self._file_id = file_id
        self._pool = buffer_pool
        # Shared with every sibling table and the transaction manager of
        # the owning Database: the B+-trees and version chains are not
        # thread-safe, and the mediator scatters queries across threads.
        self._latch = latch if latch is not None else threading.RLock()
        self._heap = HeapFile()
        self._clustered = BPlusTree()
        self._indexes: dict[str, BPlusTree] = {
            name: BPlusTree() for name in schema.indexes
        }
        # Wired by the Database: (child_table, fk) pairs referencing us.
        self._children: list[tuple["Table", ForeignKey]] = []
        self._parents: dict[str, "Table"] = {}
        #: Lifetime count of rows written through :meth:`insert_many`,
        #: sampled by Database.storage_stats for the observability layer.
        self.bulk_insert_rows = 0

    # -- catalog wiring ------------------------------------------------------

    def _register_child(self, child: "Table", fk: ForeignKey) -> None:
        self._children.append((child, fk))

    def _register_parent(self, fk: ForeignKey, parent: "Table") -> None:
        self._parents[fk.parent_table] = parent
        if len(fk.columns) != len(parent.schema.primary_key):
            raise SchemaError(
                f"{self.schema.name}: foreign key arity does not match "
                f"{parent.schema.name} primary key"
            )

    # -- reads ----------------------------------------------------------------

    def get(self, txn: Transaction, key: tuple) -> dict[str, object] | None:
        """The visible row at ``key``, or ``None``.  Charges one page read."""
        txn.require_active()
        with self._latch:
            chain = self._clustered.get(key)
            if chain is None:
                return None
            version = chain.visible(txn)
            if version is None:
                return None
            self._touch(txn, version, sequential=False)
            return dict(version.row)

    def scan(
        self,
        txn: Transaction,
        lo: tuple | None = None,
        hi: tuple | None = None,
        include_hi: bool = False,
        sequential: bool = False,
        charge: bool = True,
    ) -> Iterator[dict[str, object]]:
        """Clustered-index range scan over visible rows in key order.

        The first page of the scan pays a seek (unless ``sequential``
        marks the scan as a forward continuation of a previous one);
        subsequent pages are charged as sequential reads.  ``charge``
        False reads without touching the buffer pool at all — used when
        a node serves halo bands to a peer, whose cost is accounted as
        interconnect transfer rather than local I/O.

        Rows are materialised under the database latch so a concurrent
        commit cannot rebalance the B+-tree mid-scan; every caller
        consumes the scan fully, so the charges are identical.
        """
        txn.require_active()
        with self._latch:
            rows: list[dict[str, object]] = []
            first = not sequential
            for _, chain in self._clustered.scan(lo, hi, include_hi):
                version = chain.visible(txn)
                if version is None:
                    continue
                if charge:
                    self._touch(txn, version, sequential=not first)
                first = False
                rows.append(dict(version.row))
        return iter(rows)

    def count(self, txn: Transaction) -> int:
        """Number of rows visible to ``txn`` (full scan, uncharged)."""
        txn.require_active()
        with self._latch:
            return sum(
                1 for _, chain in self._clustered.items() if chain.visible(txn)
            )

    def lookup(
        self, txn: Transaction, index: str, key: tuple
    ) -> Iterator[dict[str, object]]:
        """Visible rows whose ``index`` columns equal ``key``."""
        txn.require_active()
        with self._latch:
            tree = self._index(index)
            pks: set[tuple] = tree.get(key) or set()
            rows = []
            for pk in sorted(pks):
                row = self.get(txn, pk)
                if row is not None:
                    rows.append(row)
        return iter(rows)

    def scan_column_batches(
        self,
        txn: Transaction,
        columns: list[str],
        lo: tuple | None = None,
        hi: tuple | None = None,
        include_hi: bool = False,
        sequential: bool = False,
        charge: bool = True,
        batch_rows: int = 4096,
    ) -> Iterator[tuple[list[object], ...]]:
        """Columnar fast-path scan: batches of per-column value lists.

        Same visibility, ordering and buffer-pool charging as
        :meth:`scan`, but yields tuples of column lists (one list per
        requested column, up to ``batch_rows`` rows each) instead of a
        dict per row — the atom read path consumes millions of rows and
        the per-row dict materialisation dominates it otherwise.
        """
        txn.require_active()
        for name in columns:
            if name not in self.schema.column_names:
                raise SchemaError(f"{self.schema.name} has no column {name!r}")
        with self._latch:
            batches: list[tuple[list[object], ...]] = []
            cols: list[list[object]] = [[] for _ in columns]
            filled = 0
            first = not sequential
            for _, chain in self._clustered.scan(lo, hi, include_hi):
                version = chain.visible(txn)
                if version is None:
                    continue
                if charge:
                    self._touch(txn, version, sequential=not first)
                first = False
                row = version.row
                for out, name in zip(cols, columns):
                    out.append(row[name])
                filled += 1
                if filled >= batch_rows:
                    batches.append(tuple(cols))
                    cols = [[] for _ in columns]
                    filled = 0
            if filled:
                batches.append(tuple(cols))
        return iter(batches)

    # -- writes ----------------------------------------------------------------

    def insert(self, txn: Transaction, row: dict[str, object]) -> None:
        """Insert a row.

        Raises:
            DuplicateKeyError: a visible row already holds this key.
            ForeignKeyError: a referenced parent row is missing.
            SerializationConflictError: concurrent write to this key.
        """
        txn.require_active()
        row = self.schema.validate_row(row)
        key = self.schema.key_of(row)
        with self._latch:
            self._check_parents(txn, row)
            chain = self._clustered.get(key)
            if chain is None:
                chain = VersionChain()
                self._clustered.insert(key, chain)
                txn.on_abort(lambda: self._drop_chain_if_empty(key))
            else:
                chain.check_write_allowed(txn)
                if chain.visible(txn) is not None:
                    raise DuplicateKeyError(
                        f"{self.schema.name}: duplicate primary key {key}"
                    )
            rowid = self._heap.append(encode_row(self.schema, row))
            self._pool.access(self._device, self._file_id, rowid.page, dirty=True)
            txn.on_commit(lambda: self._pool.flush(self._device))
            version = Version(row, rowid, creator=txn)
            chain.push(version)
            txn.record_create(chain, version)
            self._log(txn, "insert", row)
            for name, columns in self.schema.indexes.items():
                index_key = tuple(row[c] for c in columns)
                self._index_add(name, index_key, key)
                txn.on_abort(lambda n=name, ik=index_key, pk=key: self._index_remove(n, ik, pk))

    def insert_many(self, txn: Transaction, rows: list[dict[str, object]]) -> int:
        """Insert a batch of rows under one latch acquisition.

        Validation (schema, in-batch and visible duplicates, foreign
        keys, write conflicts) runs as a first pass before any write, so
        a failure raises with the table untouched; the write pass then
        bulk-loads the missing version chains into the clustered B+-tree
        in key order (one descent per leaf run) and emits a single
        ``INSERT_MANY`` WAL record for the whole batch.  Returns the
        number of rows inserted.

        Raises:
            DuplicateKeyError: a key repeats in the batch or a visible
                row already holds it.
            ForeignKeyError: a referenced parent row is missing.
            SerializationConflictError: concurrent write to a key.
        """
        txn.require_active()
        if not rows:
            return 0
        validated = [self.schema.validate_row(row) for row in rows]
        keys = [self.schema.key_of(row) for row in validated]
        with self._latch:
            # Pass 1: validate everything before writing anything.
            chains: list[VersionChain | None] = []
            seen: set[tuple] = set()
            for row, key in zip(validated, keys):
                if key in seen:
                    raise DuplicateKeyError(
                        f"{self.schema.name}: duplicate primary key {key} in batch"
                    )
                seen.add(key)
                self._check_parents(txn, row)
                chain = self._clustered.get(key)
                if chain is not None:
                    chain.check_write_allowed(txn)
                    if chain.visible(txn) is not None:
                        raise DuplicateKeyError(
                            f"{self.schema.name}: duplicate primary key {key}"
                        )
                chains.append(chain)
            # Pass 2: bulk-load the missing chains in key order, then
            # append payloads, versions and index entries per row.
            new_pairs: list[tuple[tuple, VersionChain]] = []
            for i in sorted(
                (i for i in range(len(keys)) if chains[i] is None),
                key=keys.__getitem__,
            ):
                chain = VersionChain()
                chains[i] = chain
                new_pairs.append((keys[i], chain))
                txn.on_abort(lambda k=keys[i]: self._drop_chain_if_empty(k))
            if new_pairs:
                self._clustered.insert_sorted_run(new_pairs)
            for row, key, chain in zip(validated, keys, chains):
                assert chain is not None
                rowid = self._heap.append(encode_row(self.schema, row))
                self._pool.access(self._device, self._file_id, rowid.page, dirty=True)
                version = Version(row, rowid, creator=txn)
                chain.push(version)
                txn.record_create(chain, version)
                for name, columns in self.schema.indexes.items():
                    index_key = tuple(row[c] for c in columns)
                    self._index_add(name, index_key, key)
                    txn.on_abort(
                        lambda n=name, ik=index_key, pk=key: self._index_remove(n, ik, pk)
                    )
            txn.on_commit(lambda: self._pool.flush(self._device))
            self._log(txn, "insert_many", [dict(row) for row in validated])
            self.bulk_insert_rows += len(validated)
        return len(validated)

    def delete(self, txn: Transaction, key: tuple) -> bool:
        """Delete the visible row at ``key``; returns whether one existed.

        Referencing child rows restrict the delete unless their foreign
        key is declared ``cascade``, in which case they are deleted too.
        """
        txn.require_active()
        with self._latch:
            chain = self._clustered.get(key)
            if chain is None:
                return False
            version = chain.visible(txn)
            if version is None:
                return False
            chain.check_write_allowed(txn)
            self._resolve_children(txn, key)
            version.deleter = txn
            txn.record_delete(chain, version)
            self._pool.access(self._device, self._file_id, version.rowid.page, dirty=True)
            txn.on_commit(lambda: self._pool.flush(self._device))
            self._log(txn, "delete", key)
            return True

    def update(
        self, txn: Transaction, key: tuple, changes: dict[str, object]
    ) -> bool:
        """Update columns of the row at ``key``; returns whether it existed.

        Implemented as a new version superseding the old (the primary key
        may not change).
        """
        txn.require_active()
        if any(col in self.schema.primary_key for col in changes):
            raise SchemaError(f"{self.schema.name}: cannot update primary key")
        with self._latch:
            chain = self._clustered.get(key)
            if chain is None:
                return False
            version = chain.visible(txn)
            if version is None:
                return False
            chain.check_write_allowed(txn)
            new_row = self.schema.validate_row({**version.row, **changes})
            self._check_parents(txn, new_row)
            version.deleter = txn
            txn.record_delete(chain, version)
            rowid = self._heap.append(encode_row(self.schema, new_row))
            self._pool.access(self._device, self._file_id, rowid.page, dirty=True)
            txn.on_commit(lambda: self._pool.flush(self._device))
            new_version = Version(new_row, rowid, creator=txn)
            chain.push(new_version)
            txn.record_create(chain, new_version)
            for name, columns in self.schema.indexes.items():
                index_key = tuple(new_row[c] for c in columns)
                self._index_add(name, index_key, key)
                txn.on_abort(lambda n=name, ik=index_key, pk=key: self._index_remove(n, ik, pk))
            self._log(txn, "update", (key, dict(changes)))
            return True

    # -- maintenance -----------------------------------------------------------

    def vacuum(self) -> int:
        """Drop versions dead to every current and future snapshot.

        Returns the number of versions reclaimed.  Call between
        transactions (the engine does not track open snapshots here).
        """
        reclaimed = 0
        empty_keys = []
        with self._latch:
            for key, chain in list(self._clustered.items()):
                keep = []
                for version in chain.versions:
                    dead = version.creator is None and version.end_ts is not None and version.deleter is None
                    if dead:
                        self._heap.delete(version.rowid)
                        reclaimed += 1
                    else:
                        keep.append(version)
                chain.versions = keep
                if not chain.versions:
                    empty_keys.append(key)
            for key in empty_keys:
                self._clustered.delete(key)
                for name, tree in self._indexes.items():
                    for index_key, pks in list(tree.items()):
                        if key in pks:
                            pks.discard(key)
                            if not pks:
                                tree.delete(index_key)
        return reclaimed

    @property
    def heap_pages(self) -> int:
        return self._heap.page_count

    # -- internals ---------------------------------------------------------------

    def _log(self, txn: Transaction, kind_name: str, payload: object) -> None:
        if txn._wal is None or not self.schema.logged:
            return
        from repro.storage.wal import WalKind

        txn.log(WalKind(kind_name), self.schema.name, payload)

    def _touch(self, txn: Transaction, version: Version, sequential: bool) -> None:
        self._pool.access(
            self._device, self._file_id, version.rowid.page, sequential=sequential
        )

    def _index(self, name: str) -> BPlusTree:
        try:
            return self._indexes[name]
        except KeyError:
            raise StorageError(f"{self.schema.name} has no index {name!r}") from None

    def _index_add(self, name: str, index_key: tuple, pk: tuple) -> None:
        tree = self._indexes[name]
        pks = tree.get(index_key)
        if pks is None:
            tree.insert(index_key, {pk})
        else:
            pks.add(pk)

    def _index_remove(self, name: str, index_key: tuple, pk: tuple) -> None:
        tree = self._indexes[name]
        pks = tree.get(index_key)
        if pks is not None:
            pks.discard(pk)
            if not pks:
                tree.delete(index_key)

    def _drop_chain_if_empty(self, key: tuple) -> None:
        chain = self._clustered.get(key)
        if chain is not None and not chain.versions:
            self._clustered.delete(key)

    def _check_parents(self, txn: Transaction, row: dict[str, object]) -> None:
        for fk in self.schema.foreign_keys:
            values = tuple(row[c] for c in fk.columns)
            if any(v is None for v in values):
                continue  # null FK: no constraint
            parent = self._parents[fk.parent_table]
            chain = parent._clustered.get(values)
            if chain is None or chain.visible(txn) is None:
                raise ForeignKeyError(
                    f"{self.schema.name}: no {fk.parent_table} row {values}"
                )

    def _resolve_children(self, txn: Transaction, key: tuple) -> None:
        for child, fk in self._children:
            index_name = next(
                (
                    name
                    for name, cols in child.schema.indexes.items()
                    if cols == fk.columns
                ),
                None,
            )
            if index_name is not None:
                referencing = child.lookup(txn, index_name, key)
            else:
                referencing = (
                    row
                    for row in child.scan(txn)
                    if tuple(row[c] for c in fk.columns) == key
                )
            victims = [child.schema.key_of(row) for row in referencing]
            if victims and not fk.cascade:
                raise ForeignKeyError(
                    f"{child.schema.name} rows still reference "
                    f"{self.schema.name} key {key}"
                )
            for victim in victims:
                child.delete(txn, victim)
