"""Embedded relational storage engine.

The JHTDB stores each dataset as tables of binary atoms inside SQL Server
2008 R2, keyed by ``(timestep, zindex)`` with a clustered index, and keeps
its query-result cache in ordinary database tables accessed under
snapshot-isolation transactions (paper §2, §4).  This package supplies
that substrate from scratch:

* typed schemas with primary keys, secondary indexes and foreign keys
  (:mod:`~repro.storage.schema`),
* slotted-page heap files with a binary row codec
  (:mod:`~repro.storage.heap`),
* B+-trees for clustered and secondary indexes
  (:mod:`~repro.storage.btree`),
* an LRU buffer pool charging simulated device time
  (:mod:`~repro.storage.bufferpool`),
* multi-version concurrency control with snapshot isolation and
  first-updater-wins conflict detection (:mod:`~repro.storage.mvcc`),
* tables and a database catalog (:mod:`~repro.storage.table`,
  :mod:`~repro.storage.database`), and
* a small SQL dialect (SELECT/INSERT/UPDATE/DELETE with parameters)
  (:mod:`~repro.storage.sql`).
"""

from repro.storage.errors import (
    DuplicateKeyError,
    ForeignKeyError,
    SchemaError,
    SerializationConflictError,
    SqlError,
    StorageError,
    TableNotFoundError,
    TransactionError,
)
from repro.storage.types import ColumnType
from repro.storage.schema import Column, ForeignKey, TableSchema
from repro.storage.database import Database, StorageDevice
from repro.storage.mvcc import Transaction
from repro.storage.wal import WalKind, WalRecord, WriteAheadLog, recover

__all__ = [
    "Column",
    "ColumnType",
    "Database",
    "DuplicateKeyError",
    "ForeignKey",
    "ForeignKeyError",
    "SchemaError",
    "SerializationConflictError",
    "SqlError",
    "StorageDevice",
    "StorageError",
    "TableNotFoundError",
    "TableSchema",
    "Transaction",
    "TransactionError",
    "WalKind",
    "WalRecord",
    "WriteAheadLog",
    "recover",
]
