"""The database: catalog, devices, transactions and SQL entry point.

A :class:`Database` is what one cluster node hosts.  Tables are created
on a named :class:`StorageDevice` — data tables on the node's HDD arrays,
cache tables on its SSD (paper, Fig. 5) — and every page touched inside a
transaction charges that device's simulated time to the transaction's
cost ledger under the device's cost category.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Iterable

from repro.costmodel import Category, CostLedger
from repro.costmodel.devices import HddArraySpec, SsdSpec
from repro.costmodel.ledger import (
    METER_CACHE_BYTES,
    METER_IO_BYTES,
    METER_IO_SEEKS,
)
from repro.storage.bufferpool import BufferPool
from repro.storage.errors import SchemaError, TableNotFoundError
from repro.storage.mvcc import Transaction, TransactionManager
from repro.storage.schema import TableSchema
from repro.storage.table import Table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.wal import WriteAheadLog


class StorageDevice:
    """A named device charging simulated seconds under a fixed category.

    Args:
        name: label for diagnostics.
        spec: an :class:`HddArraySpec` or :class:`SsdSpec`.
        category: ledger category charged for traffic (``IO`` for data
            tables, ``CACHE_LOOKUP`` for the SSD cache tables).
    """

    def __init__(
        self,
        name: str,
        spec: HddArraySpec | SsdSpec,
        category: Category,
    ) -> None:
        self.name = name
        self.spec = spec
        self.category = category
        self._local = threading.local()

    @property
    def _ledger(self) -> CostLedger | None:
        return getattr(self._local, "ledger", None)

    def bind_ledger(self, ledger: CostLedger | None) -> None:
        """Direct this thread's subsequent charges to ``ledger``.

        The binding is thread-local: a halo read served on behalf of a
        peer node (running in the peer query's thread) charges the peer
        query's ledger without disturbing a concurrent local query.
        """
        self._local.ledger = ledger

    def charge_read(self, nbytes: int, seeks: int = 1) -> None:
        """Charge a read of ``nbytes`` to this thread's bound ledger."""
        if self._ledger is None:
            return
        seconds = self.spec.read_time(nbytes, seeks=seeks)
        self._ledger.charge(self.category, seconds)
        self._meter(nbytes, seeks)

    def charge_write(self, nbytes: int, seeks: int = 1) -> None:
        """Charge a write of ``nbytes`` to this thread's bound ledger."""
        if self._ledger is None:
            return
        if isinstance(self.spec, SsdSpec):
            seconds = self.spec.write_time(nbytes, seeks=seeks)
        else:
            seconds = self.spec.read_time(nbytes, seeks=seeks)
        self._ledger.charge(self.category, seconds)
        self._meter(nbytes, seeks)

    def _meter(self, nbytes: int, seeks: int) -> None:
        if self.category is Category.IO:
            self._ledger.count(METER_IO_BYTES, nbytes)
            self._ledger.count(METER_IO_SEEKS, seeks)
        else:
            self._ledger.count(METER_CACHE_BYTES, nbytes)


class Database:
    """A catalog of tables sharing a transaction manager.

    Args:
        name: database name (diagnostics only).
        buffer_pages: buffer-pool frames *per table*.
    """

    def __init__(
        self,
        name: str = "db",
        buffer_pages: int = 4096,
        wal: "WriteAheadLog | None" = None,
    ) -> None:
        self.name = name
        self._buffer_pages = buffer_pages
        self._tables: dict[str, Table] = {}
        self._devices: dict[str, StorageDevice] = {}
        # One re-entrant latch serialises structural access across every
        # table AND transaction commit/abort publishing.  Per-table locks
        # would deadlock: FK checks walk child -> parent while cascaded
        # deletes walk parent -> child, so the cacheInfo/cacheData pair
        # alone creates both lock orders.
        self._latch = threading.RLock()
        self._manager = TransactionManager(latch=self._latch)
        self._next_file_id = 0
        self._closed = False
        self.wal = wal  # optional WriteAheadLog (see repro.storage.wal)

    # -- devices ---------------------------------------------------------------

    def add_device(self, device: StorageDevice) -> StorageDevice:
        """Register a device; returns it for chaining."""
        if device.name in self._devices:
            raise SchemaError(f"device {device.name!r} already registered")
        self._devices[device.name] = device
        return device

    def device(self, name: str) -> StorageDevice:
        """Look up a registered device by name."""
        try:
            return self._devices[name]
        except KeyError:
            raise TableNotFoundError(f"no device {name!r}") from None

    @property
    def devices(self) -> Iterable[StorageDevice]:
        return self._devices.values()

    # -- catalog -----------------------------------------------------------------

    def create_table(self, schema: TableSchema, device: str) -> Table:
        """Create a table on the named device.

        Raises:
            SchemaError: duplicate table, unknown FK parent, or unknown
                device.
        """
        if schema.name in self._tables:
            raise SchemaError(f"table {schema.name!r} already exists")
        table = Table(
            schema,
            self.device(device),
            self._next_file_id,
            BufferPool(self._buffer_pages),
            latch=self._latch,
        )
        self._next_file_id += 1
        for fk in schema.foreign_keys:
            parent = self._tables.get(fk.parent_table)
            if parent is None:
                raise SchemaError(
                    f"table {schema.name}: unknown FK parent {fk.parent_table!r}"
                )
            table._register_parent(fk, parent)
            parent._register_child(table, fk)
        self._tables[schema.name] = table
        return table

    def table(self, name: str) -> Table:
        """Look up a table by name.  Raises :class:`TableNotFoundError`."""
        try:
            return self._tables[name]
        except KeyError:
            raise TableNotFoundError(f"no table {name!r}") from None

    def drop_table(self, name: str) -> None:
        """Remove a table; refuses while foreign keys reference it."""
        table = self.table(name)
        if table._children:
            raise SchemaError(f"table {name!r} is referenced by foreign keys")
        del self._tables[name]

    @property
    def table_names(self) -> list[str]:
        return sorted(self._tables)

    # -- transactions ---------------------------------------------------------------

    def begin(self, ledger: CostLedger | None = None) -> Transaction:
        """Start a snapshot-isolation transaction.

        While the transaction runs, pages this *thread* touches on any of
        this database's devices charge into ``ledger`` (bindings are
        thread-local, so concurrent queries account independently).

        Raises:
            TransactionError: on a database already :meth:`close`-d.
        """
        if self._closed:
            raise TransactionError(f"database {self.name!r} is closed")
        for device in self._devices.values():
            device.bind_ledger(ledger)
        return self._manager.begin(ledger, wal=self.wal)

    def transaction(self, ledger: CostLedger | None = None) -> Transaction:
        """Alias of :meth:`begin`, reads nicely in ``with`` statements."""
        return self.begin(ledger)

    def sql(self, txn: Transaction, text: str, params: Iterable[object] = ()):
        """Execute a SQL statement; see :mod:`repro.storage.sql`."""
        from repro.storage.sql import execute

        return execute(self, txn, text, list(params))

    def vacuum(self) -> int:
        """Vacuum every table; returns total versions reclaimed."""
        return sum(table.vacuum() for table in self._tables.values())

    def drop_page_cache(self) -> None:
        """Empty every table's buffer pool (cold-cache experiment reset)."""
        for table in self._tables.values():
            table._pool.clear()

    def close(self) -> None:
        """Flush durable state and refuse further transactions.

        Flushes the write-ahead log (if any), releases every table's
        buffer-pool frames and marks the database closed — a later
        :meth:`begin` raises :class:`TransactionError`.  Idempotent;
        catalog and row data stay readable for post-mortem inspection
        through already-open transactions.
        """
        if self._closed:
            return
        self._closed = True
        if self.wal is not None:
            self.wal.flush()
        for table in self._tables.values():
            table._pool.clear()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    # -- observability ------------------------------------------------------------

    def storage_stats(self) -> dict[str, float]:
        """Aggregate engine counters for the observability layer.

        Sampled at metrics-export time (the hot paths keep plain integer
        counters; see :meth:`repro.obs.metrics.MetricsRegistry.gauge_callback`).
        """
        pool_hits = pool_misses = splits = bulk_rows = 0
        for table in self._tables.values():
            pool_hits += table._pool.hits
            pool_misses += table._pool.misses
            splits += table._clustered.splits
            splits += sum(tree.splits for tree in table._indexes.values())
            bulk_rows += table.bulk_insert_rows
        accesses = pool_hits + pool_misses
        stats: dict[str, float] = {
            "bufferpool_hits": float(pool_hits),
            "bufferpool_misses": float(pool_misses),
            "bufferpool_hit_rate": pool_hits / accesses if accesses else 0.0,
            "btree_splits": float(splits),
            "bulk_insert_rows": float(bulk_rows),
            "txn_begun": float(self._manager.begun),
            "txn_committed": float(self._manager.committed),
            "txn_aborted": float(self._manager.aborted),
            "txn_conflicts": float(self._manager.conflicts),
        }
        if self.wal is not None:
            stats["wal_appends"] = float(self.wal.appends)
            stats["wal_flushes"] = float(self.wal.flushes)
            stats["wal_flushed_bytes"] = float(self.wal.flushed_bytes)
        return stats
