"""An in-memory B+-tree keyed by tuples.

Backs both the clustered primary-key index (key -> version chain) and the
secondary indexes (key -> set of primary keys).  Leaves are linked for
ordered range scans, which is what serves the Morton-range scans of the
atom tables and the clustered-index lookups of the cache tables.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf")

    def __init__(self, leaf: bool) -> None:
        self.keys: list[tuple] = []
        self.children: list[_Node] | None = None if leaf else []
        self.values: list[Any] | None = [] if leaf else None
        self.next_leaf: _Node | None = None

    @property
    def is_leaf(self) -> bool:
        return self.values is not None


class BPlusTree:
    """B+-tree with tuple keys, unique per key.

    Args:
        order: maximum number of children of an internal node (>= 4).
    """

    def __init__(self, order: int = 64) -> None:
        if order < 4:
            raise ValueError("order must be >= 4")
        self._order = order
        self._root = _Node(leaf=True)
        self._size = 0
        self.splits = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: tuple) -> bool:
        return self.get(key, _MISSING) is not _MISSING

    # -- lookup ------------------------------------------------------------

    def _find_leaf(self, key: tuple) -> _Node:
        node = self._root
        while not node.is_leaf:
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]
        return node

    def get(self, key: tuple, default: Any = None) -> Any:
        """Value stored at ``key``, or ``default``."""
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return leaf.values[idx]
        return default

    def scan(
        self,
        lo: tuple | None = None,
        hi: tuple | None = None,
        include_hi: bool = False,
    ) -> Iterator[tuple[tuple, Any]]:
        """Yield ``(key, value)`` in key order for keys in ``[lo, hi)``.

        ``lo``/``hi`` of ``None`` mean unbounded; ``include_hi`` turns the
        upper bound inclusive.  Tuple bounds compare lexicographically, so
        a prefix bound like ``(t,)`` matches all keys starting with ``t``
        when paired with ``hi=(t + 1,)``.
        """
        if lo is None:
            leaf = self._leftmost_leaf()
            idx = 0
        else:
            leaf = self._find_leaf(lo)
            idx = bisect.bisect_left(leaf.keys, lo)
        while leaf is not None:
            while idx < len(leaf.keys):
                key = leaf.keys[idx]
                if hi is not None:
                    if key > hi or (key == hi and not include_hi):
                        return
                yield key, leaf.values[idx]
                idx += 1
            leaf = leaf.next_leaf
            idx = 0

    def _leftmost_leaf(self) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node

    def items(self) -> Iterator[tuple[tuple, Any]]:
        """All entries in key order."""
        return self.scan()

    # -- mutation ----------------------------------------------------------

    def insert(self, key: tuple, value: Any, replace: bool = True) -> bool:
        """Store ``value`` at ``key``.

        Returns ``True`` if a new key was added, ``False`` if the key
        already existed (whose value is overwritten unless ``replace`` is
        false).
        """
        size_before = self._size
        split = self._insert(self._root, key, value, replace)
        if split is not None:
            sep, right = split
            new_root = _Node(leaf=False)
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
        return self._size > size_before

    def _insert(self, node: _Node, key: tuple, value: Any, replace: bool):
        """Recursive insert; returns ``(separator, right_node)`` on split."""
        if node.is_leaf:
            idx = bisect.bisect_left(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                if replace:
                    node.values[idx] = value
                return None
            node.keys.insert(idx, key)
            node.values.insert(idx, value)
            self._size += 1
            if len(node.keys) >= self._order:
                return self._split_leaf(node)
            return None
        idx = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[idx], key, value, replace)
        if split is not None:
            sep, right = split
            node.keys.insert(idx, sep)
            node.children.insert(idx + 1, right)
            if len(node.children) > self._order:
                return self._split_internal(node)
        return None

    def _split_leaf(self, node: _Node):
        self.splits += 1
        mid = len(node.keys) // 2
        right = _Node(leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next_leaf = node.next_leaf
        node.next_leaf = right
        return right.keys[0], right

    def _split_internal(self, node: _Node):
        self.splits += 1
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Node(leaf=False)
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep, right

    def insert_sorted_run(self, pairs: list[tuple[tuple, Any]]) -> int:
        """Bulk-load ``(key, value)`` pairs sorted ascending by key.

        The fast path caches the current leaf and its upper bound so a
        run of consecutive keys costs one tree descent per leaf instead
        of one per key; it falls back to :meth:`insert` (which may
        split) whenever the leaf fills up or the next key falls outside
        the cached leaf's range.  Keys already present keep their
        existing value (matching ``insert(replace=False)``).  Returns
        the number of keys added.
        """
        added = 0
        leaf: _Node | None = None
        upper: tuple | None = None
        prev: tuple | None = None
        for key, value in pairs:
            if prev is not None and key < prev:
                raise ValueError("insert_sorted_run requires ascending keys")
            prev = key
            if (
                leaf is not None
                and len(leaf.keys) < self._order - 1
                and (upper is None or key < upper)
            ):
                idx = bisect.bisect_left(leaf.keys, key)
                if idx < len(leaf.keys) and leaf.keys[idx] == key:
                    continue
                leaf.keys.insert(idx, key)
                leaf.values.insert(idx, value)
                self._size += 1
                added += 1
                continue
            if self.insert(key, value, replace=False):
                added += 1
            leaf = self._find_leaf(key)
            upper = self._next_leaf_key(leaf)
        return added

    def _next_leaf_key(self, leaf: _Node) -> tuple | None:
        """First key right of ``leaf``, skipping leaves lazy deletion emptied."""
        nxt = leaf.next_leaf
        while nxt is not None and not nxt.keys:
            nxt = nxt.next_leaf
        return nxt.keys[0] if nxt is not None else None

    def delete(self, key: tuple) -> bool:
        """Remove ``key``.  Returns whether it was present.

        Uses lazy deletion (no rebalancing); leaves may underflow but scans
        and lookups stay correct, which is sufficient for an index whose
        working set is rebuilt far more often than it shrinks.
        """
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx >= len(leaf.keys) or leaf.keys[idx] != key:
            return False
        leaf.keys.pop(idx)
        leaf.values.pop(idx)
        self._size -= 1
        return True

    # -- introspection -----------------------------------------------------

    def depth(self) -> int:
        """Height of the tree (1 for a lone leaf)."""
        depth, node = 1, self._root
        while not node.is_leaf:
            depth += 1
            node = node.children[0]
        return depth

    def check_invariants(self) -> None:
        """Assert structural invariants (used by property tests).

        Raises:
            AssertionError: if key ordering or fan-out bounds are violated.
        """
        collected: list[tuple] = []

        def walk(node: _Node, lo: tuple | None, hi: tuple | None) -> None:
            assert node.keys == sorted(node.keys)
            for key in node.keys:
                assert lo is None or key >= lo
                assert hi is None or key < hi
            if node.is_leaf:
                collected.extend(node.keys)
                return
            assert len(node.children) == len(node.keys) + 1
            assert len(node.children) <= self._order
            bounds = [lo, *node.keys, hi]
            for child, (clo, chi) in zip(node.children, zip(bounds, bounds[1:])):
                walk(child, clo, chi)

        walk(self._root, None, None)
        assert collected == sorted(collected)
        assert len(collected) == self._size
        # Leaf chain agrees with the tree walk.
        chained = [k for k, _ in self.scan()]
        assert chained == collected


_MISSING = object()
