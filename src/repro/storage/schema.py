"""Table schemas: columns, keys, secondary indexes, foreign keys."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.errors import SchemaError
from repro.storage.types import ColumnType


@dataclass(frozen=True)
class Column:
    """One column of a table."""

    name: str
    type: ColumnType
    nullable: bool = False

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise SchemaError(f"invalid column name {self.name!r}")


@dataclass(frozen=True)
class ForeignKey:
    """A referential constraint: ``columns`` reference ``parent_table``'s PK.

    Deletes of referenced parent rows are restricted unless ``cascade`` is
    set, in which case child rows are deleted with the parent (the cache's
    cacheData rows cascade with their cacheInfo entry).
    """

    columns: tuple[str, ...]
    parent_table: str
    cascade: bool = False


@dataclass(frozen=True)
class TableSchema:
    """Schema of a table: column definitions plus key and index metadata.

    Attributes:
        name: table name (catalog key).
        columns: ordered column definitions.
        primary_key: column names of the clustered primary key.
        indexes: secondary index definitions, name -> indexed columns.
        foreign_keys: referential constraints on this (child) table.
        logged: whether writes go to the write-ahead log.  Bulk-loadable
            data (the simulation atoms, reproducible from their source)
            is typically unlogged, like an UNLOGGED/minimally-logged
            table in a production DBMS.
    """

    name: str
    columns: tuple[Column, ...]
    primary_key: tuple[str, ...]
    indexes: dict[str, tuple[str, ...]] = field(default_factory=dict)
    foreign_keys: tuple[ForeignKey, ...] = ()
    logged: bool = True

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise SchemaError(f"invalid table name {self.name!r}")
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in {self.name}")
        if not self.primary_key:
            raise SchemaError(f"table {self.name} needs a primary key")
        for key_source, cols in [
            ("primary key", self.primary_key),
            *[(f"index {n}", cols) for n, cols in self.indexes.items()],
            *[(f"foreign key", fk.columns) for fk in self.foreign_keys],
        ]:
            unknown = set(cols) - set(names)
            if unknown:
                raise SchemaError(
                    f"{self.name} {key_source} references unknown columns {unknown}"
                )
        for pk_col in self.primary_key:
            if self.column(pk_col).nullable:
                raise SchemaError(f"{self.name}: primary key column {pk_col} nullable")

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def column(self, name: str) -> Column:
        """Look up a column by name.  Raises :class:`SchemaError` if absent."""
        for col in self.columns:
            if col.name == name:
                return col
        raise SchemaError(f"table {self.name} has no column {name!r}")

    def validate_row(self, row: dict[str, object]) -> dict[str, object]:
        """Validate a full row dict; returns a normalised copy.

        Missing nullable columns default to ``None``.  Raises
        :class:`SchemaError` on unknown columns, missing non-nullable
        columns, or type mismatches.
        """
        unknown = set(row) - set(self.column_names)
        if unknown:
            raise SchemaError(f"table {self.name}: unknown columns {unknown}")
        out: dict[str, object] = {}
        for col in self.columns:
            value = row.get(col.name)
            if value is None:
                if not col.nullable:
                    raise SchemaError(
                        f"table {self.name}: column {col.name} may not be null"
                    )
                out[col.name] = None
            else:
                out[col.name] = col.type.validate(value, col.name)
        return out

    def key_of(self, row: dict[str, object]) -> tuple:
        """Primary-key tuple of a (validated) row."""
        return tuple(row[c] for c in self.primary_key)

    def row_size(self, row: dict[str, object]) -> int:
        """Stored size of a row in bytes (values + 2-byte null bitmap + slot)."""
        return (
            sum(
                self.column(name).type.encoded_size(value)
                for name, value in row.items()
            )
            + 2  # null bitmap
            + 4  # slot-directory entry
        )
