"""Exception hierarchy of the storage engine."""

from __future__ import annotations


class StorageError(Exception):
    """Base class for every storage-engine error."""


class SchemaError(StorageError):
    """A schema definition or a row violating its schema."""


class TableNotFoundError(StorageError):
    """Reference to a table missing from the catalog."""


class DuplicateKeyError(StorageError):
    """Insert with a primary key that already exists (and is visible)."""


class ForeignKeyError(StorageError):
    """A write that would break referential integrity."""


class TransactionError(StorageError):
    """Illegal use of a transaction (e.g. operating after commit)."""


class SerializationConflictError(TransactionError):
    """Snapshot-isolation write-write conflict (first-updater-wins).

    Matches SQL Server's "update conflict" under SNAPSHOT isolation: the
    row being written was modified by a transaction that committed after
    this transaction's snapshot, or is locked by a concurrent writer.
    """


class SqlError(StorageError):
    """Malformed SQL text or unsupported construct."""
