"""Slotted-page heap files and the binary row codec.

Rows are encoded to bytes (null bitmap + per-column encoding) and placed
into fixed-size pages; a :class:`RowId` names a row by page number and
slot.  The heap does not know about versions or keys — those live in
:mod:`repro.storage.mvcc` and :mod:`repro.storage.table` — it only stores
records and reports the page geometry the buffer pool charges I/O for.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.errors import StorageError
from repro.storage.schema import TableSchema

#: Bytes per page, matching SQL Server's 8 KiB pages.
PAGE_SIZE = 8192

#: Per-record slot overhead (slot-directory entry + record header).
_SLOT_OVERHEAD = 8


def encode_row(schema: TableSchema, row: dict[str, object]) -> bytes:
    """Encode a validated row to its stored binary form.

    Layout: 2-byte little-endian null bitmap over the schema's columns
    (bit i set when column i is null) followed by each non-null column's
    type encoding in schema order.
    """
    if len(schema.columns) > 16:
        raise StorageError(f"table {schema.name}: more than 16 columns unsupported")
    bitmap = 0
    body = bytearray()
    for i, col in enumerate(schema.columns):
        value = row.get(col.name)
        if value is None:
            bitmap |= 1 << i
        else:
            body += col.type.encode(value)
    return bitmap.to_bytes(2, "little") + bytes(body)


def decode_row(schema: TableSchema, data: bytes) -> dict[str, object]:
    """Decode a stored record back into a row dict."""
    bitmap = int.from_bytes(data[:2], "little")
    view = memoryview(data)
    offset = 2
    row: dict[str, object] = {}
    for i, col in enumerate(schema.columns):
        if bitmap & (1 << i):
            row[col.name] = None
        else:
            row[col.name], offset = col.type.decode(view, offset)
    return row


@dataclass(frozen=True, order=True)
class RowId:
    """Physical address of a record: (page number, slot index)."""

    page: int
    slot: int


class _Page:
    """One slotted page: a list of records plus a free-byte counter."""

    __slots__ = ("records", "free_bytes")

    def __init__(self) -> None:
        self.records: list[bytes | None] = []
        self.free_bytes: int = PAGE_SIZE

    def fits(self, nbytes: int) -> bool:
        return self.free_bytes >= nbytes + _SLOT_OVERHEAD


class HeapFile:
    """An append-mostly heap of records in slotted pages.

    Records larger than a page get a page of their own (the engine's
    equivalent of overflow allocation), so 6 KiB atom blobs sit one per
    page just as they do in the production tables.
    """

    def __init__(self) -> None:
        self._pages: list[_Page] = [_Page()]
        self._live = 0

    @property
    def page_count(self) -> int:
        return len(self._pages)

    @property
    def record_count(self) -> int:
        """Number of live (non-deleted) records."""
        return self._live

    def append(self, record: bytes) -> RowId:
        """Store a record, allocating a fresh page when needed."""
        page = self._pages[-1]
        if not page.fits(len(record)) and page.records:
            page = _Page()
            self._pages.append(page)
        page.records.append(record)
        page.free_bytes -= len(record) + _SLOT_OVERHEAD
        self._live += 1
        return RowId(len(self._pages) - 1, len(page.records) - 1)

    def get(self, rowid: RowId) -> bytes:
        """Fetch a record's bytes.

        Raises:
            StorageError: if the row id is invalid or the record deleted.
        """
        record = self._lookup(rowid)
        if record is None:
            raise StorageError(f"record {rowid} was deleted")
        return record

    def delete(self, rowid: RowId) -> None:
        """Free a record's slot (space is not compacted)."""
        if self._lookup(rowid) is None:
            raise StorageError(f"record {rowid} already deleted")
        page = self._pages[rowid.page]
        page.free_bytes += len(page.records[rowid.slot])
        page.records[rowid.slot] = None
        self._live -= 1

    def _lookup(self, rowid: RowId) -> bytes | None:
        if not (0 <= rowid.page < len(self._pages)):
            raise StorageError(f"invalid page in {rowid}")
        page = self._pages[rowid.page]
        if not (0 <= rowid.slot < len(page.records)):
            raise StorageError(f"invalid slot in {rowid}")
        return page.records[rowid.slot]
