"""Column types: validation and binary row encoding.

Rows are stored in slotted pages as a compact binary encoding so that the
engine's byte counts (and hence the simulated I/O charges) reflect real
record sizes rather than Python object overhead.
"""

from __future__ import annotations

import enum
import struct

from repro.storage.errors import SchemaError

_LEN = struct.Struct("<I")
_I64 = struct.Struct("<q")
_I32 = struct.Struct("<i")
_F64 = struct.Struct("<d")


class ColumnType(enum.Enum):
    """Supported SQL column types."""

    INTEGER = "INTEGER"
    BIGINT = "BIGINT"
    FLOAT = "FLOAT"
    TEXT = "TEXT"
    BLOB = "BLOB"

    def validate(self, value: object, column: str) -> object:
        """Check (and normalise) a Python value for this column type.

        Returns the normalised value.  Raises :class:`SchemaError` on a
        type mismatch or out-of-range integer.
        """
        if value is None:
            return None
        if self in (ColumnType.INTEGER, ColumnType.BIGINT):
            if isinstance(value, bool) or not isinstance(value, int):
                raise SchemaError(f"column {column}: expected int, got {value!r}")
            bits = 31 if self is ColumnType.INTEGER else 63
            if not -(1 << bits) <= value < (1 << bits):
                raise SchemaError(f"column {column}: {value} out of {self.value} range")
            return value
        if self is ColumnType.FLOAT:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SchemaError(f"column {column}: expected float, got {value!r}")
            return float(value)
        if self is ColumnType.TEXT:
            if not isinstance(value, str):
                raise SchemaError(f"column {column}: expected str, got {value!r}")
            return value
        if not isinstance(value, (bytes, bytearray, memoryview)):
            raise SchemaError(f"column {column}: expected bytes, got {value!r}")
        return bytes(value)

    def encode(self, value: object) -> bytes:
        """Binary encoding of a non-null value of this type."""
        if self is ColumnType.INTEGER:
            return _I32.pack(value)
        if self is ColumnType.BIGINT:
            return _I64.pack(value)
        if self is ColumnType.FLOAT:
            return _F64.pack(value)
        if self is ColumnType.TEXT:
            raw = value.encode("utf-8")
            return _LEN.pack(len(raw)) + raw
        return _LEN.pack(len(value)) + value

    def decode(self, buffer: memoryview, offset: int) -> tuple[object, int]:
        """Decode one value; returns ``(value, next_offset)``."""
        if self is ColumnType.INTEGER:
            return _I32.unpack_from(buffer, offset)[0], offset + 4
        if self is ColumnType.BIGINT:
            return _I64.unpack_from(buffer, offset)[0], offset + 8
        if self is ColumnType.FLOAT:
            return _F64.unpack_from(buffer, offset)[0], offset + 8
        length = _LEN.unpack_from(buffer, offset)[0]
        start = offset + _LEN.size
        raw = bytes(buffer[start : start + length])
        if self is ColumnType.TEXT:
            return raw.decode("utf-8"), start + length
        return raw, start + length

    def encoded_size(self, value: object) -> int:
        """Bytes this value occupies in a stored row (excluding null map)."""
        if value is None:
            return 0
        if self is ColumnType.INTEGER:
            return 4
        if self in (ColumnType.BIGINT, ColumnType.FLOAT):
            return 8
        if self is ColumnType.TEXT:
            return _LEN.size + len(value.encode("utf-8"))
        return _LEN.size + len(value)
