"""A small SQL dialect over the storage engine.

Algorithm 1 in the paper drives the cache through SQL strings
(``SELECT * FROM cachedb..cacheInfo WHERE dataset = d AND ...``); this
module implements the subset needed to run such statements against
:class:`~repro.storage.database.Database` tables:

* ``SELECT [cols | *] FROM t [WHERE conj] [ORDER BY col [ASC|DESC]] [LIMIT n]``
* ``INSERT INTO t (cols) VALUES (vals)``
* ``UPDATE t SET col = val, ... [WHERE conj]``
* ``DELETE FROM t [WHERE conj]``

where a conjunction is ``col op literal`` terms joined by ``AND`` with
ops ``= != <> < <= > >=`` and literals are numbers, single-quoted
strings, ``NULL`` or ``?`` parameters.  SQL-Server style qualified names
(``cachedb..cacheInfo``) resolve to their last component.

The executor is index-aware: equality/range constraints on a prefix of
the primary key become clustered-index lookups or range scans, and
equality on a secondary index's columns becomes an index lookup;
remaining terms are applied as residual filters.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterator

from repro.storage.errors import SqlError
from repro.storage.mvcc import Transaction
from repro.storage.table import Table

# -- tokenizer -----------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<number>-?\d+\.\d+(?:[eE][-+]?\d+)?|-?\d+)
      | (?P<string>'(?:[^']|'')*')
      | (?P<ident>[A-Za-z_][A-Za-z_0-9]*(?:\.\.?[A-Za-z_][A-Za-z_0-9]*)*)
      | (?P<op><=|>=|!=|<>|=|<|>)
      | (?P<punct>[(),*?])
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "SELECT", "FROM", "WHERE", "AND", "ORDER", "BY", "ASC", "DESC",
    "LIMIT", "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE", "NULL",
}


@dataclass(frozen=True)
class _Token:
    kind: str  # 'number' | 'string' | 'ident' | 'keyword' | 'op' | 'punct'
    text: str


def tokenize(text: str) -> list[_Token]:
    """Split SQL text into tokens.  Raises :class:`SqlError` on junk."""
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            if text[pos:].strip():
                raise SqlError(f"cannot tokenize SQL near {text[pos:pos+20]!r}")
            break
        pos = match.end()
        kind = match.lastgroup
        value = match.group(kind)
        if kind == "ident" and value.upper() in _KEYWORDS:
            tokens.append(_Token("keyword", value.upper()))
        else:
            tokens.append(_Token(kind, value))
    return tokens


# -- AST ------------------------------------------------------------------------

_OPS = {"=", "!=", "<>", "<", "<=", ">", ">="}


@dataclass(frozen=True)
class Condition:
    """One ``column op value`` term (value may be the parameter marker)."""

    column: str
    op: str
    value: object  # literal, or _Param placeholder

    def matches(self, row: dict[str, object]) -> bool:
        """Whether a row satisfies the condition (NULLs match nothing)."""
        actual = row.get(self.column)
        expected = self.value
        if actual is None or expected is None:
            # SQL three-valued logic collapsed to: NULL matches nothing.
            return False
        if self.op == "=":
            return actual == expected
        if self.op in ("!=", "<>"):
            return actual != expected
        if self.op == "<":
            return actual < expected
        if self.op == "<=":
            return actual <= expected
        if self.op == ">":
            return actual > expected
        return actual >= expected


@dataclass(frozen=True)
class _Param:
    index: int


#: Supported aggregate function names.
_AGGREGATES = {"COUNT", "SUM", "MIN", "MAX", "AVG"}


@dataclass
class SelectStatement:
    table: str
    columns: list[str] | None  # None = *
    where: list[Condition] = field(default_factory=list)
    order_by: str | None = None
    descending: bool = False
    limit: int | None = None
    aggregate: tuple[str, str | None] | None = None  # (function, column)


@dataclass
class InsertStatement:
    table: str
    columns: list[str]
    values: list[object]


@dataclass
class UpdateStatement:
    table: str
    assignments: dict[str, object]
    where: list[Condition] = field(default_factory=list)


@dataclass
class DeleteStatement:
    table: str
    where: list[Condition] = field(default_factory=list)


# -- parser -----------------------------------------------------------------------


class _Parser:
    def __init__(self, tokens: list[_Token]) -> None:
        self._tokens = tokens
        self._pos = 0
        self._param_count = 0

    def parse(self):
        head = self._expect("keyword")
        if head.text == "SELECT":
            stmt = self._select()
        elif head.text == "INSERT":
            stmt = self._insert()
        elif head.text == "UPDATE":
            stmt = self._update()
        elif head.text == "DELETE":
            stmt = self._delete()
        else:
            raise SqlError(f"unsupported statement {head.text}")
        if self._pos != len(self._tokens):
            raise SqlError(f"trailing tokens after statement: {self._peek().text!r}")
        return stmt, self._param_count

    # helpers

    def _peek(self) -> _Token:
        if self._pos >= len(self._tokens):
            raise SqlError("unexpected end of SQL")
        return self._tokens[self._pos]

    def _advance(self) -> _Token:
        token = self._peek()
        self._pos += 1
        return token

    def _expect(self, kind: str, text: str | None = None) -> _Token:
        token = self._advance()
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text or kind
            raise SqlError(f"expected {wanted}, found {token.text!r}")
        return token

    def _accept(self, kind: str, text: str | None = None) -> _Token | None:
        if self._pos < len(self._tokens):
            token = self._tokens[self._pos]
            if token.kind == kind and (text is None or token.text == text):
                self._pos += 1
                return token
        return None

    def _table_name(self) -> str:
        name = self._expect("ident").text
        return name.split(".")[-1]  # cachedb..cacheInfo -> cacheInfo

    def _literal(self) -> object:
        token = self._advance()
        if token.kind == "number":
            text = token.text
            if any(c in text for c in ".eE"):
                return float(text)
            return int(text)
        if token.kind == "string":
            return token.text[1:-1].replace("''", "'")
        if token.kind == "keyword" and token.text == "NULL":
            return None
        if token.kind == "punct" and token.text == "?":
            param = _Param(self._param_count)
            self._param_count += 1
            return param
        raise SqlError(f"expected literal, found {token.text!r}")

    def _where(self) -> list[Condition]:
        conditions = []
        while True:
            column = self._expect("ident").text
            op = self._expect("op").text
            conditions.append(Condition(column, op, self._literal()))
            if not self._accept("keyword", "AND"):
                return conditions

    # statements

    def _select(self) -> SelectStatement:
        columns: list[str] | None = None
        aggregate: tuple[str, str | None] | None = None
        if self._accept("punct", "*"):
            pass
        elif (
            self._peek().kind == "ident"
            and self._peek().text.upper() in _AGGREGATES
            and self._pos + 1 < len(self._tokens)
            and self._tokens[self._pos + 1] == _Token("punct", "(")
        ):
            function = self._advance().text.upper()
            self._expect("punct", "(")
            if self._accept("punct", "*"):
                if function != "COUNT":
                    raise SqlError(f"{function}(*) is not supported")
                aggregate = (function, None)
            else:
                aggregate = (function, self._expect("ident").text)
            self._expect("punct", ")")
        else:
            columns = [self._expect("ident").text]
            while self._accept("punct", ","):
                columns.append(self._expect("ident").text)
        self._expect("keyword", "FROM")
        stmt = SelectStatement(self._table_name(), columns, aggregate=aggregate)
        if self._accept("keyword", "WHERE"):
            stmt.where = self._where()
        if self._accept("keyword", "ORDER"):
            self._expect("keyword", "BY")
            stmt.order_by = self._expect("ident").text
            if self._accept("keyword", "DESC"):
                stmt.descending = True
            else:
                self._accept("keyword", "ASC")
        if self._accept("keyword", "LIMIT"):
            limit = self._literal()
            if not isinstance(limit, int) or limit < 0:
                raise SqlError("LIMIT requires a non-negative integer literal")
            stmt.limit = limit
        return stmt

    def _insert(self) -> InsertStatement:
        self._expect("keyword", "INTO")
        table = self._table_name()
        self._expect("punct", "(")
        columns = [self._expect("ident").text]
        while self._accept("punct", ","):
            columns.append(self._expect("ident").text)
        self._expect("punct", ")")
        self._expect("keyword", "VALUES")
        self._expect("punct", "(")
        values = [self._literal()]
        while self._accept("punct", ","):
            values.append(self._literal())
        self._expect("punct", ")")
        if len(values) != len(columns):
            raise SqlError("INSERT column/value count mismatch")
        return InsertStatement(table, columns, values)

    def _update(self) -> UpdateStatement:
        table = self._table_name()
        self._expect("keyword", "SET")
        assignments: dict[str, object] = {}
        while True:
            column = self._expect("ident").text
            self._expect("op", "=")
            assignments[column] = self._literal()
            if not self._accept("punct", ","):
                break
        stmt = UpdateStatement(table, assignments)
        if self._accept("keyword", "WHERE"):
            stmt.where = self._where()
        return stmt

    def _delete(self) -> DeleteStatement:
        self._expect("keyword", "FROM")
        stmt = DeleteStatement(self._table_name())
        if self._accept("keyword", "WHERE"):
            stmt.where = self._where()
        return stmt


def parse(text: str):
    """Parse SQL text into a statement AST.

    Returns ``(statement, parameter_count)``.
    """
    return _Parser(tokenize(text)).parse()


# -- executor -----------------------------------------------------------------------


def _bind(value: object, params: list[object]) -> object:
    if isinstance(value, _Param):
        if value.index >= len(params):
            raise SqlError(
                f"statement needs {value.index + 1} parameters, got {len(params)}"
            )
        return params[value.index]
    return value


def _bind_conditions(
    conditions: list[Condition], params: list[object]
) -> list[Condition]:
    return [
        Condition(c.column, c.op, _bind(c.value, params)) for c in conditions
    ]


def _plan_scan(
    table: Table, txn: Transaction, conditions: list[Condition]
) -> tuple[Iterator[dict[str, object]], list[Condition]]:
    """Choose an access path; returns (row iterator, residual conditions)."""
    equalities = {c.column: c.value for c in conditions if c.op == "="}
    pk = table.schema.primary_key

    # Full primary-key equality: point lookup.
    if all(col in equalities for col in pk):
        key = tuple(equalities[col] for col in pk)
        row = table.get(txn, key)
        rows = iter([row] if row is not None else [])
        residual = [c for c in conditions if c.column not in pk or c.op != "="]
        return rows, residual

    # Equality on a secondary index's full column list.
    for index_name, index_cols in table.schema.indexes.items():
        if all(col in equalities for col in index_cols):
            key = tuple(equalities[col] for col in index_cols)
            rows = table.lookup(txn, index_name, key)
            residual = [
                c
                for c in conditions
                if c.column not in index_cols or c.op != "="
            ]
            return rows, residual

    # Primary-key prefix: bounded clustered scan.
    prefix: list[object] = []
    for col in pk:
        if col in equalities:
            prefix.append(equalities[col])
        else:
            break
    if prefix:
        lo = tuple(prefix)
        hi = tuple(prefix[:-1]) + (_successor(prefix[-1]),)
        rows = table.scan(txn, lo, hi)
        consumed = set(pk[: len(prefix)])
        residual = [
            c for c in conditions if c.column not in consumed or c.op != "="
        ]
        return rows, residual

    return table.scan(txn), list(conditions)


def _successor(value: object) -> object:
    """Smallest value strictly greater than ``value`` for range bounds."""
    if isinstance(value, bool):
        raise SqlError("boolean keys unsupported")
    if isinstance(value, int):
        return value + 1
    if isinstance(value, float):
        import math

        return math.nextafter(value, math.inf)
    if isinstance(value, str):
        return value + "\x00"
    raise SqlError(f"cannot form successor of {value!r}")


def _aggregate(
    aggregate: tuple[str, str | None], rows: list[dict[str, object]]
) -> object:
    """Evaluate COUNT/SUM/MIN/MAX/AVG over the matched rows.

    ``COUNT(*)`` counts rows; the other functions skip NULLs and return
    ``None`` over an empty (or all-NULL) input, per SQL semantics.
    """
    function, column = aggregate
    if function == "COUNT" and column is None:
        return len(rows)
    values = [row.get(column) for row in rows if row.get(column) is not None]
    if function == "COUNT":
        return len(values)
    if not values:
        return None
    if function == "SUM":
        return sum(values)
    if function == "MIN":
        return min(values)
    if function == "MAX":
        return max(values)
    return sum(values) / len(values)  # AVG


def explain(database, text: str) -> dict:
    """Describe the access path a SELECT/UPDATE/DELETE would use.

    Returns a dictionary with the ``table``, the chosen ``access`` path
    (``pk_lookup``, ``index_lookup``, ``pk_range_scan`` or
    ``full_scan``), the ``index`` used (if any) and the number of
    ``residual`` filter terms.  Parameters are treated as opaque values.

    Raises:
        SqlError: on malformed SQL or an INSERT (which has no plan).
    """
    statement, _ = parse(text)
    if isinstance(statement, InsertStatement):
        raise SqlError("INSERT statements have no access path to explain")
    table = database.table(statement.table)
    conditions = statement.where
    equalities = {c.column for c in conditions if c.op == "="}
    pk = table.schema.primary_key

    if all(col in equalities for col in pk):
        return {
            "table": statement.table,
            "access": "pk_lookup",
            "index": None,
            "residual": sum(
                1 for c in conditions if c.column not in pk or c.op != "="
            ),
        }
    for index_name, index_cols in table.schema.indexes.items():
        if all(col in equalities for col in index_cols):
            return {
                "table": statement.table,
                "access": "index_lookup",
                "index": index_name,
                "residual": sum(
                    1
                    for c in conditions
                    if c.column not in index_cols or c.op != "="
                ),
            }
    prefix = 0
    for col in pk:
        if col in equalities:
            prefix += 1
        else:
            break
    if prefix:
        consumed = set(pk[:prefix])
        return {
            "table": statement.table,
            "access": "pk_range_scan",
            "index": None,
            "residual": sum(
                1 for c in conditions if c.column not in consumed or c.op != "="
            ),
        }
    return {
        "table": statement.table,
        "access": "full_scan",
        "index": None,
        "residual": len(conditions),
    }


def execute(database, txn: Transaction, text: str, params: list[object]):
    """Parse and run a SQL statement inside ``txn``.

    Returns a list of row dicts for SELECT (a scalar for aggregate
    SELECTs) and an affected-row count for INSERT/UPDATE/DELETE.
    """
    statement, param_count = parse(text)
    if param_count > len(params):
        raise SqlError(
            f"statement needs {param_count} parameters, got {len(params)}"
        )
    table = database.table(statement.table)

    if isinstance(statement, SelectStatement):
        conditions = _bind_conditions(statement.where, params)
        rows, residual = _plan_scan(table, txn, conditions)
        out = [row for row in rows if all(c.matches(row) for c in residual)]
        if statement.aggregate is not None:
            return _aggregate(statement.aggregate, out)
        if statement.order_by is not None:
            column = statement.order_by
            out.sort(key=lambda r: r.get(column), reverse=statement.descending)
        if statement.limit is not None:
            out = out[: statement.limit]
        if statement.columns is not None:
            out = [{c: row.get(c) for c in statement.columns} for row in out]
        return out

    if isinstance(statement, InsertStatement):
        row = {
            col: _bind(val, params)
            for col, val in zip(statement.columns, statement.values)
        }
        table.insert(txn, row)
        return 1

    if isinstance(statement, UpdateStatement):
        conditions = _bind_conditions(statement.where, params)
        changes = {
            col: _bind(val, params) for col, val in statement.assignments.items()
        }
        rows, residual = _plan_scan(table, txn, conditions)
        keys = [
            table.schema.key_of(row)
            for row in rows
            if all(c.matches(row) for c in residual)
        ]
        for key in keys:
            table.update(txn, key, changes)
        return len(keys)

    conditions = _bind_conditions(statement.where, params)
    rows, residual = _plan_scan(table, txn, conditions)
    keys = [
        table.schema.key_of(row)
        for row in rows
        if all(c.matches(row) for c in residual)
    ]
    for key in keys:
        table.delete(txn, key)
    return len(keys)
