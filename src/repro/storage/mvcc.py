"""Multi-version concurrency control with snapshot isolation.

The paper runs every cache read and update "within a transaction with
snapshot isolation level to avoid dirty-reads or an inconsistent view of
the cache" (§4).  This module supplies that machinery: version chains per
primary key, transactions that read as of a fixed snapshot, and
first-updater-wins write-conflict detection matching SQL Server's
``SNAPSHOT`` isolation semantics.
"""

from __future__ import annotations

import enum
import itertools
import threading
from typing import TYPE_CHECKING, Callable

from repro.costmodel import CostLedger
from repro.storage.errors import SerializationConflictError, TransactionError
from repro.storage.heap import RowId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.wal import WalKind, WriteAheadLog


class TxStatus(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Version:
    """One version of a row.

    ``begin_ts``/``end_ts`` are commit timestamps once the creating /
    deleting transaction commits; while that transaction is in flight the
    corresponding ``creator``/``deleter`` field points at it instead.
    """

    __slots__ = ("row", "rowid", "begin_ts", "end_ts", "creator", "deleter")

    def __init__(
        self, row: dict[str, object], rowid: RowId, creator: "Transaction"
    ) -> None:
        self.row = row
        self.rowid = rowid
        self.begin_ts: int | None = None
        self.end_ts: int | None = None
        self.creator: Transaction | None = creator
        self.deleter: Transaction | None = None

    def visible_to(self, txn: "Transaction") -> bool:
        """Snapshot-isolation visibility check."""
        # Own uncommitted insert is visible unless we also deleted it.
        if self.creator is txn:
            return self.deleter is not txn
        # Foreign uncommitted insert is never visible.
        if self.creator is not None:
            return False
        if self.begin_ts is None or self.begin_ts > txn.snapshot_ts:
            return False
        # Deleted by us -> gone from our view; deleted by an in-flight
        # foreign transaction -> still visible to us.
        if self.deleter is txn:
            return False
        if self.end_ts is not None and self.end_ts <= txn.snapshot_ts:
            return False
        return True

    @property
    def committed_live(self) -> bool:
        """Committed, not deleted by any committed transaction."""
        return self.creator is None and self.end_ts is None and self.deleter is None


class VersionChain:
    """All versions of one primary key, newest first."""

    __slots__ = ("versions",)

    def __init__(self) -> None:
        self.versions: list[Version] = []

    def newest(self) -> Version | None:
        """The most recent version, committed or not."""
        return self.versions[0] if self.versions else None

    def visible(self, txn: "Transaction") -> Version | None:
        """The version ``txn`` sees, or ``None``."""
        for version in self.versions:
            if version.visible_to(txn):
                return version
        return None

    def push(self, version: Version) -> None:
        """Prepend a new (newest) version."""
        self.versions.insert(0, version)

    def remove(self, version: Version) -> None:
        """Unlink an aborted version."""
        self.versions.remove(version)

    def check_write_allowed(self, txn: "Transaction") -> None:
        """First-updater-wins conflict detection.

        Raises:
            SerializationConflictError: when the newest version was
                written (created or deleted) by a concurrent transaction —
                either still in flight or committed after our snapshot.
        """
        newest = self.newest()
        if newest is None:
            return
        for writer, stamp in (
            (newest.creator, newest.begin_ts),
            (newest.deleter, newest.end_ts),
        ):
            if writer is not None and writer is not txn:
                txn._manager.record_conflict()
                raise SerializationConflictError(
                    "row is being modified by a concurrent transaction"
                )
            if writer is None and stamp is not None and stamp > txn.snapshot_ts:
                txn._manager.record_conflict()
                raise SerializationConflictError(
                    "row was modified after this transaction's snapshot"
                )


class Transaction:
    """A snapshot-isolation transaction.

    Obtained from :meth:`repro.storage.database.Database.begin` (or the
    ``transaction()`` context manager).  Reads see the database as of
    ``snapshot_ts``; writes are private until commit.  The optional
    ``ledger`` collects simulated device time for every page this
    transaction touches.
    """

    def __init__(
        self, txn_id: int, snapshot_ts: int, manager: "TransactionManager",
        ledger: CostLedger | None = None, wal: "WriteAheadLog | None" = None,
    ) -> None:
        self.txn_id = txn_id
        self.snapshot_ts = snapshot_ts
        self.ledger = ledger
        self._manager = manager
        self._latch = manager.latch
        self._wal = wal
        self._wal_dirty = False
        self._status = TxStatus.ACTIVE
        self._created: list[tuple[VersionChain, Version]] = []
        self._deleted: list[tuple[VersionChain, Version]] = []
        self._undo_hooks: list[Callable[[], None]] = []
        self._commit_hooks: list[Callable[[], None]] = []

    def log(self, kind: "WalKind", table: str, payload: object) -> None:
        """Append a redo record for this transaction (no-op without WAL)."""
        if self._wal is not None:
            self._wal.append(self.txn_id, kind, table, payload)
            self._wal_dirty = True

    @property
    def status(self) -> TxStatus:
        return self._status

    @property
    def is_active(self) -> bool:
        return self._status is TxStatus.ACTIVE

    def require_active(self) -> None:
        """Raise :class:`TransactionError` unless the transaction is live."""
        if not self.is_active:
            raise TransactionError(f"transaction {self.txn_id} is {self._status.value}")

    # -- write tracking (called by Table) -----------------------------------

    def record_create(self, chain: VersionChain, version: Version) -> None:
        """Track a version this transaction created (for commit/abort)."""
        self._created.append((chain, version))

    def record_delete(self, chain: VersionChain, version: Version) -> None:
        """Track a version this transaction deleted (for commit/abort)."""
        self._deleted.append((chain, version))

    def on_abort(self, hook: Callable[[], None]) -> None:
        """Register an undo action (e.g. secondary-index rollback)."""
        self._undo_hooks.append(hook)

    def on_commit(self, hook: Callable[[], None]) -> None:
        """Register a commit action (e.g. buffer-pool flush charge)."""
        self._commit_hooks.append(hook)

    # -- lifecycle -----------------------------------------------------------

    def commit(self) -> None:
        """Make all writes durable and visible at a fresh commit timestamp.

        With a WAL attached, the COMMIT record is appended and the log
        forced *before* the writes become visible (write-ahead rule).
        """
        self.require_active()
        if self._wal is not None and self._wal_dirty:
            from repro.storage.wal import WalKind

            self._wal.append(self.txn_id, WalKind.COMMIT)
            self._wal.flush()
        # Publishing happens under the shared database latch so readers
        # never observe a half-committed write set.
        self._manager.record_commit()
        with self._latch:
            commit_ts = self._manager.advance()
            for _, version in self._created:
                version.begin_ts = commit_ts
                version.creator = None
            for _, version in self._deleted:
                version.end_ts = commit_ts
                version.deleter = None
            self._status = TxStatus.COMMITTED
            for hook in self._commit_hooks:
                hook()

    def abort(self) -> None:
        """Discard all writes."""
        self.require_active()
        if self._wal is not None and self._wal_dirty:
            from repro.storage.wal import WalKind

            self._wal.append(self.txn_id, WalKind.ABORT)
        self._manager.record_abort()
        with self._latch:
            for chain, version in self._created:
                chain.remove(version)
            for _, version in self._deleted:
                version.deleter = None
            for hook in reversed(self._undo_hooks):
                hook()
            self._status = TxStatus.ABORTED

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self.is_active:
            return
        if exc_type is None:
            self.commit()
        else:
            self.abort()


class TransactionManager:
    """Issues transaction ids, snapshots and commit timestamps.

    Args:
        latch: the owning database's re-entrant latch, shared with its
            tables; commit/abort publish version timestamps under it.  A
            private latch is created for standalone (single-database
            unit-test) use.
    """

    def __init__(self, latch: "threading.RLock | None" = None) -> None:
        self._ids = itertools.count(1)
        self._clock = 0
        self._lock = threading.Lock()
        self.latch = latch if latch is not None else threading.RLock()
        # Lifetime workload counters, sampled by the observability layer
        # at export time (see Database.storage_stats).
        self.begun = 0
        self.committed = 0
        self.aborted = 0
        self.conflicts = 0

    @property
    def now(self) -> int:
        return self._clock

    def record_commit(self) -> None:
        """Count one committed transaction."""
        with self._lock:
            self.committed += 1

    def record_abort(self) -> None:
        """Count one aborted transaction."""
        with self._lock:
            self.aborted += 1

    def record_conflict(self) -> None:
        """Count one first-updater-wins serialization conflict."""
        with self._lock:
            self.conflicts += 1

    def advance(self) -> int:
        """Issue the next commit timestamp."""
        with self._lock:
            self._clock += 1
            return self._clock

    def begin(
        self, ledger: CostLedger | None = None, wal: "WriteAheadLog | None" = None
    ) -> Transaction:
        """Start a transaction with a snapshot of the current clock."""
        with self._lock:
            txn_id = next(self._ids)
            snapshot = self._clock
            self.begun += 1
        return Transaction(txn_id, snapshot, self, ledger, wal=wal)
