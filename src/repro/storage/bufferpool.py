"""LRU buffer pool charging simulated device time for page traffic.

Every page access goes through the pool.  A miss charges the owning
table's device for one page read (and counts bytes/seeks on the active
ledger's meters); a hit is free, which is how "SQL Server benefits from a
larger buffer pool" (paper §5.3) shows up in the model.  Dirty pages are
charged on write-back at eviction or flush.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.storage.heap import PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.database import StorageDevice


class BufferPool:
    """A shared LRU pool of ``capacity_pages`` page frames.

    Frames are keyed by ``(file_id, page_no)``.  The pool never stores
    page *contents* — record bytes live in the heap — it tracks residency
    so device charges hit only on real misses, mirroring a DBMS buffer
    cache.
    """

    def __init__(self, capacity_pages: int = 4096) -> None:
        if capacity_pages < 1:
            raise ValueError("capacity_pages must be >= 1")
        self._capacity = capacity_pages
        self._frames: OrderedDict[tuple[int, int], bool] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._frames)

    def access(
        self,
        device: "StorageDevice",
        file_id: int,
        page_no: int,
        dirty: bool = False,
        sequential: bool = False,
    ) -> None:
        """Touch a page, charging a device read when it is not resident.

        Args:
            device: the device (and ledger hook) owning the page's file.
            file_id: identifies the heap file within its database.
            page_no: page number within the file.
            dirty: mark the frame dirty (write-back charged on eviction
                or :meth:`flush`).
            sequential: suppress the per-page seek charge (the page is
                part of an already-seeked sequential extent).
        """
        key = (file_id, page_no)
        with self._lock:
            if key in self._frames:
                self.hits += 1
                dirty = dirty or self._frames[key]
                self._frames.move_to_end(key)
                self._frames[key] = dirty
                return
            self.misses += 1
            device.charge_read(PAGE_SIZE, seeks=0 if sequential else 1)
            self._frames[key] = dirty
            self._evict_if_needed(device)

    def _evict_if_needed(self, device: "StorageDevice") -> None:
        while len(self._frames) > self._capacity:
            _, dirty = self._frames.popitem(last=False)
            if dirty:
                device.charge_write(PAGE_SIZE, seeks=1)

    def flush(self, device: "StorageDevice") -> None:
        """Write back every dirty frame (transaction commit)."""
        with self._lock:
            for key, dirty in self._frames.items():
                if dirty:
                    device.charge_write(PAGE_SIZE, seeks=0)
                    self._frames[key] = False

    def clear(self) -> None:
        """Drop all frames without charging (cold-cache experiment reset)."""
        with self._lock:
            self._frames.clear()
