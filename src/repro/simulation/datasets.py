"""Synthetic dataset generators: isotropic, MHD and channel flow.

A :class:`SyntheticDataset` produces every raw field of a dataset at any
timestep, deterministically from a seed.  Timesteps evolve smoothly: the
field at time ``t`` is a phase rotation between two fixed random fields,
so intense structures drift and deform across steps instead of being
re-rolled — the temporal coherence the paper's 4-D cluster analysis
(Fig. 3) relies on.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field as dataclass_field

import numpy as np

from repro.simulation.spectral import solenoidal_field
from repro.simulation.structures import StructureParams, add_structures


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of a dataset.

    Attributes:
        name: dataset name used in queries (``"mhd"`` etc.).
        side: grid points per edge.
        timesteps: number of stored timesteps.
        spacing: grid spacing (the JHTDB grids span a 2*pi box).
        fields: raw stored field name -> component count.
        seed: base RNG seed.
        structures: intense-vortex population added to each 3-component
            field (``None`` for a purely Gaussian field).  Real
            turbulence is intermittent; these structures supply the
            heavy tail that threshold queries at several times the RMS
            rely on (paper Figs. 2-4).
    """

    name: str
    side: int
    timesteps: int
    spacing: float
    fields: dict[str, int] = dataclass_field(default_factory=dict)
    seed: int = 0
    structures: StructureParams | None = dataclass_field(
        default_factory=StructureParams
    )

    def __post_init__(self) -> None:
        if self.side <= 0 or self.side % 8:
            raise ValueError(f"side must be a positive multiple of 8, got {self.side}")
        if self.timesteps <= 0:
            raise ValueError("timesteps must be positive")
        if self.spacing <= 0:
            raise ValueError("spacing must be positive")
        if not self.fields:
            raise ValueError("a dataset needs at least one raw field")

    @property
    def points_per_timestep(self) -> int:
        return self.side**3

    def bytes_per_timestep(self, field: str) -> int:
        """Stored bytes of one field over one timestep (float32)."""
        return self.points_per_timestep * self.fields[field] * 4


class SyntheticDataset:
    """Deterministic generator of a dataset's raw fields.

    Fields at timestep ``t`` are ``cos(theta_t) * A + sin(theta_t) * B``
    for two independent solenoidal base fields A, B and a slowly
    advancing angle, so energy is stationary while structures evolve.
    A small LRU keeps the most recently generated arrays for re-use.
    """

    #: Angle advanced per timestep (full morph over ~16 steps).
    PHASE_STEP = 2.0 * math.pi / 64.0

    def __init__(self, spec: DatasetSpec, cache_arrays: int = 8) -> None:
        self.spec = spec
        self._cache: OrderedDict[tuple[str, int], np.ndarray] = OrderedDict()
        self._cache_arrays = cache_arrays

    def field_array(self, field: str, timestep: int) -> np.ndarray:
        """The raw ``field`` at ``timestep``: ``(side,)*3 + (ncomp,)`` float32.

        Raises:
            KeyError: unknown field.
            ValueError: timestep out of range.
        """
        if field not in self.spec.fields:
            raise KeyError(f"dataset {self.spec.name} has no field {field!r}")
        if not 0 <= timestep < self.spec.timesteps:
            raise ValueError(
                f"timestep {timestep} outside [0, {self.spec.timesteps})"
            )
        key = (field, timestep)
        if key in self._cache:
            self._cache.move_to_end(key)
            return self._cache[key]
        array = self._generate(field, timestep)
        self._cache[key] = array
        while len(self._cache) > self._cache_arrays:
            self._cache.popitem(last=False)
        return array

    def _generate(self, field: str, timestep: int) -> np.ndarray:
        ncomp = self.spec.fields[field]
        seed_a = _stable_seed(self.spec.seed, self.spec.name, field, 0)
        seed_b = _stable_seed(self.spec.seed, self.spec.name, field, 1)
        base_a = self._base_field(seed_a, ncomp)
        base_b = self._base_field(seed_b, ncomp)
        theta = timestep * self.PHASE_STEP
        array = math.cos(theta) * base_a + math.sin(theta) * base_b
        if self.spec.structures is not None and ncomp == 3:
            array = add_structures(
                array,
                timestep,
                self.spec.structures,
                self.spec.timesteps,
                seed=_stable_seed(self.spec.seed, self.spec.name, field, "blobs"),
                spacing=self.spec.spacing,
                background_vorticity_rms=self._vorticity_rms(field),
            )
        return self._shape_field(field, array).astype(np.float32)

    def _base_field(self, seed: int, ncomp: int) -> np.ndarray:
        vector = solenoidal_field(self.spec.side, seed=seed, dtype=np.float64)
        if ncomp == 3:
            return vector
        if ncomp == 1:
            return vector[..., :1]
        raise ValueError(f"unsupported component count {ncomp}")

    def _vorticity_rms(self, field: str) -> float:
        """RMS curl of the field's Gaussian background (cached)."""
        if not hasattr(self, "_vorticity_rms_cache"):
            self._vorticity_rms_cache: dict[str, float] = {}
        if field not in self._vorticity_rms_cache:
            from repro.fields.operators import curl_periodic

            base = self._base_field(
                _stable_seed(self.spec.seed, self.spec.name, field, 0), 3
            )
            curl = curl_periodic(base, self.spec.spacing, order=4)
            self._vorticity_rms_cache[field] = float(
                np.sqrt(np.mean(np.sum(curl**2, axis=-1)))
            )
        return self._vorticity_rms_cache[field]

    def _shape_field(self, field: str, array: np.ndarray) -> np.ndarray:
        """Hook for subclasses to impose anisotropy (channel flow)."""
        return array


def _stable_seed(*parts: object) -> int:
    """A deterministic 63-bit seed from heterogeneous parts."""
    import hashlib

    digest = hashlib.sha256(repr(parts).encode()).digest()
    return int.from_bytes(digest[:8], "little") >> 1


class _ChannelDataset(SyntheticDataset):
    """Channel-like dataset: streamwise mean profile, wall damping in y."""

    def _shape_field(self, field: str, array: np.ndarray) -> np.ndarray:
        side = self.spec.side
        y = (np.arange(side) + 0.5) / side  # wall at y=0 and y=1
        damping = np.sin(np.pi * y)  # fluctuations vanish at the walls
        shaped = array * damping[None, :, None, None]
        if field == "velocity":
            profile = 2.0 * y * (1.0 - y) * 4.0  # parabolic streamwise mean
            shaped = shaped.copy()
            shaped[..., 0] += profile[None, :, None]
        return shaped


def isotropic_dataset(
    side: int = 64, timesteps: int = 4, seed: int = 7
) -> SyntheticDataset:
    """Forced-isotropic-turbulence stand-in: velocity + pressure."""
    spec = DatasetSpec(
        name="isotropic",
        side=side,
        timesteps=timesteps,
        spacing=2.0 * math.pi / side,
        fields={"velocity": 3, "pressure": 1},
        seed=seed,
    )
    return SyntheticDataset(spec)


def mhd_dataset(side: int = 64, timesteps: int = 4, seed: int = 11) -> SyntheticDataset:
    """Magnetohydrodynamics stand-in: velocity + magnetic field + pressure."""
    spec = DatasetSpec(
        name="mhd",
        side=side,
        timesteps=timesteps,
        spacing=2.0 * math.pi / side,
        fields={"velocity": 3, "magnetic": 3, "pressure": 1},
        seed=seed,
    )
    return SyntheticDataset(spec)


def channel_dataset(
    side: int = 64, timesteps: int = 4, seed: int = 13
) -> SyntheticDataset:
    """Channel-flow stand-in with a streamwise mean profile and walls."""
    spec = DatasetSpec(
        name="channel",
        side=side,
        timesteps=timesteps,
        spacing=2.0 * math.pi / side,
        fields={"velocity": 3, "pressure": 1},
        seed=seed,
    )
    return _ChannelDataset(spec)
