"""Saving and loading synthetic datasets on disk.

The synthetic generators are deterministic, but regenerating a 128^3+
multi-timestep dataset costs FFTs on every run.  This module persists a
dataset's fields as flat ``.npy``-style binary files plus a small JSON
manifest, and serves them back through the same ``field_array``
interface the ingest path expects — so saved datasets drop into
:func:`repro.cluster.mediator.build_cluster` unchanged.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.simulation.datasets import DatasetSpec, SyntheticDataset

_MANIFEST = "manifest.json"


def save_dataset(
    dataset: SyntheticDataset, directory: str | pathlib.Path
) -> pathlib.Path:
    """Materialise every field and timestep of ``dataset`` under ``directory``.

    Returns the directory path.  Existing files are overwritten.
    """
    root = pathlib.Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    spec = dataset.spec
    manifest = {
        "name": spec.name,
        "side": spec.side,
        "timesteps": spec.timesteps,
        "spacing": spec.spacing,
        "fields": dict(spec.fields),
        "seed": spec.seed,
    }
    (root / _MANIFEST).write_text(json.dumps(manifest, indent=2))
    for field in spec.fields:
        for timestep in range(spec.timesteps):
            array = dataset.field_array(field, timestep)
            np.save(root / f"{field}_{timestep}.npy", array)
    return root


class StoredDataset:
    """A dataset served from files written by :func:`save_dataset`.

    Presents the same ``spec`` / ``field_array`` interface as
    :class:`~repro.simulation.datasets.SyntheticDataset`.
    """

    def __init__(self, directory: str | pathlib.Path) -> None:
        self._root = pathlib.Path(directory)
        manifest_path = self._root / _MANIFEST
        if not manifest_path.exists():
            raise FileNotFoundError(
                f"no dataset manifest at {manifest_path}"
            )
        manifest = json.loads(manifest_path.read_text())
        self.spec = DatasetSpec(
            name=manifest["name"],
            side=manifest["side"],
            timesteps=manifest["timesteps"],
            spacing=manifest["spacing"],
            fields={k: int(v) for k, v in manifest["fields"].items()},
            seed=manifest["seed"],
        )

    def field_array(self, field: str, timestep: int) -> np.ndarray:
        """The stored field at ``timestep``.

        Raises:
            KeyError: unknown field.
            ValueError: timestep out of range.
            FileNotFoundError: manifest promises a file that is missing.
        """
        if field not in self.spec.fields:
            raise KeyError(f"dataset {self.spec.name} has no field {field!r}")
        if not 0 <= timestep < self.spec.timesteps:
            raise ValueError(
                f"timestep {timestep} outside [0, {self.spec.timesteps})"
            )
        path = self._root / f"{field}_{timestep}.npy"
        array = np.load(path)
        expected = (self.spec.side,) * 3 + (self.spec.fields[field],)
        if array.shape != expected:
            raise ValueError(
                f"{path} has shape {array.shape}, expected {expected}"
            )
        return array


def load_dataset(directory: str | pathlib.Path) -> StoredDataset:
    """Open a dataset saved by :func:`save_dataset`."""
    return StoredDataset(directory)
