"""Cutting fields into 8^3 database atoms and reassembling them.

Each timestep is "spatially subdivided into database atoms of size 8^3
... indexed by the time-step and the Morton code of its lower left
corner" (paper §2).  :func:`atomize` produces exactly those records;
:func:`array_from_atoms` reassembles any box from a set of atom blobs.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

import numpy as np

from repro.grid import ATOM_SIDE, Box, atom_box
from repro.morton import encode_array


def atomize(field: np.ndarray) -> Iterator[tuple[int, bytes]]:
    """Cut a full-domain field into ``(zindex, blob)`` atom records.

    ``field`` has shape ``(side, side, side, ncomp)`` (or 3-D for a
    scalar, treated as one component).  Blobs are C-order float32 bytes
    of shape ``(ATOM_SIDE,)*3 + (ncomp,)``, yielded in Morton order of
    their lower corner.

    The whole cut is vectorised: one reshape/transpose views the domain
    as an ``(atoms, ATOM_SIDE^3 * ncomp)`` array, the corner codes come
    from one :func:`~repro.morton.encode_array` call, and a single
    argsort yields the atoms in curve order — no per-atom Python Morton
    arithmetic.

    Raises:
        ValueError: if the domain is not an atom multiple or not cubic.
    """
    if field.ndim == 3:
        field = field[..., None]
    if field.ndim != 4:
        raise ValueError(f"expected 3-D or 4-D field, got shape {field.shape}")
    side = field.shape[0]
    if field.shape[:3] != (side, side, side):
        raise ValueError(f"field must be cubic, got shape {field.shape}")
    if side % ATOM_SIDE:
        raise ValueError(f"side {side} is not a multiple of {ATOM_SIDE}")
    data = np.ascontiguousarray(field, dtype=np.float32)
    na = side // ATOM_SIDE
    ncomp = data.shape[3]
    # (na, A, na, A, na, A, c) -> (na, na, na, A, A, A, c): every atom's
    # cells become one contiguous run, in the atom's own C order.
    blocks = data.reshape(
        na, ATOM_SIDE, na, ATOM_SIDE, na, ATOM_SIDE, ncomp
    ).transpose(0, 2, 4, 1, 3, 5, 6)
    flat = np.ascontiguousarray(blocks).reshape(
        na**3, ATOM_SIDE**3 * ncomp
    )
    ax, ay, az = np.meshgrid(
        np.arange(na), np.arange(na), np.arange(na), indexing="ij"
    )
    codes = encode_array(
        ax.ravel() * ATOM_SIDE, ay.ravel() * ATOM_SIDE, az.ravel() * ATOM_SIDE
    )
    for i in np.argsort(codes, kind="stable").tolist():
        yield int(codes[i]), flat[i].tobytes()


def blob_to_array(blob: bytes, ncomp: int) -> np.ndarray:
    """Decode one atom blob back to ``(ATOM_SIDE,)*3 + (ncomp,)`` float32.

    Raises:
        ValueError: when the blob size does not match ``ncomp``.
    """
    expected = ATOM_SIDE**3 * ncomp * 4
    if len(blob) != expected:
        raise ValueError(
            f"blob of {len(blob)} bytes does not hold {ncomp}-component atom"
        )
    return np.frombuffer(blob, dtype=np.float32).reshape(
        (ATOM_SIDE,) * 3 + (ncomp,)
    )


def array_from_atoms(
    box: Box, atoms: Mapping[int, bytes] | Iterable[tuple[int, bytes]], ncomp: int
) -> np.ndarray:
    """Assemble the exact region ``box`` from atom records.

    ``atoms`` maps the zindex of each atom intersecting ``box`` to its
    blob.  Atoms that only partially overlap the box are trimmed.

    Raises:
        ValueError: if any grid point of ``box`` is not covered.
    """
    if not isinstance(atoms, Mapping):
        atoms = dict(atoms)
    out = np.full(box.shape + (ncomp,), np.nan, dtype=np.float32)
    for code, blob in atoms.items():
        abox = atom_box(code)
        overlap = abox.intersection(box)
        if overlap is None:
            continue
        block = blob_to_array(blob, ncomp)
        src = tuple(
            slice(o - a, o2 - a)
            for a, o, o2 in zip(abox.lo, overlap.lo, overlap.hi)
        )
        dst = tuple(
            slice(o - b, o2 - b)
            for b, o, o2 in zip(box.lo, overlap.lo, overlap.hi)
        )
        out[dst] = block[src]
    if np.isnan(out).any():
        raise ValueError("assembled region has uncovered grid points")
    return out
