"""Cutting fields into 8^3 database atoms and reassembling them.

Each timestep is "spatially subdivided into database atoms of size 8^3
... indexed by the time-step and the Morton code of its lower left
corner" (paper §2).  :func:`atomize` produces exactly those records;
:func:`array_from_atoms` reassembles any box from a set of atom blobs.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

import numpy as np

from repro.grid import ATOM_SIDE, Box, snap_to_atoms
from repro.morton import encode_array


def atomize(field: np.ndarray) -> Iterator[tuple[int, bytes]]:
    """Cut a full-domain field into ``(zindex, blob)`` atom records.

    ``field`` has shape ``(side, side, side, ncomp)`` (or 3-D for a
    scalar, treated as one component).  Blobs are C-order float32 bytes
    of shape ``(ATOM_SIDE,)*3 + (ncomp,)``, yielded in Morton order of
    their lower corner.

    The whole cut is vectorised: one reshape/transpose views the domain
    as an ``(atoms, ATOM_SIDE^3 * ncomp)`` array, the corner codes come
    from one :func:`~repro.morton.encode_array` call, and a single
    argsort yields the atoms in curve order — no per-atom Python Morton
    arithmetic.

    Raises:
        ValueError: if the domain is not an atom multiple or not cubic.
    """
    if field.ndim == 3:
        field = field[..., None]
    if field.ndim != 4:
        raise ValueError(f"expected 3-D or 4-D field, got shape {field.shape}")
    side = field.shape[0]
    if field.shape[:3] != (side, side, side):
        raise ValueError(f"field must be cubic, got shape {field.shape}")
    if side % ATOM_SIDE:
        raise ValueError(f"side {side} is not a multiple of {ATOM_SIDE}")
    data = np.ascontiguousarray(field, dtype=np.float32)
    na = side // ATOM_SIDE
    ncomp = data.shape[3]
    # (na, A, na, A, na, A, c) -> (na, na, na, A, A, A, c): every atom's
    # cells become one contiguous run, in the atom's own C order.
    blocks = data.reshape(
        na, ATOM_SIDE, na, ATOM_SIDE, na, ATOM_SIDE, ncomp
    ).transpose(0, 2, 4, 1, 3, 5, 6)
    flat = np.ascontiguousarray(blocks).reshape(
        na**3, ATOM_SIDE**3 * ncomp
    )
    ax, ay, az = np.meshgrid(
        np.arange(na), np.arange(na), np.arange(na), indexing="ij"
    )
    codes = encode_array(
        ax.ravel() * ATOM_SIDE, ay.ravel() * ATOM_SIDE, az.ravel() * ATOM_SIDE
    )
    for i in np.argsort(codes, kind="stable").tolist():
        yield int(codes[i]), flat[i].tobytes()


def blob_to_array(blob: bytes, ncomp: int) -> np.ndarray:
    """Decode one atom blob back to ``(ATOM_SIDE,)*3 + (ncomp,)`` float32.

    Raises:
        ValueError: when the blob size does not match ``ncomp``.
    """
    expected = ATOM_SIDE**3 * ncomp * 4
    if len(blob) != expected:
        raise ValueError(
            f"blob of {len(blob)} bytes does not hold {ncomp}-component atom"
        )
    return np.frombuffer(blob, dtype=np.float32).reshape(
        (ATOM_SIDE,) * 3 + (ncomp,)
    )


def array_from_atoms(
    box: Box, atoms: Mapping[int, bytes] | Iterable[tuple[int, bytes]], ncomp: int
) -> np.ndarray:
    """Assemble the exact region ``box`` from atom records.

    ``atoms`` maps the zindex of each atom intersecting ``box`` to its
    blob.  Atoms that only partially overlap the box are trimmed;
    surplus atoms that miss the box entirely are ignored.

    The assembly is vectorised over the whole *atom-aligned* region:
    the corner codes of every tile come from one
    :func:`~repro.morton.encode_array` call, their blobs are joined
    into a single float32 buffer, and one reshape/transpose interleaves
    the ``(tiles, cells)`` layout back into grid order — the requested
    box is then a plain slice.  No per-atom Python in the hot path.

    Raises:
        ValueError: if any grid point of ``box`` is not covered, or a
            blob's size does not match ``ncomp``.
    """
    if not isinstance(atoms, Mapping):
        atoms = dict(atoms)
    snapped = snap_to_atoms(box)
    nax, nay, naz = (span // ATOM_SIDE for span in snapped.shape)
    grid = np.meshgrid(
        np.arange(snapped.lo[0], snapped.hi[0], ATOM_SIDE),
        np.arange(snapped.lo[1], snapped.hi[1], ATOM_SIDE),
        np.arange(snapped.lo[2], snapped.hi[2], ATOM_SIDE),
        indexing="ij",
    )
    codes = encode_array(grid[0].ravel(), grid[1].ravel(), grid[2].ravel())
    try:
        tiles = [atoms[code] for code in codes.tolist()]
    except KeyError:
        raise ValueError("assembled region has uncovered grid points") from None
    tile_bytes = ATOM_SIDE**3 * ncomp * 4
    for tile in tiles:
        if len(tile) != tile_bytes:
            raise ValueError(
                f"blob of {len(tile)} bytes does not hold "
                f"{ncomp}-component atom"
            )
    stacked = np.frombuffer(b"".join(tiles), dtype=np.float32).reshape(
        nax, nay, naz, ATOM_SIDE, ATOM_SIDE, ATOM_SIDE, ncomp
    )
    # (tx, ty, tz, A, A, A, c) -> (tx, A, ty, A, tz, A, c): undo the
    # per-atom C order back into grid order, then slice the exact box.
    assembled = np.ascontiguousarray(
        stacked.transpose(0, 3, 1, 4, 2, 5, 6)
    ).reshape(snapped.shape + (ncomp,))
    trim = tuple(
        slice(b - a, b2 - a)
        for a, b, b2 in zip(snapped.lo, box.lo, box.hi)
    )
    return np.ascontiguousarray(assembled[trim])
