"""Spectral synthesis of divergence-free random turbulence fields.

A Gaussian random vector field with a prescribed energy spectrum is
built in Fourier space: independent complex Gaussian modes are scaled to
the target spectrum, projected onto the plane perpendicular to the
wavevector (making the field exactly solenoidal, like an incompressible
velocity or a magnetic field), and transformed back with a real inverse
FFT.  The default von Karman-style spectrum peaks at a controllable
wavenumber and decays fast, giving the intermittent-looking large-scale
structures whose extreme values threshold queries go hunting for.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


def von_karman_spectrum(peak_k: float = 4.0) -> Callable[[np.ndarray], np.ndarray]:
    """Energy spectrum E(k) ~ k^4 exp(-2 (k/k0)^2), peaked near ``peak_k``."""
    if peak_k <= 0:
        raise ValueError("peak_k must be positive")

    def spectrum(k: np.ndarray) -> np.ndarray:
        return np.power(k, 4) * np.exp(-2.0 * np.square(k / peak_k))

    return spectrum


def _wavevectors(side: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Integer wavevector components on the rfft grid of a cubic domain."""
    k1 = np.fft.fftfreq(side, d=1.0 / side)
    kz = np.fft.rfftfreq(side, d=1.0 / side)
    return np.meshgrid(k1, k1, kz, indexing="ij")


def solenoidal_field(
    side: int,
    seed: int = 0,
    spectrum: Callable[[np.ndarray], np.ndarray] | None = None,
    rms: float = 1.0,
    dtype: np.dtype = np.float32,
) -> np.ndarray:
    """A random divergence-free vector field of shape ``(side, side, side, 3)``.

    Args:
        side: grid points per edge (any positive even number).
        seed: RNG seed — the same seed always yields the same field.
        spectrum: energy spectrum E(k); defaults to
            :func:`von_karman_spectrum` peaked at ``side / 16`` (so the
            energetic scales stay well resolved at any grid size).
        rms: target root-mean-square of the field's magnitude.
        dtype: output dtype (float32 matches the stored datasets).

    Raises:
        ValueError: on a non-positive or odd side.
    """
    if side <= 0 or side % 2:
        raise ValueError(f"side must be positive and even, got {side}")
    if spectrum is None:
        spectrum = von_karman_spectrum(peak_k=max(2.0, side / 16.0))

    rng = np.random.default_rng(seed)
    kx, ky, kz = _wavevectors(side)
    k_mag = np.sqrt(kx**2 + ky**2 + kz**2)

    # Independent complex Gaussian modes for each component.
    shape = k_mag.shape + (3,)
    modes = rng.normal(size=shape) + 1j * rng.normal(size=shape)

    # Amplitude per mode: |u(k)|^2 ~ E(k) / (4 pi k^2) (shell average).
    with np.errstate(divide="ignore", invalid="ignore"):
        amplitude = np.sqrt(spectrum(k_mag) / (4.0 * np.pi * np.square(k_mag)))
    amplitude[k_mag == 0] = 0.0  # no mean flow
    # Zero the Nyquist planes: their modes are self-conjugate under the
    # real FFT, which silently breaks the solenoidal projection.
    nyquist = side // 2
    amplitude[(np.abs(kx) == nyquist) | (np.abs(ky) == nyquist) | (kz == nyquist)] = 0.0
    modes *= amplitude[..., None]

    # Solenoidal projection: u_perp = u - (u . k_hat) k_hat.
    with np.errstate(divide="ignore", invalid="ignore"):
        k_hat = np.stack([kx, ky, kz], axis=-1) / k_mag[..., None]
    k_hat[k_mag == 0] = 0.0
    parallel = np.sum(modes * k_hat, axis=-1, keepdims=True)
    modes -= parallel * k_hat

    field = np.stack(
        [
            np.fft.irfftn(modes[..., comp], s=(side, side, side), axes=(0, 1, 2))
            for comp in range(3)
        ],
        axis=-1,
    )

    measured_rms = np.sqrt(np.mean(np.sum(field**2, axis=-1)))
    if measured_rms > 0:
        field *= rms / measured_rms
    return field.astype(dtype)
