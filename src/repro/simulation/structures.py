"""Localized intense vortex structures ("worms").

Real turbulence is intermittent: the vorticity PDF has a long tail
carried by thin intense vortex tubes, and it is exactly those structures
threshold queries go hunting for (paper §3, Figs. 3-4).  A Gaussian
random field has no such tail — its maxima sit at ~3x RMS — so the
synthetic datasets superpose compact vortex blobs on the spectral
background.

Each blob is the curl of a Gaussian vector potential, so it is exactly
divergence-free:

    A(x) = p * G(|x - c|),   G(s) = exp(-s^2 / (2 r^2))
    u(x) = curl A = (G / r^2) * (p x (x - c))

with peak vorticity ``2 |p| / r^2`` at the centre.  Blobs drift with a
constant velocity and live through a ``sin`` amplitude envelope between
a birth and a death step, so a blob "develops from nothing" within the
stored timespan and persists across neighbouring steps — the behaviour
the paper's 4-D cluster analysis observes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class StructureParams:
    """Population of intense structures added to a vector field.

    Attributes:
        count: number of blobs.
        radius: blob radius in grid units.
        peak_multiple: target peak vorticity as a multiple of the
            background vorticity RMS.
        drift: maximum centre drift per timestep, grid units.
    """

    count: int = 6
    radius: float = 2.5
    peak_multiple: float = 10.0
    drift: float = 1.5

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("count must be non-negative")
        if self.radius <= 0:
            raise ValueError("radius must be positive")
        if self.peak_multiple <= 0:
            raise ValueError("peak_multiple must be positive")


@dataclass(frozen=True)
class _Blob:
    center: tuple[float, float, float]
    velocity: tuple[float, float, float]
    axis: tuple[float, float, float]  # unit direction of the potential
    birth: float
    death: float


def _make_blobs(
    params: StructureParams, timesteps: int, rng: np.random.Generator, side: int
) -> list[_Blob]:
    blobs = []
    for index in range(params.count):
        axis = rng.normal(size=3)
        axis /= np.linalg.norm(axis)
        if index == 0:
            # One long-lived structure guarantees an intense tail in
            # every stored timestep; the rest are born and die within
            # (or around) the stored window.
            birth, death = -float(timesteps), 2.0 * timesteps
        else:
            birth = float(rng.uniform(-0.5, max(0.5, timesteps * 0.5)))
            death = birth + float(rng.uniform(timesteps * 0.5, timesteps * 1.5))
        blobs.append(
            _Blob(
                center=tuple(rng.uniform(0, side, size=3)),
                velocity=tuple(rng.uniform(-params.drift, params.drift, size=3)),
                axis=tuple(axis),
                birth=birth,
                death=death,
            )
        )
    return blobs


def add_structures(
    field: np.ndarray,
    timestep: int,
    params: StructureParams,
    timesteps: int,
    seed: int,
    spacing: float,
    background_vorticity_rms: float,
) -> np.ndarray:
    """Return ``field`` plus the structure population at ``timestep``.

    ``field`` has shape ``(side, side, side, 3)``; the returned array is
    a new float array of the same shape.  Deterministic in ``seed``.
    """
    side = field.shape[0]
    rng = np.random.default_rng(seed)
    blobs = _make_blobs(params, timesteps, rng, side)
    out = field.astype(np.float64, copy=True)

    radius_phys = params.radius * spacing
    # |p| chosen so the blob's peak vorticity is peak_multiple x RMS.
    moment_scale = (
        params.peak_multiple * background_vorticity_rms * radius_phys**2 / 2.0
    )

    coords = np.arange(side, dtype=np.float64)
    for blob in blobs:
        envelope = _envelope(timestep, blob.birth, blob.death)
        if envelope <= 0.0:
            continue
        center = [
            (c + v * timestep) % side
            for c, v in zip(blob.center, blob.velocity)
        ]
        # Minimal-image displacements, in physical units.
        rel = [
            (((coords - c) + side / 2) % side - side / 2) * spacing
            for c in center
        ]
        dx, dy, dz = np.meshgrid(*rel, indexing="ij")
        gauss = np.exp(
            -(dx**2 + dy**2 + dz**2) / (2.0 * radius_phys**2)
        )
        p = envelope * moment_scale * np.asarray(blob.axis)
        # u = (G / r^2) * (p x (x - c))
        factor = gauss / radius_phys**2
        out[..., 0] += factor * (p[1] * dz - p[2] * dy)
        out[..., 1] += factor * (p[2] * dx - p[0] * dz)
        out[..., 2] += factor * (p[0] * dy - p[1] * dx)
    return out


def _envelope(timestep: float, birth: float, death: float) -> float:
    """Sinusoidal grow-and-die amplitude between birth and death."""
    if not birth <= timestep <= death or death <= birth:
        return 0.0
    phase = (timestep - birth) / (death - birth)
    return float(np.sin(np.pi * phase))
