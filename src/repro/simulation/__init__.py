"""Synthetic numerical-simulation datasets.

The paper's experiments run against the JHTDB's 1024^3 forced isotropic
turbulence and magnetohydrodynamics datasets — multi-terabyte archives
that cannot ship with a reproduction.  This package synthesises
statistically realistic stand-ins: divergence-free Gaussian random
fields with a prescribed turbulence-like energy spectrum, evolved
smoothly across timesteps so that intense structures persist in time
(which the 4-D clustering of Fig. 3 depends on).

* :mod:`~repro.simulation.spectral` — solenoidal random field synthesis.
* :mod:`~repro.simulation.datasets` — isotropic / MHD / channel dataset
  generators with multi-timestep evolution.
* :mod:`~repro.simulation.ingest` — cutting fields into 8^3 atoms and
  back.
"""

from repro.simulation.spectral import solenoidal_field, von_karman_spectrum
from repro.simulation.datasets import (
    DatasetSpec,
    SyntheticDataset,
    channel_dataset,
    isotropic_dataset,
    mhd_dataset,
)
from repro.simulation.ingest import atomize, blob_to_array, array_from_atoms
from repro.simulation.io import StoredDataset, load_dataset, save_dataset

__all__ = [
    "StoredDataset",
    "load_dataset",
    "save_dataset",
    "DatasetSpec",
    "SyntheticDataset",
    "array_from_atoms",
    "atomize",
    "blob_to_array",
    "channel_dataset",
    "isotropic_dataset",
    "mhd_dataset",
    "solenoidal_field",
    "von_karman_spectrum",
]
