"""Figure 7: scale-up (processes per node) and scale-out (node count).

Fig. 7(a): speedup of cold-cache threshold queries with 1-8 processes
per node on a 4-node cluster — near 2x at two processes, ~2.6x at four,
flattening at eight (compute scales, shared-disk I/O does not, halo
redundancy grows).

Fig. 7(b): speedup with 1-8 nodes, one process each — nearly linear, as
each node owns a proportionally smaller share of the data.
"""

from __future__ import annotations

from repro.core import ThresholdQuery
from repro.costmodel import Category
from repro.harness.common import (
    ExperimentConfig,
    ExperimentReport,
    threshold_levels,
)

PROCESS_COUNTS = (1, 2, 4, 8)
NODE_COUNTS = (1, 2, 4, 8)

#: Approximate speedups read off the paper's Fig. 7(a) at the medium level.
PAPER_SCALEUP = {1: 1.0, 2: 1.95, 4: 2.6, 8: 2.7}


def run_scaleup(
    config: ExperimentConfig | None = None, timestep: int = 0
) -> ExperimentReport:
    """Reproduce Fig. 7(a): 1-8 processes per node, cold cache."""
    config = config or ExperimentConfig()
    dataset, mediator = config.make_cluster()
    levels = threshold_levels(dataset, "vorticity", timestep)

    rows = []
    baselines: dict[str, float] = {}
    for processes in PROCESS_COUNTS:
        row: list[object] = [processes]
        for level in ("low", "medium", "high"):
            query = ThresholdQuery("mhd", "vorticity", timestep, levels[level])
            mediator.drop_cache_entries("mhd", "vorticity", timestep)
            mediator.drop_page_caches()
            result = mediator.threshold(query, processes=processes)
            server_time = result.elapsed
            if processes == 1:
                baselines[level] = server_time
            row.append(f"{baselines[level] / server_time:.2f}x")
        row.append(f"{PAPER_SCALEUP[processes]:.2f}x")
        rows.append(row)

    return ExperimentReport(
        title="Fig. 7(a) -- scale-up speedup vs processes per node "
        f"({config.nodes}-node cluster)",
        headers=["processes", "low", "medium", "high", "paper (~)"],
        rows=rows,
        notes=[
            "speedup of cold-cache evaluation relative to 1 process/node",
            "shape to match: ~2x at 2, ~2.6x at 4, flat at 8 (I/O bound)",
        ],
    )


def run_scaleout(
    config: ExperimentConfig | None = None, timestep: int = 0
) -> ExperimentReport:
    """Reproduce Fig. 7(b): 1-8 nodes, single process per node."""
    config = config or ExperimentConfig()
    rows = []
    baselines: dict[str, float] = {}
    for nodes in NODE_COUNTS:
        dataset, mediator = config.make_cluster(nodes=nodes)
        levels = threshold_levels(dataset, "vorticity", timestep)
        row: list[object] = [nodes]
        for level in ("low", "medium", "high"):
            query = ThresholdQuery("mhd", "vorticity", timestep, levels[level])
            mediator.drop_cache_entries("mhd", "vorticity", timestep)
            mediator.drop_page_caches()
            result = mediator.threshold(query, processes=1)
            # User-transfer time is constant across cluster sizes and
            # would mask the node scaling for large result sets.
            server_time = result.elapsed - result.ledger[Category.MEDIATOR_USER]
            if nodes == 1:
                baselines[level] = server_time
            row.append(f"{baselines[level] / server_time:.2f}x")
        row.append(f"{nodes}.00x")
        rows.append(row)

    return ExperimentReport(
        title="Fig. 7(b) -- scale-out speedup vs node count (1 process/node)",
        headers=["nodes", "low", "medium", "high", "linear"],
        rows=rows,
        notes=[
            "speedup of cold-cache server-side evaluation relative to 1 node",
            "shape to match: nearly perfect linear speedup",
        ],
    )
