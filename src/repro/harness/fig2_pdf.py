"""Figure 2: probability density function of the vorticity norm.

The paper shows per-bin point counts (log scale) for a representative
MHD timestep in 10 bins of width 10 plus an open-ended final bin.  The
synthetic field's amplitude differs from the production run, so the bins
here span [0, 10 x RMS) in ten equal steps with the same open final bin;
the *shape* to reproduce is the monotone, roughly log-linear decay over
several decades with a long tail.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import norm_rms
from repro.cluster import Mediator
from repro.core import PdfQuery
from repro.harness.common import (
    ExperimentConfig,
    ExperimentReport,
    ground_truth_norm,
)
from repro.simulation.datasets import SyntheticDataset


def run(
    config: ExperimentConfig | None = None,
    prebuilt: tuple[SyntheticDataset, Mediator] | None = None,
    timestep: int = 0,
) -> ExperimentReport:
    """Reproduce Fig. 2 and return the per-bin counts."""
    config = config or ExperimentConfig()
    dataset, mediator = prebuilt or config.make_cluster()

    rms = norm_rms(ground_truth_norm(dataset, "vorticity", timestep))
    edges = tuple(np.linspace(0.0, 10.0 * rms, 11))
    result = mediator.pdf(
        PdfQuery("mhd", "vorticity", timestep, edges),
        processes=config.processes,
    )

    rows = []
    for i, count in enumerate(result.counts):
        lo = edges[i]
        hi = edges[i + 1] if i + 1 < len(edges) else float("inf")
        label = f"[{lo:.1f}, {hi:.1f})" if np.isfinite(hi) else f"[{lo:.1f}, ..)"
        rows.append([label, int(count)])

    report = ExperimentReport(
        title="Fig. 2 -- PDF of the vorticity norm (MHD, one timestep)",
        headers=["vorticity norm bin", "number of points"],
        rows=rows,
        notes=[
            f"grid {config.side}^3, RMS vorticity {rms:.2f}; paper bins were "
            "absolute [0,10)..[90,..) on the production field",
            f"query ran in {result.ledger.total:.2f} simulated seconds",
        ],
    )
    return report
