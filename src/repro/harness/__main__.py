"""Run every paper-figure experiment and print the reports.

Usage::

    python -m repro.harness                 # default 64^3 configuration
    REPRO_BENCH_SIDE=128 python -m repro.harness
    python -m repro.harness fig8 table1     # a subset by name
"""

from __future__ import annotations

import sys

from repro.harness import fig2_pdf, fig3_fig4, fig7, fig8, fig9, local_vs_integrated, table1_fig6
from repro.harness.common import ExperimentConfig
from repro.obs import Stopwatch, report

EXPERIMENTS = {
    "fig2": lambda config: fig2_pdf.run(config),
    "fig3_fig4": lambda config: fig3_fig4.run(config),
    "table1": lambda config: table1_fig6.run(config),
    "fig7a": lambda config: fig7.run_scaleup(config),
    "fig7b": lambda config: fig7.run_scaleout(config),
    "fig8": lambda config: fig8.run(config),
    "fig9": lambda config: fig9.run(config),
    "local_vs_integrated": lambda config: local_vs_integrated.run(config),
}


def main(argv: list[str]) -> int:
    wanted = argv or list(EXPERIMENTS)
    unknown = [name for name in wanted if name not in EXPERIMENTS]
    if unknown:
        report(f"unknown experiments: {unknown}; known: {list(EXPERIMENTS)}")
        return 2
    config = ExperimentConfig()
    report(
        f"configuration: {config.side}^3 grid, {config.timesteps} timesteps, "
        f"{config.nodes} nodes x {config.processes} processes "
        "(simulated seconds are paper-scale; see EXPERIMENTS.md)\n"
    )
    for name in wanted:
        with Stopwatch() as watch:
            rendered = EXPERIMENTS[name](config)
        report(rendered)
        report(f"[{name} regenerated in {watch.elapsed:.1f} s wall]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
