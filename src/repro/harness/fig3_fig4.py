"""Figures 3 and 4: intense-event extraction and 4-D clustering.

Fig. 4 shows every point above 7x the RMS vorticity in one timestep
(~2.4x10^5 points at 1024^3, i.e. ~0.02% of the grid).  Fig. 3 shows a
3-D cut through the 4-D friends-of-friends cluster containing the most
intense event, traced across timesteps.  The qualitative findings to
reproduce: intense points are a tiny fraction of the grid, they form a
small number of coherent clusters ("worms"), and the most intense
cluster persists across neighbouring timesteps.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import friends_of_friends_4d, norm_rms
from repro.core import ThresholdQuery
from repro.harness.common import (
    ExperimentConfig,
    ExperimentReport,
    ground_truth_norm,
)


def run(
    config: ExperimentConfig | None = None,
    rms_multiple: float = 7.0,
    linking_length: int = 2,
) -> ExperimentReport:
    """Threshold every timestep at ``rms_multiple`` x RMS, cluster in 4-D."""
    config = config or ExperimentConfig()
    dataset, mediator = config.make_cluster()

    all_t = []
    all_coords = []
    all_values = []
    per_step_counts = []
    for timestep in range(dataset.spec.timesteps):
        rms = norm_rms(ground_truth_norm(dataset, "vorticity", timestep))
        result = mediator.threshold(
            ThresholdQuery("mhd", "vorticity", timestep, rms_multiple * rms),
            processes=config.processes,
        )
        per_step_counts.append(len(result))
        if len(result):
            coords = result.coordinates()
            all_t.append(np.full(len(result), timestep))
            all_coords.append(coords)
            all_values.append(result.values)

    timesteps = np.concatenate(all_t) if all_t else np.empty(0, int)
    coords = (
        np.concatenate(all_coords) if all_coords else np.empty((0, 3), int)
    )
    values = np.concatenate(all_values) if all_values else np.empty(0)

    clusters = friends_of_friends_4d(
        timesteps, coords, values, side=dataset.spec.side,
        linking_length=linking_length, min_size=2,
    )

    rows = []
    for timestep, count in enumerate(per_step_counts):
        fraction = count / dataset.spec.points_per_timestep
        rows.append(
            ["points above threshold", f"t={timestep}", count, f"{fraction:.4%}"]
        )
    rows.append(["4-D clusters (size >= 2)", "all", len(clusters), ""])
    for rank, cluster in enumerate(clusters[:3], start=1):
        rows.append(
            [
                f"cluster #{rank}",
                f"t={cluster.timesteps}",
                cluster.size,
                f"peak {cluster.peak_value:.2f}",
            ]
        )

    notes = [
        f"threshold at {rms_multiple} x RMS vorticity, 4-D FoF linking "
        f"length {linking_length}",
        "paper Fig. 4: ~2.4e5 of 1024^3 points (0.02%) above 7 x RMS",
    ]
    if clusters:
        most_intense = max(clusters, key=lambda c: c.peak_value)
        notes.append(
            f"most intense event sits in a cluster of {most_intense.size} "
            f"points spanning timesteps {most_intense.timesteps} "
            "(paper Fig. 3: the peak cluster persists across steps)"
        )
    return ExperimentReport(
        title="Fig. 3 / Fig. 4 -- intense vorticity events and 4-D clusters",
        headers=["series", "where", "count", "detail"],
        rows=rows,
        notes=notes,
    )
