"""Shared experiment configuration, threshold selection and reporting."""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.cluster import Mediator, build_cluster
from repro.costmodel import ClusterSpec, paper_cluster, paper_scale_spec
from repro.fields import curl_periodic, gradient_tensor_periodic
from repro.fields.operators import (
    q_criterion_from_gradient,
    r_invariant_from_gradient,
)
from repro.simulation import mhd_dataset
from repro.simulation.datasets import SyntheticDataset

#: The paper's threshold selectivities (fraction of the 1024^3 grid above
#: threshold): 4,247 / 86,580 / 909,274 points (§5.2).
PAPER_FRACTIONS = {
    "high": 4247 / 1024**3,
    "medium": 86580 / 1024**3,
    "low": 909274 / 1024**3,
}

#: The paper's matching absolute counts, for side-by-side reporting.
PAPER_POINT_COUNTS = {"high": 4247, "medium": 86580, "low": 909274}

#: Table 1 of the paper: average running times in seconds.
PAPER_TABLE1 = {
    "high": {"no_cache": 97.1, "miss": 100.2, "hit": 0.5},
    "medium": {"no_cache": 113.7, "miss": 115.9, "hit": 1.2},
    "low": {"no_cache": 111.6, "miss": 115.0, "hit": 9.1},
}


@dataclass
class ExperimentConfig:
    """Knobs shared by every experiment.

    The default 64^3 grid keeps each experiment to seconds of wall time;
    set the ``REPRO_BENCH_SIDE`` environment variable (e.g. 128) for a
    closer-to-production run.
    """

    side: int = int(os.environ.get("REPRO_BENCH_SIDE", "64"))
    timesteps: int = int(os.environ.get("REPRO_BENCH_TIMESTEPS", "4"))
    nodes: int = 4
    processes: int = 4
    seed: int = 11
    spec: ClusterSpec | None = None

    def __post_init__(self) -> None:
        if self.spec is None:
            # Charge paper-scale seconds: each byte of the small grid
            # stands for (1024/side)^3 bytes of the production grid, so
            # the reported simulated seconds compare directly with the
            # paper's tables (see costmodel.paper_scale_spec).
            self.spec = paper_scale_spec(self.side)

    def make_dataset(self) -> SyntheticDataset:
        """The MHD dataset this configuration describes."""
        return mhd_dataset(side=self.side, timesteps=self.timesteps, seed=self.seed)

    def make_cluster(
        self, nodes: int | None = None, **kwargs
    ) -> tuple[SyntheticDataset, Mediator]:
        """Build and load a cluster for this configuration."""
        dataset = self.make_dataset()
        kwargs.setdefault("sequential_scatter", True)  # deterministic sims
        kwargs.setdefault("spec", self.spec)
        mediator = build_cluster(dataset, nodes=nodes or self.nodes, **kwargs)
        return dataset, mediator

    @property
    def paper_scale_factor(self) -> float:
        """Volume ratio to the paper's 1024^3 grids, for projections."""
        return (1024 / self.side) ** 3


@dataclass
class ExperimentReport:
    """A reproduced table/figure: headers, rows and commentary."""

    title: str
    headers: list[str]
    rows: list[list[object]]
    notes: list[str] = field(default_factory=list)

    def __str__(self) -> str:
        widths = [
            max(len(str(cell)) for cell in [header] + [row[i] for row in self.rows])
            for i, header in enumerate(self.headers)
        ]
        lines = [self.title, "=" * len(self.title)]
        lines.append(
            "  ".join(str(h).ljust(w) for h, w in zip(self.headers, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def row_dict(self, key_column: int = 0) -> dict:
        """Rows keyed by the given column, for programmatic checks."""
        return {row[key_column]: row for row in self.rows}


def ground_truth_norm(
    dataset: SyntheticDataset, fieldname: str, timestep: int, order: int = 4
) -> np.ndarray:
    """Exact norm field used to pick thresholds (harness-side shortcut)."""
    spacing = dataset.spec.spacing
    if fieldname == "vorticity":
        velocity = dataset.field_array("velocity", timestep).astype(np.float64)
        return np.linalg.norm(curl_periodic(velocity, spacing, order), axis=-1)
    if fieldname == "q_criterion":
        velocity = dataset.field_array("velocity", timestep).astype(np.float64)
        gradient = gradient_tensor_periodic(velocity, spacing, order)
        return np.abs(q_criterion_from_gradient(gradient))
    if fieldname == "r_invariant":
        velocity = dataset.field_array("velocity", timestep).astype(np.float64)
        gradient = gradient_tensor_periodic(velocity, spacing, order)
        return np.abs(r_invariant_from_gradient(gradient))
    if fieldname == "electric_current":
        magnetic = dataset.field_array("magnetic", timestep).astype(np.float64)
        return np.linalg.norm(curl_periodic(magnetic, spacing, order), axis=-1)
    if fieldname in ("magnetic", "velocity"):
        raw = dataset.field_array(fieldname, timestep).astype(np.float64)
        return np.linalg.norm(raw, axis=-1)
    if fieldname == "pressure":
        return np.abs(dataset.field_array("pressure", timestep)[..., 0])
    raise ValueError(f"no ground truth for field {fieldname!r}")


def threshold_levels(
    dataset: SyntheticDataset, fieldname: str, timestep: int
) -> dict[str, float]:
    """Thresholds matching the paper's high/medium/low selectivities."""
    norm = ground_truth_norm(dataset, fieldname, timestep)
    return {
        level: float(np.quantile(norm, 1.0 - fraction))
        for level, fraction in PAPER_FRACTIONS.items()
    }


def fmt(seconds: float) -> str:
    """Compact human-readable seconds."""
    if seconds >= 3600:
        return f"{seconds / 3600:.1f} h"
    if seconds >= 100:
        return f"{seconds:.0f} s"
    if seconds >= 1:
        return f"{seconds:.1f} s"
    return f"{seconds * 1000:.0f} ms"
