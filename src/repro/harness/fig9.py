"""Figure 9: execution-time breakdown per field, cache miss and hit.

Six panels: vorticity, Q-criterion and magnetic field, each on a cold
cache (a-c) and a warm cache (d-f), at three threshold levels, broken
down into cache lookup / I/O / compute / mediator-DB / mediator-user
time.  Shapes to reproduce (paper §5.4):

* Q-criterion compute > vorticity compute (all 9 gradient components,
  non-linear combination), with equal I/O;
* magnetic field: no compute to speak of, less I/O (no halo — its
  kernel is a single point);
* cache lookups negligible even on hits (SSD + clustered index);
* on hits the result transfer to the user dominates, and totals drop by
  over an order of magnitude for every field.
"""

from __future__ import annotations

from repro.core import ThresholdQuery
from repro.costmodel import Category
from repro.harness.common import (
    ExperimentConfig,
    ExperimentReport,
    ground_truth_norm,
    threshold_levels,
)

FIELDS = ("vorticity", "q_criterion", "magnetic")


def run(
    config: ExperimentConfig | None = None, timestep: int = 0
) -> ExperimentReport:
    """Reproduce Fig. 9(a)-(f): per-field breakdowns on miss and hit."""
    config = config or ExperimentConfig()
    dataset, mediator = config.make_cluster()

    rows = []
    for fieldname in FIELDS:
        levels = threshold_levels(dataset, fieldname, timestep)
        for level in ("high", "medium", "low"):
            query = ThresholdQuery(
                "mhd", fieldname, timestep, levels[level]
            )
            mediator.drop_cache_entries("mhd", fieldname, timestep)
            mediator.drop_page_caches()
            miss = mediator.threshold(query, processes=config.processes)
            mediator.drop_page_caches()
            hit = mediator.threshold(query, processes=config.processes)
            assert hit.cache_hits == len(mediator.nodes)
            for kind, result in (("miss", miss), ("hit", hit)):
                ledger = result.ledger
                rows.append(
                    [
                        fieldname,
                        level,
                        kind,
                        len(result),
                        f"{ledger[Category.CACHE_LOOKUP]:.3f}",
                        f"{ledger[Category.IO]:.2f}",
                        f"{ledger[Category.COMPUTE]:.2f}",
                        f"{ledger[Category.MEDIATOR_DB]:.3f}",
                        f"{ledger[Category.MEDIATOR_USER]:.3f}",
                        f"{ledger.total:.2f}",
                    ]
                )

    return ExperimentReport(
        title="Fig. 9 -- execution-time breakdown by field, threshold "
        "level and cache state (simulated seconds)",
        headers=[
            "field",
            "level",
            "cache",
            "points",
            "lookup",
            "I/O",
            "compute",
            "med-DB",
            "med-user",
            "total",
        ],
        rows=rows,
        notes=[
            "shapes to match: q_criterion compute > vorticity at equal I/O;"
            " magnetic ~ no compute and less I/O (single-point kernel);"
            " hits dominated by user transfer; >=10x total speedup on hits",
        ],
    )
