"""Experiment harness: one module per table/figure of the paper.

Every experiment follows the same pattern: build (or reuse) a cluster
sized by :class:`~repro.harness.common.ExperimentConfig`, run the
paper's query protocol, and return an
:class:`~repro.harness.common.ExperimentReport` whose rows mirror the
paper's table/figure series.  Reports print as plain-text tables and are
written to ``benchmarks/results/`` by the benchmark suite.

Experiments (paper reference in parentheses):

* :mod:`~repro.harness.fig2_pdf` — vorticity-norm PDF (Fig. 2)
* :mod:`~repro.harness.fig3_fig4` — intense points + 4-D FoF clusters
  (Fig. 3, Fig. 4)
* :mod:`~repro.harness.table1_fig6` — cache effectiveness (Table 1, Fig. 6)
* :mod:`~repro.harness.fig7` — scale-up and scale-out (Fig. 7a, 7b)
* :mod:`~repro.harness.fig8` — total vs I/O-only time (Fig. 8)
* :mod:`~repro.harness.fig9` — execution-time breakdowns (Fig. 9a-f)
* :mod:`~repro.harness.local_vs_integrated` — §5.3's 20-hour story
"""

from repro.harness.common import (
    PAPER_FRACTIONS,
    PAPER_POINT_COUNTS,
    ExperimentConfig,
    ExperimentReport,
    threshold_levels,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentReport",
    "PAPER_FRACTIONS",
    "PAPER_POINT_COUNTS",
    "threshold_levels",
]
