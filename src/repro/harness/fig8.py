"""Figure 8: total running time vs the time to perform the I/O only.

The paper runs the medium-threshold query with 1-8 processes per node
and compares against the same runs with the kernel computation and
thresholding disabled.  The shapes to reproduce: I/O is about half of
the single-process total; I/O time shrinks only modestly with more
processes (shared disk arrays); and the 4-8-process total is about equal
to the single-process I/O-only time.
"""

from __future__ import annotations

from repro.core import ThresholdQuery
from repro.harness.common import (
    ExperimentConfig,
    ExperimentReport,
    threshold_levels,
)

PROCESS_COUNTS = (1, 2, 4, 8)

#: Fig. 8 read off the paper (seconds): total and I/O-only per process count.
PAPER_FIG8 = {1: (260, 130), 2: (160, 95), 4: (105, 85), 8: (95, 75)}


def run(
    config: ExperimentConfig | None = None, timestep: int = 0
) -> ExperimentReport:
    """Reproduce Fig. 8 on the medium-selectivity vorticity query."""
    config = config or ExperimentConfig()
    dataset, mediator = config.make_cluster()
    threshold = threshold_levels(dataset, "vorticity", timestep)["medium"]
    query = ThresholdQuery("mhd", "vorticity", timestep, threshold)

    rows = []
    for processes in PROCESS_COUNTS:
        mediator.drop_cache_entries("mhd", "vorticity", timestep)
        mediator.drop_page_caches()
        total = mediator.threshold(query, processes=processes, use_cache=False)

        mediator.drop_page_caches()
        io_only = mediator.threshold(
            query, processes=processes, use_cache=False, io_only=True
        )
        paper_total, paper_io = PAPER_FIG8[processes]
        rows.append(
            [
                processes,
                f"{total.elapsed:.1f}",
                f"{io_only.elapsed:.1f}",
                f"{io_only.elapsed / total.elapsed:.0%}",
                f"{paper_total}/{paper_io}",
            ]
        )

    return ExperimentReport(
        title="Fig. 8 -- total vs I/O-only time by processes per node "
        "(medium threshold, simulated seconds)",
        headers=["processes", "total", "I/O only", "I/O share", "paper (~t/io)"],
        rows=rows,
        notes=[
            "shapes to match: I/O ~ half the 1-process total; I/O shrinks "
            "modestly with processes; total at 4-8 procs ~ I/O-only at 1",
        ],
    )
