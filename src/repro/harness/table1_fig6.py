"""Table 1 / Figure 6: effectiveness of the application-aware cache.

Protocol (paper §5.2): for thresholds at the paper's high/medium/low
selectivities, measure

* **no cache** — evaluation from the raw data with caching disabled;
* **cache miss** — caching enabled, but the timestep's entries dropped
  before the run (the cache holds unrelated entries);
* **cache hit** — the cache warmed by the same query, then polluted with
  unrelated queries, then the original query re-issued.

The paper's claims to reproduce: miss overhead under ~3%, and hits over
an order of magnitude faster than misses.
"""

from __future__ import annotations

from repro.cluster import Mediator
from repro.core import ThresholdQuery
from repro.harness.common import (
    PAPER_POINT_COUNTS,
    PAPER_TABLE1,
    ExperimentConfig,
    ExperimentReport,
    threshold_levels,
)
from repro.simulation.datasets import SyntheticDataset


def run(
    config: ExperimentConfig | None = None,
    prebuilt: tuple[SyntheticDataset, Mediator] | None = None,
    timestep: int = 0,
) -> ExperimentReport:
    """Reproduce Table 1 / Fig. 6; returns one row per threshold level."""
    config = config or ExperimentConfig()
    dataset, mediator = prebuilt or config.make_cluster()
    levels = threshold_levels(dataset, "vorticity", timestep)
    pollution_timestep = (timestep + 1) % dataset.spec.timesteps

    rows = []
    for level in ("high", "medium", "low"):
        threshold = levels[level]
        query = ThresholdQuery("mhd", "vorticity", timestep, threshold)

        # No cache: caching disabled entirely, cold pages.
        mediator.drop_page_caches()
        no_cache = mediator.threshold(
            query, processes=config.processes, use_cache=False
        )

        # Cache miss: entries for this timestep dropped first.
        mediator.drop_cache_entries("mhd", "vorticity", timestep)
        mediator.drop_page_caches()
        miss = mediator.threshold(query, processes=config.processes)
        assert miss.cache_hits == 0

        # Pollute with unrelated queries, then re-issue: cache hit.
        pollution = ThresholdQuery(
            "mhd", "vorticity", pollution_timestep, levels["medium"]
        )
        mediator.threshold(pollution, processes=config.processes)
        mediator.drop_page_caches()
        hit = mediator.threshold(query, processes=config.processes)
        assert hit.cache_hits == len(mediator.nodes)

        paper = PAPER_TABLE1[level]
        rows.append(
            [
                level,
                f"{threshold:.2f}",
                len(no_cache),
                f"{no_cache.elapsed:.2f}",
                f"{miss.elapsed:.2f}",
                f"{hit.elapsed:.3f}",
                f"{miss.elapsed / hit.elapsed:.0f}x",
                f"{paper['no_cache']:.1f}/{paper['miss']:.1f}/{paper['hit']:.1f}",
            ]
        )

    return ExperimentReport(
        title="Table 1 / Fig. 6 -- cache effectiveness (simulated seconds)",
        headers=[
            "level",
            "threshold",
            "points",
            "no cache",
            "miss",
            "hit",
            "hit speedup",
            "paper (nc/miss/hit)",
        ],
        rows=rows,
        notes=[
            f"grid {config.side}^3 on {config.nodes} nodes x "
            f"{config.processes} processes; paper ran 1024^3 (point counts "
            f"{PAPER_POINT_COUNTS['high']}/{PAPER_POINT_COUNTS['medium']}/"
            f"{PAPER_POINT_COUNTS['low']} at the same selectivities)",
            "shape to match: miss within a few % of no-cache; hit >=10x faster",
        ],
    )
