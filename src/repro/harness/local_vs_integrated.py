"""Section 5.3's headline comparison: integrated vs local evaluation.

A collaborator's local evaluation of one timestep's threshold query took
over 20 hours: the velocity gradient (9 components, XML-wrapped) had to
cross the WAN subregion by subregion before thresholding discarded
nearly all of it.  The integrated evaluation answers in about two
minutes, and a cache hit in seconds.  The shape to reproduce is the
orders-of-magnitude ladder: local >> integrated (cold) >> cache hit.
"""

from __future__ import annotations

import numpy as np

from repro.client import local_threshold_evaluation
from repro.core import ThresholdQuery
from repro.harness.common import (
    ExperimentConfig,
    ExperimentReport,
    fmt,
    threshold_levels,
)


def run(
    config: ExperimentConfig | None = None, timestep: int = 0
) -> ExperimentReport:
    """Compare integrated, cache-hit and local evaluation of one query."""
    config = config or ExperimentConfig()
    dataset, mediator = config.make_cluster()
    threshold = threshold_levels(dataset, "vorticity", timestep)["medium"]
    query = ThresholdQuery("mhd", "vorticity", timestep, threshold)

    mediator.drop_cache_entries("mhd", "vorticity", timestep)
    mediator.drop_page_caches()
    integrated = mediator.threshold(query, processes=config.processes)

    mediator.drop_page_caches()
    cache_hit = mediator.threshold(query, processes=config.processes)

    local = local_threshold_evaluation(
        mediator, "mhd", timestep, threshold,
        chunk_side=max(16, dataset.spec.side // 4),
    )
    assert np.array_equal(local.zindexes, integrated.zindexes)

    rows = [
        [
            "local (client-side)",
            fmt(local.elapsed),
            len(local),
            f"{local.bytes_downloaded / 2**20:.0f} MiB-equivalent over WAN "
            f"in {local.subqueries} subqueries",
        ],
        [
            "integrated (cold cache)",
            fmt(integrated.elapsed),
            len(integrated),
            f"{local.elapsed / integrated.elapsed:.0f}x faster than local",
        ],
        [
            "integrated (cache hit)",
            fmt(cache_hit.elapsed),
            len(cache_hit),
            f"{local.elapsed / cache_hit.elapsed:.0f}x faster than local",
        ],
    ]
    return ExperimentReport(
        title="Sec. 5.3 -- local vs integrated threshold evaluation "
        "(medium threshold, simulated time)",
        headers=["strategy", "time", "points", "detail"],
        rows=rows,
        notes=[
            "paper: >20 h local vs ~2 min integrated vs seconds on a hit",
            "all three strategies return identical points",
        ],
    )
