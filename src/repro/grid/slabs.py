"""Slab decomposition of a box for multi-process evaluation.

Each database node divides its share of a threshold query into ``P``
slabs, one per worker process (paper, §5.3).  Slabs are cut along the
longest axis, aligned to atom boundaries so no two processes read the
same atom for their interior, and each process independently fetches its
own halo — which is exactly the I/O redundancy the paper observes growing
with process count.
"""

from __future__ import annotations

from repro.grid.atoms import ATOM_SIDE
from repro.grid.box import Box


def split_slabs(box: Box, parts: int, align: int = ATOM_SIDE) -> list[Box]:
    """Split ``box`` into up to ``parts`` disjoint slabs along its longest axis.

    Cuts are aligned to multiples of ``align`` grid points.  Returns fewer
    than ``parts`` slabs when the box is too thin to honour alignment.
    Slabs are returned in ascending order along the cut axis and their
    union is exactly ``box``.

    Raises:
        ValueError: on ``parts < 1`` or ``align < 1``.
    """
    if parts < 1:
        raise ValueError("parts must be >= 1")
    if align < 1:
        raise ValueError("align must be >= 1")
    if box.is_empty:
        return []
    if parts == 1:
        return [box]

    axis = max(range(3), key=lambda i: box.shape[i])
    lo, hi = box.lo[axis], box.hi[axis]
    extent = hi - lo

    # Candidate cut positions: aligned, strictly inside (lo, hi).
    cuts: list[int] = []
    target = extent / parts
    for i in range(1, parts):
        raw = lo + i * target
        snapped = round(raw / align) * align
        snapped = max(lo + align, min(snapped, hi - 1))
        if snapped > lo and snapped < hi and (not cuts or snapped > cuts[-1]):
            cuts.append(int(snapped))

    bounds = [lo, *cuts, hi]
    slabs = []
    for a, b in zip(bounds, bounds[1:]):
        if b <= a:
            continue
        slab_lo = list(box.lo)
        slab_hi = list(box.hi)
        slab_lo[axis] = a
        slab_hi[axis] = b
        slabs.append(Box(tuple(slab_lo), tuple(slab_hi)))
    return slabs
