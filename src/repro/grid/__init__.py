"""Grid geometry: boxes, 8^3 database atoms, halos and slab partitions.

Simulation output lives on a regular 3-D grid.  The storage layer splits
each timestep into small cubic *atoms* (8^3 grid points, as in the JHTDB),
derived-field kernels need *halos* of neighbouring points, and per-node
work is divided into *slabs* for multi-process evaluation.  This package
owns all of that index arithmetic.
"""

from repro.grid.box import Box
from repro.grid.atoms import (
    ATOM_SIDE,
    atom_box,
    atom_count,
    atoms_covering,
    snap_to_atoms,
)
from repro.grid.slabs import split_slabs

__all__ = [
    "ATOM_SIDE",
    "Box",
    "atom_box",
    "atom_count",
    "atoms_covering",
    "snap_to_atoms",
    "split_slabs",
]
