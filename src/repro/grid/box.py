"""Axis-aligned half-open index boxes on a periodic grid.

A :class:`Box` describes a region ``[lo, hi)`` of grid indices.  Boxes may
extend past the domain boundary (``lo`` negative or ``hi`` beyond the
domain side): on periodic domains such a box denotes the wrapped region,
and :meth:`Box.wrap_periodic` resolves it into in-domain pieces together
with where each piece lands inside a local array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence


@dataclass(frozen=True)
class Box:
    """Half-open axis-aligned box ``[lo, hi)`` of integer grid indices."""

    lo: tuple[int, int, int]
    hi: tuple[int, int, int]

    def __post_init__(self) -> None:
        lo = tuple(int(v) for v in self.lo)
        hi = tuple(int(v) for v in self.hi)
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)
        if len(lo) != 3 or len(hi) != 3:
            raise ValueError("Box corners must be 3-D")
        if any(h < l for l, h in zip(lo, hi)):
            raise ValueError(f"Box upper corner {hi} below lower corner {lo}")

    @classmethod
    def cube(cls, side: int) -> "Box":
        """The full domain box ``[0, side)^3``."""
        return cls((0, 0, 0), (side, side, side))

    @classmethod
    def from_corners(cls, corners: Sequence[int]) -> "Box":
        """Build from a flat ``(xl, yl, zl, xu, yu, zu)`` inclusive-exclusive list."""
        if len(corners) != 6:
            raise ValueError("expected 6 corner values")
        return cls(tuple(corners[:3]), tuple(corners[3:]))

    @property
    def shape(self) -> tuple[int, int, int]:
        """Extent along each axis, ``(nx, ny, nz)``."""
        return tuple(h - l for l, h in zip(self.lo, self.hi))

    @property
    def volume(self) -> int:
        """Number of grid points inside the box."""
        nx, ny, nz = self.shape
        return nx * ny * nz

    @property
    def is_empty(self) -> bool:
        return self.volume == 0

    def contains_point(self, point: Sequence[int]) -> bool:
        """Whether grid point ``(x, y, z)`` lies inside the box."""
        return all(l <= p < h for l, p, h in zip(self.lo, point, self.hi))

    def contains_box(self, other: "Box") -> bool:
        """Whether ``other`` lies entirely inside this box.

        An empty ``other`` is contained in everything.
        """
        if other.is_empty:
            return True
        return all(sl <= ol for sl, ol in zip(self.lo, other.lo)) and all(
            oh <= sh for oh, sh in zip(other.hi, self.hi)
        )

    def intersection(self, other: "Box") -> "Box | None":
        """The overlapping box, or ``None`` when disjoint or degenerate."""
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        if any(l >= h for l, h in zip(lo, hi)):
            return None
        return Box(lo, hi)

    def expand(self, margin: int) -> "Box":
        """Grow the box by ``margin`` points on every face (halo region).

        The result may extend outside the domain; use
        :meth:`wrap_periodic` to resolve it on a periodic grid.
        """
        if margin < 0:
            raise ValueError("margin must be non-negative")
        return Box(
            tuple(l - margin for l in self.lo),
            tuple(h + margin for h in self.hi),
        )

    def translate(self, offset: Sequence[int]) -> "Box":
        """The box shifted by ``offset``."""
        return Box(
            tuple(l + o for l, o in zip(self.lo, offset)),
            tuple(h + o for h, o in zip(self.hi, offset)),
        )

    def clip_to_domain(self, side: int) -> "Box | None":
        """Intersection with the domain cube ``[0, side)^3``."""
        return self.intersection(Box.cube(side))

    def wrap_periodic(self, side: int) -> Iterator[tuple["Box", tuple[int, int, int]]]:
        """Resolve an out-of-domain box on a periodic domain of ``side``.

        Yields ``(piece, local_offset)`` pairs: ``piece`` is an in-domain
        box and ``local_offset`` is the index of that piece's lower corner
        inside a local array shaped like :attr:`shape` (so that stitching
        every piece at its offset reconstructs the requested region).

        Raises:
            ValueError: if the box is wider than the domain on any axis
                (a single local cell would alias multiple domain cells).
        """
        if any(n > side for n in self.shape):
            raise ValueError(
                f"box shape {self.shape} exceeds periodic domain side {side}"
            )

        def axis_pieces(lo: int, hi: int) -> list[tuple[int, int, int]]:
            """Split [lo, hi) into in-domain [a, b) pieces with local start."""
            pieces = []
            cursor = lo
            while cursor < hi:
                base = cursor % side
                span = min(hi - cursor, side - base)
                pieces.append((base, base + span, cursor - lo))
                cursor += span
            return pieces

        for xa, xb, xo in axis_pieces(self.lo[0], self.hi[0]):
            for ya, yb, yo in axis_pieces(self.lo[1], self.hi[1]):
                for za, zb, zo in axis_pieces(self.lo[2], self.hi[2]):
                    yield Box((xa, ya, za), (xb, yb, zb)), (xo, yo, zo)

    def iter_points(self) -> Iterator[tuple[int, int, int]]:
        """Iterate all grid points in the box, x fastest."""
        for z in range(self.lo[2], self.hi[2]):
            for y in range(self.lo[1], self.hi[1]):
                for x in range(self.lo[0], self.hi[0]):
                    yield (x, y, z)

    def as_corners(self) -> tuple[int, int, int, int, int, int]:
        """Flat ``(xl, yl, zl, xu, yu, zu)`` form used in query metadata."""
        return (*self.lo, *self.hi)
