"""Database atoms: the 8^3 storage granule of the simulation tables.

Each timestep is spatially subdivided into cubic atoms of
:data:`ATOM_SIDE` grid points per edge, and each atom is stored as one
database record keyed by ``(timestep, morton_code_of_lower_corner)``
(paper, section 2).  The helpers here translate between grid boxes and
the atoms that cover them.
"""

from __future__ import annotations

from typing import Iterator

from repro.grid.box import Box
from repro.morton import MortonRange, box_to_ranges, decode, encode

#: Edge length of a database atom in grid points (8 in the JHTDB).
ATOM_SIDE = 8

#: Grid points per atom.
ATOM_VOLUME = ATOM_SIDE**3


def snap_to_atoms(box: Box) -> Box:
    """The smallest atom-aligned box containing ``box``."""
    lo = tuple((l // ATOM_SIDE) * ATOM_SIDE for l in box.lo)
    hi = tuple(-(-h // ATOM_SIDE) * ATOM_SIDE for h in box.hi)
    return Box(lo, hi)


def atom_box(code: int) -> Box:
    """The grid box covered by the atom whose lower corner has Morton ``code``.

    Raises:
        ValueError: if ``code`` does not sit on an atom corner.
    """
    x, y, z = decode(code)
    if x % ATOM_SIDE or y % ATOM_SIDE or z % ATOM_SIDE:
        raise ValueError(f"Morton code {code} is not an atom corner")
    return Box((x, y, z), (x + ATOM_SIDE, y + ATOM_SIDE, z + ATOM_SIDE))


def atom_count(domain_side: int) -> int:
    """Number of atoms in one timestep of a cubic domain."""
    if domain_side % ATOM_SIDE:
        raise ValueError(
            f"domain side {domain_side} is not a multiple of {ATOM_SIDE}"
        )
    return (domain_side // ATOM_SIDE) ** 3


def atoms_covering(box: Box, domain_side: int) -> Iterator[int]:
    """Morton codes of all atoms intersecting ``box``, in curve order.

    ``box`` must already be inside the domain (wrap periodic boxes first).
    """
    snapped = snap_to_atoms(box)
    clipped = snapped.clip_to_domain(domain_side)
    if clipped is None:
        return
    for rng in atom_ranges_covering(box, domain_side):
        # Atom codes advance in steps of one atom volume along the curve.
        yield from range(rng.start, rng.stop, ATOM_VOLUME)


def atom_ranges_covering(box: Box, domain_side: int) -> list[MortonRange]:
    """Contiguous Morton-code ranges of atoms intersecting ``box``.

    Ranges are expressed in *grid point* Morton codes: a range covers the
    codes of all grid points of the included atoms, so consecutive atoms
    along the curve coalesce into one range.  This is the unit a clustered
    index scan of the atom table works in.
    """
    snapped = snap_to_atoms(box)
    clipped = snapped.clip_to_domain(domain_side)
    if clipped is None:
        return []
    # Work in atom coordinates: divide everything by the atom side; the
    # Morton code of an atom corner is atom_volume * code(atom coords).
    atom_lo = tuple(l // ATOM_SIDE for l in clipped.lo)
    atom_hi = tuple(h // ATOM_SIDE for h in clipped.hi)
    atom_domain = domain_side // ATOM_SIDE
    return [
        MortonRange(rng.start * ATOM_VOLUME, rng.stop * ATOM_VOLUME)
        for rng in box_to_ranges(atom_lo, atom_hi, atom_domain)
    ]


def atom_code(x: int, y: int, z: int) -> int:
    """Morton code of the atom containing grid point ``(x, y, z)``."""
    return encode(
        (x // ATOM_SIDE) * ATOM_SIDE,
        (y // ATOM_SIDE) * ATOM_SIDE,
        (z // ATOM_SIDE) * ATOM_SIDE,
    )
