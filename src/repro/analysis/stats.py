"""Summary statistics used to choose thresholds.

The paper expresses its thresholds relative to the field's root mean
square ("values above 8 times the root mean square value, which is
about 25% of the maximum", §4) and relative to the fraction of points
above threshold (0.0004% / 0.0081% / 0.0847% in §5.2).  These helpers
compute both from a norm field.
"""

from __future__ import annotations

import numpy as np


def norm_rms(norm: np.ndarray) -> float:
    """Root mean square of a (non-negative) norm field."""
    norm = np.asarray(norm, dtype=np.float64)
    if norm.size == 0:
        raise ValueError("empty norm field")
    return float(np.sqrt(np.mean(np.square(norm))))


def threshold_at_rms_multiple(norm: np.ndarray, multiple: float) -> float:
    """The threshold at ``multiple`` times the field's RMS (paper Fig. 4)."""
    if multiple < 0:
        raise ValueError("multiple must be non-negative")
    return multiple * norm_rms(norm)


def threshold_for_fraction(norm: np.ndarray, fraction: float) -> float:
    """The threshold above which ``fraction`` of all points lie.

    Matches the paper's selectivities to a differently-scaled synthetic
    field: e.g. ``fraction=8.47e-4`` reproduces the "low" threshold that
    kept 909,274 of 1024^3 points.

    Raises:
        ValueError: for a fraction outside (0, 1].
    """
    if not 0 < fraction <= 1:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    norm = np.asarray(norm, dtype=np.float64)
    return float(np.quantile(norm, 1.0 - fraction))
