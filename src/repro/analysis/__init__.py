"""Post-query analysis: clustering and statistics.

Once the threshold query returns the intense locations, scientists
"cluster them in both 3d and 4d" with a friends-of-friends algorithm to
study the evolution of intense vortices (paper §3, Fig. 3).  This
package provides that clustering plus the summary statistics used to
pick thresholds (RMS values, value distributions).
"""

from repro.analysis.fof import Cluster, friends_of_friends, friends_of_friends_4d
from repro.analysis.stats import (
    norm_rms,
    threshold_for_fraction,
    threshold_at_rms_multiple,
)
from repro.analysis.tracking import EventSnapshot, EventTrack, track_events

__all__ = [
    "Cluster",
    "EventSnapshot",
    "EventTrack",
    "track_events",
    "friends_of_friends",
    "friends_of_friends_4d",
    "norm_rms",
    "threshold_at_rms_multiple",
    "threshold_for_fraction",
]
