"""Friends-of-friends clustering of threshold-query results.

Two points are *friends* when their separation is at most the linking
length (Chebyshev metric on the periodic grid); clusters are the
connected components of the friendship graph.  The 4-D variant links
across timesteps as well, so a persistent vortex "worm" traced through
time forms a single space-time cluster — this is how the paper finds the
most intense event in the isotropic dataset (Fig. 3) and observes that
it "develops from nothing" within the stored time span.

The implementation hashes points into cells of the linking length and
unions neighbouring cells' points, giving O(n) behaviour for the small
result sets threshold queries return.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class Cluster:
    """One friends-of-friends cluster.

    Attributes:
        indices: positions (into the input arrays) of member points.
        size: number of member points.
        peak_index: input position of the member with the largest value.
        peak_value: that member's value.
        timesteps: sorted distinct timesteps the cluster spans (4-D runs;
            a single-timestep run reports an empty tuple).
    """

    indices: np.ndarray
    size: int
    peak_index: int
    peak_value: float
    timesteps: tuple[int, ...] = ()

    @property
    def lifetime(self) -> int:
        """Number of timesteps the cluster spans (0 for 3-D clusters)."""
        return len(self.timesteps)


class _UnionFind:
    __slots__ = ("parent", "rank")

    def __init__(self, n: int) -> None:
        self.parent = np.arange(n)
        self.rank = np.zeros(n, dtype=np.int8)

    def find(self, i: int) -> int:
        parent = self.parent
        root = i
        while parent[root] != root:
            root = parent[root]
        while parent[i] != root:  # path compression
            parent[i], i = root, parent[i]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1


def _link(
    coords: np.ndarray,
    side: int | None,
    linking_length: int,
    extra_key: np.ndarray | None = None,
) -> np.ndarray:
    """Union-find labels linking points within Chebyshev distance.

    ``extra_key`` (e.g. the timestep) separates cells along a fourth
    axis; points in cells whose extra keys differ by more than one cell
    are never compared.
    """
    n = len(coords)
    uf = _UnionFind(n)
    cell_size = max(1, linking_length)
    cells: dict[tuple, list[int]] = {}
    cell_coords = coords // cell_size
    for i in range(n):
        key = tuple(cell_coords[i])
        if extra_key is not None:
            key = (*key, int(extra_key[i]) // cell_size)
        cells.setdefault(key, []).append(i)

    ncells = side // cell_size if side else None

    def neighbour_cells(key: tuple):
        dims = len(key)
        deltas = np.stack(
            np.meshgrid(*[[-1, 0, 1]] * dims, indexing="ij"), axis=-1
        ).reshape(-1, dims)
        for delta in deltas:
            neigh = []
            for axis, (k, d) in enumerate(zip(key, delta)):
                value = k + d
                if side and axis < 3 and ncells:
                    value %= ncells
                neigh.append(value)
            yield tuple(neigh)

    for key, members in cells.items():
        for neigh_key in neighbour_cells(key):
            others = cells.get(neigh_key)
            if not others:
                continue
            for i in members:
                for j in others:
                    if j <= i:
                        continue
                    if _within(coords[i], coords[j], side, linking_length) and (
                        extra_key is None
                        or abs(int(extra_key[i]) - int(extra_key[j]))
                        <= linking_length
                    ):
                        uf.union(i, j)
    return np.array([uf.find(i) for i in range(n)])


def _within(a: np.ndarray, b: np.ndarray, side: int | None, length: int) -> bool:
    for ca, cb in zip(a, b):
        d = abs(int(ca) - int(cb))
        if side:
            d = min(d, side - d)
        if d > length:
            return False
    return True


def _build_clusters(
    labels: np.ndarray,
    values: np.ndarray,
    timesteps: np.ndarray | None,
    min_size: int,
) -> list[Cluster]:
    clusters = []
    for label in np.unique(labels):
        indices = np.nonzero(labels == label)[0]
        if len(indices) < min_size:
            continue
        local_peak = indices[int(np.argmax(values[indices]))]
        spanned: tuple[int, ...] = ()
        if timesteps is not None:
            spanned = tuple(sorted(set(int(t) for t in timesteps[indices])))
        clusters.append(
            Cluster(
                indices=indices,
                size=len(indices),
                peak_index=int(local_peak),
                peak_value=float(values[local_peak]),
                timesteps=spanned,
            )
        )
    clusters.sort(key=lambda c: (-c.size, -c.peak_value))
    return clusters


def friends_of_friends(
    coords: np.ndarray,
    values: np.ndarray,
    side: int,
    linking_length: int = 2,
    min_size: int = 1,
) -> list[Cluster]:
    """3-D friends-of-friends clustering on a periodic grid.

    Args:
        coords: ``(n, 3)`` integer grid coordinates.
        values: field norms at the points (picks each cluster's peak).
        side: periodic domain side.
        linking_length: maximum Chebyshev separation of friends.
        min_size: drop clusters smaller than this.

    Returns:
        clusters sorted by size (descending), then peak value.
    """
    coords = np.asarray(coords)
    values = np.asarray(values, dtype=np.float64)
    if coords.ndim != 2 or coords.shape[1] != 3:
        raise ValueError(f"expected (n, 3) coordinates, got {coords.shape}")
    if len(coords) != len(values):
        raise ValueError("coords and values must align")
    if len(coords) == 0:
        return []
    labels = _link(coords, side, linking_length)
    return _build_clusters(labels, values, None, min_size)


def friends_of_friends_4d(
    timesteps: np.ndarray,
    coords: np.ndarray,
    values: np.ndarray,
    side: int,
    linking_length: int = 2,
    min_size: int = 1,
) -> list[Cluster]:
    """4-D (space + time) friends-of-friends clustering.

    Points are friends when both their spatial Chebyshev distance (on
    the periodic grid) and their timestep separation are at most the
    linking length — the space-time clustering of the paper's Fig. 3.
    """
    timesteps = np.asarray(timesteps)
    coords = np.asarray(coords)
    values = np.asarray(values, dtype=np.float64)
    if not (len(timesteps) == len(coords) == len(values)):
        raise ValueError("timesteps, coords and values must align")
    if len(coords) == 0:
        return []
    labels = _link(coords, side, linking_length, extra_key=timesteps)
    return _build_clusters(labels, values, timesteps, min_size)
