"""Tracking intense events through time.

Once threshold results are clustered, scientists "examine their
evolution with the flow and make subsequent analysis queries as needed"
(paper §3) — which worm grew out of nothing, how fast it drifts, when
its peak intensity occurred.  This module turns the 4-D friends-of-
friends clusters into *tracks*: per-timestep snapshots of each event
(size, centroid, peak) plus summary statistics of its life.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.fof import friends_of_friends_4d


@dataclass(frozen=True)
class EventSnapshot:
    """One event at one timestep."""

    timestep: int
    size: int
    centroid: tuple[float, float, float]
    peak_value: float
    peak_location: tuple[int, int, int]


@dataclass(frozen=True)
class EventTrack:
    """One intense event traced through time.

    Attributes:
        snapshots: per-timestep states, in time order.
        peak_value: the largest value over the whole life.
        peak_timestep: when that largest value occurred.
    """

    snapshots: tuple[EventSnapshot, ...]

    @property
    def lifetime(self) -> int:
        """Number of timesteps the event exists in."""
        return len(self.snapshots)

    @property
    def birth(self) -> int:
        """First timestep the event appears in."""
        return self.snapshots[0].timestep

    @property
    def death(self) -> int:
        """Last timestep the event appears in."""
        return self.snapshots[-1].timestep

    @property
    def peak_value(self) -> float:
        """The largest value attained over the track's life."""
        return max(s.peak_value for s in self.snapshots)

    @property
    def peak_timestep(self) -> int:
        """The timestep at which the track peaks."""
        return max(self.snapshots, key=lambda s: s.peak_value).timestep

    @property
    def total_points(self) -> int:
        """Member points summed over the track's life."""
        return sum(s.size for s in self.snapshots)

    def drift(self, side: int) -> float:
        """Mean centroid displacement per timestep (grid units, periodic).

        Returns 0.0 for single-snapshot tracks.
        """
        if len(self.snapshots) < 2:
            return 0.0
        steps = []
        for a, b in zip(self.snapshots, self.snapshots[1:]):
            dt = b.timestep - a.timestep
            displacement = _periodic_distance(a.centroid, b.centroid, side)
            steps.append(displacement / max(dt, 1))
        return float(np.mean(steps))


def _periodic_distance(a, b, side: int) -> float:
    total = 0.0
    for ca, cb in zip(a, b):
        d = abs(ca - cb)
        d = min(d, side - d)
        total += d * d
    return float(np.sqrt(total))


def _periodic_centroid(coords: np.ndarray, side: int) -> tuple[float, ...]:
    """Centroid on a periodic domain via minimal images around a seed."""
    seed = coords[0].astype(np.float64)
    rel = ((coords - seed + side / 2) % side) - side / 2
    centre = (seed + rel.mean(axis=0)) % side
    return tuple(float(c) for c in centre)


def track_events(
    timesteps: np.ndarray,
    coords: np.ndarray,
    values: np.ndarray,
    side: int,
    linking_length: int = 2,
    min_size: int = 2,
) -> list[EventTrack]:
    """Build event tracks from pooled multi-timestep threshold results.

    Args:
        timesteps: timestep of each point.
        coords: ``(n, 3)`` grid coordinates.
        values: field norms at the points.
        side: periodic domain side.
        linking_length: FoF linking length (space and time).
        min_size: drop 4-D clusters smaller than this.

    Returns:
        tracks sorted by peak value, most intense first.
    """
    timesteps = np.asarray(timesteps)
    coords = np.asarray(coords)
    values = np.asarray(values, dtype=np.float64)
    clusters = friends_of_friends_4d(
        timesteps, coords, values, side,
        linking_length=linking_length, min_size=min_size,
    )
    tracks = []
    for cluster in clusters:
        snapshots = []
        member_t = timesteps[cluster.indices]
        for timestep in sorted(set(int(t) for t in member_t)):
            members = cluster.indices[member_t == timestep]
            member_coords = coords[members]
            member_values = values[members]
            peak = members[int(np.argmax(member_values))]
            snapshots.append(
                EventSnapshot(
                    timestep=timestep,
                    size=len(members),
                    centroid=_periodic_centroid(member_coords, side),
                    peak_value=float(values[peak]),
                    peak_location=tuple(int(c) for c in coords[peak]),
                )
            )
        tracks.append(EventTrack(tuple(snapshots)))
    tracks.sort(key=lambda t: -t.peak_value)
    return tracks
