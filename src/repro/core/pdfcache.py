"""Caching PDF (histogram) query results.

The paper's cache "currently stores only the results of threshold
queries.  Nevertheless, it can easily be extended to cache the results
of other query types as well if that becomes advantageous" (§4).  PDF
queries are exactly such a type: they scan a full timestep, their result
is a handful of numbers, and scientists re-examine the same distribution
while choosing thresholds.

Each node caches its own share's histogram, keyed by (dataset, field,
timestep, FD order, bin edges); a probe must match the edges exactly.
Entries live in one SSD table next to the threshold cache.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.core.cache import CacheStats
from repro.core.pointset import pack_f64, pack_i64, unpack_i64
from repro.storage import (
    Column,
    ColumnType,
    Database,
    SerializationConflictError,
    TableSchema,
    Transaction,
)

#: Maximum cached histograms per node (they are tiny; this bounds scans).
DEFAULT_MAX_ENTRIES = 1024


class PdfCache:
    """Per-node cache of PDF-query results."""

    def __init__(self, db: Database, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self._db = db
        self.max_entries = max_entries
        self._ordinals = itertools.count(1)
        self._recency = itertools.count(1)
        self.stats = CacheStats()
        db.create_table(
            TableSchema(
                "pdfCache",
                (
                    Column("ordinal", ColumnType.INTEGER),
                    Column("dataset", ColumnType.TEXT),
                    Column("field", ColumnType.TEXT),
                    Column("timestep", ColumnType.INTEGER),
                    Column("fd_order", ColumnType.INTEGER),
                    Column("edges", ColumnType.BLOB),
                    Column("counts", ColumnType.BLOB),
                    Column("last_used", ColumnType.BIGINT),
                ),
                primary_key=("ordinal",),
                indexes={"by_query": ("dataset", "field", "timestep")},
            ),
            device="ssd",
        )

    @staticmethod
    def _edges_blob(edges: tuple[float, ...]) -> bytes:
        return pack_f64(np.asarray(edges, dtype=np.float64))

    def lookup(
        self,
        txn: Transaction,
        dataset: str,
        field: str,
        timestep: int,
        fd_order: int,
        edges: tuple[float, ...],
    ) -> np.ndarray | None:
        """The cached per-bin counts, or ``None`` on a miss."""
        wanted = self._edges_blob(edges)
        rows = self._db.table("pdfCache").lookup(
            txn, "by_query", (dataset, field, timestep)
        )
        for row in rows:
            if row["fd_order"] == fd_order and row["edges"] == wanted:
                # Recency is advisory: a concurrent bump of the same entry
                # must not turn this hit into a failed query.
                try:
                    self._db.table("pdfCache").update(
                        txn, (row["ordinal"],), {"last_used": next(self._recency)}
                    )
                except SerializationConflictError:
                    pass
                self.stats.record_hit()
                return unpack_i64(row["counts"]).copy()
        self.stats.record_miss()
        return None

    def store(
        self,
        txn: Transaction,
        dataset: str,
        field: str,
        timestep: int,
        fd_order: int,
        edges: tuple[float, ...],
        counts: np.ndarray,
    ) -> int:
        """Insert a histogram, evicting the LRU entry when full."""
        table = self._db.table("pdfCache")
        while table.count(txn) >= self.max_entries:
            victims = self._db.sql(
                txn,
                "SELECT ordinal FROM pdfCache ORDER BY last_used ASC LIMIT 1",
            )
            if not victims:
                break
            table.delete(txn, (victims[0]["ordinal"],))
            self.stats.record_eviction()
        ordinal = next(self._ordinals)
        table.insert(
            txn,
            {
                "ordinal": ordinal,
                "dataset": dataset,
                "field": field,
                "timestep": timestep,
                "fd_order": fd_order,
                "edges": self._edges_blob(edges),
                "counts": pack_i64(np.asarray(counts, dtype=np.int64)),
                "last_used": next(self._recency),
            },
        )
        counts = np.asarray(counts, dtype=np.int64)
        self.stats.record_store(int(counts.size), counts.nbytes)
        return ordinal

    def entry_count(self, txn: Transaction) -> int:
        """Number of cached histograms visible to ``txn``."""
        return self._db.table("pdfCache").count(txn)

    def clear(self) -> int:
        """Drop every cached histogram; returns how many were removed."""
        with self._db.transaction() as txn:
            return self._db.sql(txn, "DELETE FROM pdfCache")
