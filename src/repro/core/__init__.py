"""The paper's core contribution: threshold queries with a semantic cache.

* :mod:`~repro.core.query` — query and result types.
* :mod:`~repro.core.limits` — the 10^6-point result limit (paper §4).
* :mod:`~repro.core.cache` — the application-aware semantic cache
  (cacheInfo/cacheData tables, LRU replacement, threshold dominance).
* :mod:`~repro.core.executor` — per-node data-parallel evaluation from
  raw atoms (halo assembly, kernel computation, threshold scan).
* :mod:`~repro.core.threshold` — Algorithm 1 (GetThreshold with cache).
* :mod:`~repro.core.pdf` — probability-density queries (Fig. 2).
* :mod:`~repro.core.topk` — top-k queries via the same machinery.
"""

from repro.core.query import (
    PdfQuery,
    PdfResult,
    ThresholdQuery,
    ThresholdResult,
    TopKQuery,
    TopKResult,
)
from repro.core.limits import MAX_RESULT_POINTS, ThresholdTooLowError
from repro.core.cache import CacheLookup, SemanticCache
from repro.core.threshold import NodeThresholdResult, get_threshold_on_node
from repro.core.batch import BatchThresholdResult
from repro.core.landmarks import Landmark, LandmarkDatabase
from repro.core.pdfcache import PdfCache

__all__ = [
    "BatchThresholdResult",
    "CacheLookup",
    "Landmark",
    "LandmarkDatabase",
    "PdfCache",
    "MAX_RESULT_POINTS",
    "NodeThresholdResult",
    "PdfQuery",
    "PdfResult",
    "SemanticCache",
    "ThresholdQuery",
    "ThresholdResult",
    "ThresholdTooLowError",
    "TopKQuery",
    "TopKResult",
    "get_threshold_on_node",
]
