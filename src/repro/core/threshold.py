"""Algorithm 1: per-node threshold evaluation through the cache.

Each node runs GetThreshold for its share of the query inside a single
snapshot-isolation transaction: probe the cache; on a hit, serve the
points straight from ``cacheData``; on a miss (no entry, or an entry
whose threshold is higher than requested), evaluate from the raw data
via the :class:`~repro.core.executor.NodeExecutor` and store the fresh
result back — replacing a stale entry when one was found.

A concurrent cache refresh of the same entry surfaces as a
snapshot-isolation write conflict; the computation's result is still
returned to the user, only the cache update is skipped (the winning
writer's entry is equivalent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.costmodel import CostLedger
from repro.core.cache import SemanticCache
from repro.core.executor import NodeExecutor, RawEvaluation
from repro.core.pointset import merge_sorted_runs
from repro.core.query import ThresholdQuery
from repro.fields.derived import FieldRegistry
from repro.grid import Box
from repro.obs import tracing
from repro.storage import SerializationConflictError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.node import DatabaseNode


@dataclass
class NodeThresholdResult:
    """One node's contribution to a threshold query."""

    zindexes: np.ndarray
    values: np.ndarray
    ledger: CostLedger
    cache_hit: bool
    boxes_evaluated: int
    cache_stored: bool

    def __len__(self) -> int:
        return len(self.zindexes)


def get_threshold_on_node(
    node: "DatabaseNode",
    executor: NodeExecutor,
    cache: SemanticCache | None,
    registry: FieldRegistry,
    query: ThresholdQuery,
    boxes: list[Box],
    processes: int = 1,
    io_only: bool = False,
) -> NodeThresholdResult:
    """Run Algorithm 1 for this node's ``boxes`` of the query region.

    Args:
        cache: the node's semantic cache, or ``None`` to bypass caching
            entirely (the paper's "no cache" baseline).
        boxes: the node's rectangular pieces of the query box; each piece
            is cached as its own entry, so partially-cached node shares
            re-evaluate only the missing pieces.
        io_only: perform only the raw-data reads (Fig. 8's I/O-only mode;
            implies no caching and returns no points).
    """
    ledger = CostLedger()
    dataset_spec = node.dataset(query.dataset)
    derived = registry.get(query.field)

    if not boxes:
        return NodeThresholdResult(
            np.empty(0, np.uint64), np.empty(0, np.float64),
            ledger, cache_hit=False, boxes_evaluated=0, cache_stored=False,
        )

    all_z: list[np.ndarray] = []
    all_v: list[np.ndarray] = []
    hits = 0
    evaluated = 0
    stored = True

    # Remote boundary atoms for every box still to be evaluated are
    # fetched in one RPC per peer at the first cache miss (a warm cache
    # never pays for it); each per-box evaluate() then runs without any
    # halo round trip of its own.  Only single-chain evaluation may
    # share the prefetch — with processes > 1 each chain fetches its
    # own redundant boundary, as the paper's parallelism model assumes.
    prefetched: dict[int, bytes] | None = None
    txn = node.db.begin(ledger)
    try:
        for index, box in enumerate(boxes):
            lookup = None
            if cache is not None and not io_only:
                with tracing.span("cache.lookup", category="cache_lookup") as probe:
                    lookup = cache.lookup(
                        txn, query.dataset, query.field, query.timestep,
                        box, query.threshold,
                    )
                    probe.set("hit", lookup.hit)
                if lookup.hit:
                    hits += 1
                    all_z.append(lookup.zindexes)
                    all_v.append(lookup.values)
                    continue
            if processes == 1 and prefetched is None:
                prefetched = executor.prefetch_halo(
                    ledger, dataset_spec, derived, query.timestep,
                    boxes[index:], query.fd_order,
                ) or {}
            with tracing.span("node.evaluate") as evaluation_span:
                evaluation = executor.evaluate(
                    txn, ledger, dataset_spec, derived, query.timestep,
                    [box], query.threshold, query.fd_order,
                    processes=processes, io_only=io_only,
                    prefetched=prefetched,
                )
                evaluation_span.set("points", len(evaluation.zindexes))
            evaluated += 1
            all_z.append(evaluation.zindexes)
            all_v.append(evaluation.values)
            if cache is not None and not io_only:
                try:
                    with tracing.span("cache.store", category="cache_lookup"):
                        cache.store(
                            txn, query.dataset, query.field, query.timestep,
                            box, query.threshold,
                            evaluation.zindexes, evaluation.values,
                            replace_ordinal=lookup.stale_ordinal if lookup else None,
                        )
                except SerializationConflictError:
                    # A concurrent query refreshed the same entry first;
                    # keep the computed points, skip our cache update and
                    # evaluate the REMAINING boxes under a fresh snapshot
                    # (aborting mid-loop must not truncate the result).
                    txn.abort()
                    stored = False
                    txn = node.db.begin(ledger)
        txn.commit()
    except SerializationConflictError:
        txn.abort()
        stored = False
    except Exception:
        txn.abort()
        raise

    # Per-box runs interleave on the curve; merge them so every node
    # hands the mediator one Morton-sorted run (gather is then a
    # concatenation across the nodes' disjoint spans).
    zindexes, values = merge_sorted_runs(list(zip(all_z, all_v)))
    return NodeThresholdResult(
        zindexes, values, ledger,
        cache_hit=bool(boxes) and hits == len(boxes),
        boxes_evaluated=evaluated,
        cache_stored=stored and evaluated > 0,
    )
