"""Packed Morton-sorted point chunks — the columnar point-set format.

The paper's cache stores one SQL Server row per matching point; the
array-database literature it draws on (Dobos et al.'s SQL Server array
extension, SAVIME) instead packs scientific point/array data into binary
chunks inside the relational engine, exactly as the JHTDB's own raw
atoms are 8^3 blobs.  This module is that format for *query results*:
a point set ``(zindexes, values)`` is sorted by Morton code and cut into
chunks of up to :data:`CHUNK_POINTS` points, each packed as two
little-endian column blobs (``uint64`` zindexes, ``float64`` values)
plus the metadata (``z_lo``, ``z_hi``, ``value_max``, ``count``) that
lets readers prune whole chunks by Morton interval and threshold before
decoding a single point.

Chunk rows are what :class:`~repro.core.cache.SemanticCache` persists in
``cacheData`` and what the mediator/executor merge paths operate on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.morton.ranges import MortonRange

#: Points per packed chunk.  8^3 atoms hold 512 cells, a 16^3 subcube
#: 4096 — one chunk row per ~16^3 worth of matching points keeps row
#: count (and WAL/B+-tree work) three orders of magnitude below
#: row-per-point while each blob stays well under the 8 KiB heap page.
CHUNK_POINTS = 4096


@dataclass(frozen=True)
class PointChunk:
    """One packed chunk of a Morton-sorted point set.

    ``z_lo``/``z_hi`` are the inclusive Morton bounds of the chunk's
    points and ``value_max`` its largest field value — together they let
    a reader skip the chunk entirely when its interval misses the query
    box or ``value_max`` falls below the query threshold.
    """

    seq: int
    z_lo: int
    z_hi: int
    value_max: float
    count: int
    zblob: bytes
    vblob: bytes


# -- column codecs ----------------------------------------------------------


def pack_u64(array: np.ndarray) -> bytes:
    """Pack an array as little-endian ``uint64`` bytes."""
    return np.ascontiguousarray(array, dtype="<u8").tobytes()


def pack_i64(array: np.ndarray) -> bytes:
    """Pack an array as little-endian ``int64`` bytes."""
    return np.ascontiguousarray(array, dtype="<i8").tobytes()


def pack_f64(array: np.ndarray) -> bytes:
    """Pack an array as little-endian ``float64`` bytes."""
    return np.ascontiguousarray(array, dtype="<f8").tobytes()


def unpack_u64(blob: bytes) -> np.ndarray:
    """Decode a :func:`pack_u64` blob (zero-copy, native ``uint64``)."""
    return np.frombuffer(blob, dtype="<u8").astype(np.uint64, copy=False)


def unpack_i64(blob: bytes) -> np.ndarray:
    """Decode a :func:`pack_i64` blob (zero-copy, native ``int64``)."""
    return np.frombuffer(blob, dtype="<i8").astype(np.int64, copy=False)


def unpack_f64(blob: bytes) -> np.ndarray:
    """Decode a :func:`pack_f64` blob (zero-copy, native ``float64``)."""
    return np.frombuffer(blob, dtype="<f8").astype(np.float64, copy=False)


# -- chunking ---------------------------------------------------------------


def pack_chunks(
    zindexes: np.ndarray,
    values: np.ndarray,
    chunk_points: int = CHUNK_POINTS,
) -> list[PointChunk]:
    """Sort a point set by Morton code and pack it into chunks.

    Raises:
        ValueError: misaligned arrays, a non-positive ``chunk_points``,
            or a repeated zindex (a point set maps each cell to one
            value; the row-per-point schema enforced this via its
            primary key, so the packed format must as well).
    """
    if chunk_points <= 0:
        raise ValueError("chunk_points must be positive")
    z = np.asarray(zindexes, dtype=np.uint64).ravel()
    v = np.asarray(values, dtype=np.float64).ravel()
    if z.size != v.size:
        raise ValueError("zindexes and values must align")
    order = np.argsort(z, kind="stable")
    z = z[order]
    v = v[order]
    if z.size > 1 and bool(np.any(z[1:] == z[:-1])):
        raise ValueError("duplicate zindex in point set")
    chunks: list[PointChunk] = []
    for seq, start in enumerate(range(0, int(z.size), chunk_points)):
        zs = z[start : start + chunk_points]
        vs = v[start : start + chunk_points]
        chunks.append(
            PointChunk(
                seq=seq,
                z_lo=int(zs[0]),
                z_hi=int(zs[-1]),
                value_max=float(vs.max()),
                count=int(zs.size),
                zblob=pack_u64(zs),
                vblob=pack_f64(vs),
            )
        )
    return chunks


def chunk_arrays(zblob: bytes, vblob: bytes) -> tuple[np.ndarray, np.ndarray]:
    """Decode one chunk's column blobs back into ``(zindexes, values)``."""
    return unpack_u64(zblob), unpack_f64(vblob)


def chunks_overlapping_ranges(
    z_lo: np.ndarray,
    z_hi: np.ndarray,
    ranges: Sequence[MortonRange],
) -> np.ndarray:
    """Boolean mask of chunks whose Morton interval meets any range.

    ``z_lo``/``z_hi`` are the chunks' inclusive Morton bounds; ``ranges``
    is a sorted, disjoint cover (e.g. from
    :func:`~repro.morton.ranges.box_to_ranges`).  A chunk ``[lo, hi]``
    overlaps the union iff the first range ending past ``lo`` starts at
    or before ``hi`` — one :func:`np.searchsorted` over the range stops
    decides every chunk at once.
    """
    lo = np.asarray(z_lo, dtype=np.uint64)
    hi = np.asarray(z_hi, dtype=np.uint64)
    if not len(ranges):
        return np.zeros(lo.shape, dtype=bool)
    starts = np.array([r.start for r in ranges], dtype=np.uint64)
    stops = np.array([r.stop for r in ranges], dtype=np.uint64)
    idx = np.searchsorted(stops, lo, side="right")
    hit = idx < len(ranges)
    hit[hit] = starts[idx[hit]] <= hi[hit]
    return hit


# -- merging ----------------------------------------------------------------


def merge_sorted_runs(
    runs: Sequence[tuple[np.ndarray, np.ndarray]],
) -> tuple[np.ndarray, np.ndarray]:
    """Merge ``(zindexes, values)`` runs into one zindex-sorted pair.

    The gather paths (executor slabs, mediator nodes, per-box cache
    results) each produce runs already sorted by Morton code; when the
    run boundaries are non-decreasing — always true for disjoint curve
    spans concatenated in curve order — the merge is a plain
    concatenation.  Interleaved runs fall back to one stable argsort,
    matching the seed's ordering exactly.
    """
    live = [
        (np.asarray(z, dtype=np.uint64), np.asarray(v, dtype=np.float64))
        for z, v in runs
        if len(z)
    ]
    if not live:
        return np.empty(0, np.uint64), np.empty(0, np.float64)
    if len(live) == 1:
        z, v = live[0]
    else:
        z = np.concatenate([pair[0] for pair in live])
        v = np.concatenate([pair[1] for pair in live])
    # A single run may still be internally unsorted (a raw scan emits
    # points in coordinate order, not curve order), so the check runs
    # unconditionally.
    if bool(np.all(z[1:] >= z[:-1])):
        return z, v
    order = np.argsort(z, kind="stable")
    return z[order], v[order]
