"""Batch evaluation of threshold queries with shared scans.

The JHTDB serves its data-intensive workloads through "data-driven batch
processing techniques" (paper §2, citing the authors' I/O-streaming
work), and §7 envisions users submitting batches server-side.  This
module applies the idea to threshold queries: queries over *different
derived fields of the same raw source* (e.g. vorticity and Q-criterion,
both derived from the velocity) are evaluated in one pass — the atoms
are read once, every kernel runs on the same in-memory block, and only
the kernels' compute time multiplies.

For a batch of k fields sharing a source, I/O drops from k scans to one;
with I/O roughly half the total (paper Fig. 8), a vorticity+Q batch runs
~25 % faster than back-to-back queries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cache import SemanticCache
from repro.core.executor import NodeExecutor
from repro.core.pointset import merge_sorted_runs
from repro.core.query import ThresholdQuery, ThresholdResult
from repro.core.threshold import NodeThresholdResult
from repro.costmodel import CostLedger
from repro.fields.derived import FieldRegistry
from repro.grid import Box
from repro.storage import SerializationConflictError, Transaction


@dataclass
class BatchThresholdResult:
    """Results of a batch, aligned with the submitted query list.

    Each per-query :class:`ThresholdResult` carries the *shared* batch
    ledger (the queries were answered by one pass; their costs are not
    separable).
    """

    results: list[ThresholdResult]
    ledger: CostLedger

    def __len__(self) -> int:
        return len(self.results)


def check_batchable(queries: list[ThresholdQuery], registry: FieldRegistry) -> str:
    """Validate that the queries can share one scan; returns the source.

    Raises:
        ValueError: on an empty batch or mismatched dataset / timestep /
            region / FD order / source field.
    """
    if not queries:
        raise ValueError("empty batch")
    first = queries[0]
    source = registry.get(first.field).source
    for query in queries[1:]:
        if (
            query.dataset != first.dataset
            or query.timestep != first.timestep
            or query.box != first.box
            or query.fd_order != first.fd_order
        ):
            raise ValueError(
                "batched queries must share dataset, timestep, region and "
                "FD order"
            )
        if registry.get(query.field).source != source:
            raise ValueError(
                "batched queries must derive from the same raw field "
                f"({registry.get(query.field).source} != {source})"
            )
    return source


def get_batch_on_node(
    node,
    executor: NodeExecutor,
    cache: SemanticCache | None,
    registry: FieldRegistry,
    queries: list[ThresholdQuery],
    boxes: list[Box],
    processes: int = 1,
) -> list[NodeThresholdResult]:
    """Evaluate a batch on one node, reading each box's atoms once.

    Per box: probe the cache for every query; the queries that miss are
    evaluated together from a single assembled block (widest halo wins),
    and each fresh result is stored back under its own cache entry.
    """
    ledger = CostLedger()
    dataset_spec = node.dataset(queries[0].dataset)
    deriveds = [registry.get(query.field) for query in queries]

    per_query_z: list[list[np.ndarray]] = [[] for _ in queries]
    per_query_v: list[list[np.ndarray]] = [[] for _ in queries]
    hits = [0] * len(queries)
    evaluated = [0] * len(queries)
    stored = True

    txn = node.db.begin(ledger)
    try:
        for box in boxes:
            missed: list[int] = []
            lookups: dict[int, object] = {}
            for i, query in enumerate(queries):
                if cache is not None:
                    lookup = cache.lookup(
                        txn, query.dataset, query.field, query.timestep,
                        box, query.threshold,
                    )
                    if lookup.hit:
                        hits[i] += 1
                        per_query_z[i].append(lookup.zindexes)
                        per_query_v[i].append(lookup.values)
                        continue
                    lookups[i] = lookup
                missed.append(i)
            if not missed:
                continue
            evaluations = executor.evaluate_batch(
                txn, ledger, dataset_spec,
                [deriveds[i] for i in missed],
                queries[0].timestep, [box],
                [queries[i].threshold for i in missed],
                queries[0].fd_order, processes=processes,
            )
            for i, evaluation in zip(missed, evaluations):
                evaluated[i] += 1
                per_query_z[i].append(evaluation.zindexes)
                per_query_v[i].append(evaluation.values)
                if cache is not None:
                    lookup = lookups.get(i)
                    try:
                        cache.store(
                            txn, queries[i].dataset, queries[i].field,
                            queries[i].timestep, box, queries[i].threshold,
                            evaluation.zindexes, evaluation.values,
                            replace_ordinal=(
                                lookup.stale_ordinal if lookup else None
                            ),
                        )
                    except SerializationConflictError:
                        # A concurrent query refreshed this entry first;
                        # keep the computed points and finish the batch
                        # under a fresh snapshot rather than truncating.
                        txn.abort()
                        stored = False
                        txn = node.db.begin(ledger)
        txn.commit()
    except SerializationConflictError:
        txn.abort()
        stored = False
    except Exception:
        txn.abort()
        raise

    out = []
    for i in range(len(queries)):
        zindexes, values = merge_sorted_runs(
            list(zip(per_query_z[i], per_query_v[i]))
        )
        out.append(
            NodeThresholdResult(
                zindexes, values, ledger,
                cache_hit=bool(boxes) and hits[i] == len(boxes),
                boxes_evaluated=evaluated[i],
                cache_stored=stored and evaluated[i] > 0,
            )
        )
    return out
