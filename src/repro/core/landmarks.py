"""The landmark database: persistent regions of interest with statistics.

"The introduction of an application-aware cache for query results lays
the groundwork for the creation of a landmark database.  Such a database
can store the locations of the highest vorticity regions in the dataset
or more broadly regions of interest and their associated statistics"
(paper §7).

A landmark is a clustered intense event: threshold-query results are
grouped with friends-of-friends, and each cluster is stored as one row
— bounding box, point count, peak location/value, mean value, and the
threshold that produced it.  Landmarks persist in ordinary database
tables (on the SSD device, next to the cache) and are queried through
the same transactional machinery, so a scientist can ask "the ten most
intense vorticity events anywhere in the dataset" without re-scanning a
single timestep.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.analysis.fof import friends_of_friends
from repro.core.query import ThresholdQuery, ThresholdResult
from repro.grid import Box
from repro.morton import decode
from repro.storage import Column, ColumnType, Database, TableSchema


@dataclass(frozen=True)
class Landmark:
    """One stored region of interest."""

    landmark_id: int
    dataset: str
    field: str
    timestep: int
    box: Box
    point_count: int
    peak_value: float
    peak_location: tuple[int, int, int]
    mean_value: float
    threshold: float

    @classmethod
    def _from_row(cls, row: dict) -> "Landmark":
        return cls(
            landmark_id=row["id"],
            dataset=row["dataset"],
            field=row["field"],
            timestep=row["timestep"],
            box=Box.from_corners(
                (row["xl"], row["yl"], row["zl"],
                 row["xu"], row["yu"], row["zu"])
            ),
            point_count=row["point_count"],
            peak_value=row["peak_value"],
            peak_location=decode(row["peak_zindex"]),
            mean_value=row["mean_value"],
            threshold=row["threshold"],
        )


class LandmarkDatabase:
    """Stores and queries landmarks inside a node-style database.

    Args:
        db: the hosting database; must have an ``ssd`` device.
    """

    def __init__(self, db: Database) -> None:
        self._db = db
        self._ids = itertools.count(1)
        db.create_table(
            TableSchema(
                "landmark",
                (
                    Column("id", ColumnType.INTEGER),
                    Column("dataset", ColumnType.TEXT),
                    Column("field", ColumnType.TEXT),
                    Column("timestep", ColumnType.INTEGER),
                    Column("xl", ColumnType.INTEGER),
                    Column("yl", ColumnType.INTEGER),
                    Column("zl", ColumnType.INTEGER),
                    Column("xu", ColumnType.INTEGER),
                    Column("yu", ColumnType.INTEGER),
                    Column("zu", ColumnType.INTEGER),
                    Column("point_count", ColumnType.INTEGER),
                    Column("peak_value", ColumnType.FLOAT),
                    Column("peak_zindex", ColumnType.BIGINT),
                    Column("mean_value", ColumnType.FLOAT),
                    Column("threshold", ColumnType.FLOAT),
                ),
                primary_key=("id",),
                indexes={"by_field": ("dataset", "field")},
            ),
            device="ssd",
        )

    # -- recording -------------------------------------------------------------

    def record_threshold_result(
        self,
        query: ThresholdQuery,
        result: ThresholdResult,
        domain_side: int,
        linking_length: int = 2,
        min_size: int = 2,
    ) -> list[int]:
        """Cluster a threshold result and store one landmark per cluster.

        Returns the new landmark ids (sorted by descending cluster size).
        """
        if len(result) == 0:
            return []
        coords = result.coordinates()
        clusters = friends_of_friends(
            coords, result.values, domain_side,
            linking_length=linking_length, min_size=min_size,
        )
        ids = []
        with self._db.transaction() as txn:
            table = self._db.table("landmark")
            for cluster in clusters:
                member_coords = coords[cluster.indices]
                member_values = result.values[cluster.indices]
                box = Box(
                    tuple(int(v) for v in member_coords.min(axis=0)),
                    tuple(int(v) + 1 for v in member_coords.max(axis=0)),
                )
                landmark_id = next(self._ids)
                table.insert(
                    txn,
                    {
                        "id": landmark_id,
                        "dataset": query.dataset,
                        "field": query.field,
                        "timestep": query.timestep,
                        "xl": box.lo[0], "yl": box.lo[1], "zl": box.lo[2],
                        "xu": box.hi[0], "yu": box.hi[1], "zu": box.hi[2],
                        "point_count": cluster.size,
                        "peak_value": cluster.peak_value,
                        "peak_zindex": int(result.zindexes[cluster.peak_index]),
                        "mean_value": float(member_values.mean()),
                        "threshold": float(query.threshold),
                    },
                )
                ids.append(landmark_id)
        return ids

    # -- queries ----------------------------------------------------------------

    def landmarks(
        self,
        dataset: str | None = None,
        field: str | None = None,
        timestep: int | None = None,
        min_peak: float | None = None,
    ) -> list[Landmark]:
        """All landmarks matching the given filters, most intense first."""
        with self._db.transaction() as txn:
            if dataset is not None and field is not None:
                rows = list(
                    self._db.table("landmark").lookup(
                        txn, "by_field", (dataset, field)
                    )
                )
            else:
                rows = list(self._db.table("landmark").scan(txn))
        out = []
        for row in rows:
            if dataset is not None and row["dataset"] != dataset:
                continue
            if field is not None and row["field"] != field:
                continue
            if timestep is not None and row["timestep"] != timestep:
                continue
            if min_peak is not None and row["peak_value"] < min_peak:
                continue
            out.append(Landmark._from_row(row))
        out.sort(key=lambda lm: -lm.peak_value)
        return out

    def most_intense(
        self, dataset: str, field: str, k: int = 10
    ) -> list[Landmark]:
        """The ``k`` highest-peak landmarks of a field, dataset-wide."""
        return self.landmarks(dataset, field)[:k]

    def in_region(self, box: Box, dataset: str | None = None) -> list[Landmark]:
        """Landmarks whose bounding boxes intersect ``box``."""
        return [
            lm
            for lm in self.landmarks(dataset=dataset)
            if lm.box.intersection(box) is not None
        ]

    def count(self) -> int:
        """Number of stored landmarks."""
        with self._db.transaction() as txn:
            return self._db.table("landmark").count(txn)

    def forget(self, landmark_id: int) -> bool:
        """Remove a landmark; returns whether it existed."""
        with self._db.transaction() as txn:
            return self._db.table("landmark").delete(txn, (landmark_id,))
