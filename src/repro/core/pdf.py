"""Per-node probability-density (histogram) evaluation.

"If they are interested in the density distribution of values they can
examine the probability density function (e.g. Fig. 2), which is
computed using a similar strategy to threshold queries" (paper §4).
The node reads its share of the timestep, computes the derived field's
norm, and histograms it; the mediator sums the per-node counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.costmodel import CostLedger
from repro.core.executor import NodeExecutor
from repro.core.query import PdfQuery
from repro.fields.derived import FieldRegistry
from repro.grid import Box
from repro.obs import tracing
from repro.storage import SerializationConflictError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.node import DatabaseNode
    from repro.core.pdfcache import PdfCache


@dataclass
class NodePdfResult:
    """One node's histogram contribution."""

    counts: np.ndarray
    ledger: CostLedger
    cache_hit: bool = False


def get_pdf_on_node(
    node: "DatabaseNode",
    executor: NodeExecutor,
    registry: FieldRegistry,
    query: PdfQuery,
    boxes: list[Box],
    processes: int = 1,
    pdf_cache: "PdfCache | None" = None,
) -> NodePdfResult:
    """Histogram the field norm over this node's ``boxes``.

    With a :class:`~repro.core.pdfcache.PdfCache`, the node's share of a
    previously-computed histogram (same field, timestep, FD order and
    bin edges) is answered from the SSD table without touching the raw
    data — the "other query types" cache extension of paper §4.
    """
    ledger = CostLedger()
    if not boxes:
        return NodePdfResult(np.zeros(len(query.bin_edges), np.int64), ledger)
    dataset_spec = node.dataset(query.dataset)
    derived = registry.get(query.field)
    txn = node.db.begin(ledger)
    try:
        if pdf_cache is not None:
            with tracing.span("cache.lookup", category="cache_lookup") as probe:
                cached = pdf_cache.lookup(
                    txn, query.dataset, query.field, query.timestep,
                    query.fd_order, query.bin_edges,
                )
                probe.set("hit", cached is not None)
            if cached is not None:
                txn.commit()
                return NodePdfResult(cached, ledger, cache_hit=True)
        with tracing.span("node.evaluate"):
            evaluation = executor.evaluate(
                txn, ledger, dataset_spec, derived, query.timestep,
                boxes, threshold=np.inf, fd_order=query.fd_order,
                processes=processes, bin_edges=query.bin_edges,
            )
        if pdf_cache is not None:
            pdf_cache.store(
                txn, query.dataset, query.field, query.timestep,
                query.fd_order, query.bin_edges, evaluation.histogram,
            )
        txn.commit()
    except SerializationConflictError:
        # A concurrent query stored the same histogram first; theirs is
        # identical, so keep our computed counts and drop the store.
        txn.abort()
    except Exception:
        txn.abort()
        raise
    return NodePdfResult(evaluation.histogram, ledger)
