"""Per-node top-k evaluation.

Top-k queries use the same data-parallel machinery as threshold queries
(paper §1: "our approach applies to the evaluation of top-k queries ...
and data-reducing queries in general"): each node returns its local top
k and the mediator keeps the k globally largest.  Unlike classic top-k
pruning, no monotone-score assumption is needed — the kernel computation
runs at every grid point regardless.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.costmodel import CostLedger
from repro.core.executor import NodeExecutor
from repro.core.query import TopKQuery
from repro.fields.derived import FieldRegistry
from repro.grid import Box

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.node import DatabaseNode


@dataclass
class NodeTopKResult:
    """One node's local top-k candidates."""

    zindexes: np.ndarray
    values: np.ndarray
    ledger: CostLedger


def get_topk_on_node(
    node: "DatabaseNode",
    executor: NodeExecutor,
    registry: FieldRegistry,
    query: TopKQuery,
    boxes: list[Box],
    processes: int = 1,
    cache=None,
) -> NodeTopKResult:
    """The local top ``query.k`` points over this node's ``boxes``.

    With a semantic cache attached, a box whose cached threshold entry
    holds at least ``k`` points answers from the cache: every point of
    the box's true top-k is at least as large as the k-th largest cached
    value, which itself is at or above the cached threshold — so the
    top-k is a subset of the cached points.  Boxes without such an entry
    are evaluated from the raw data.
    """
    ledger = CostLedger()
    if not boxes:
        return NodeTopKResult(
            np.empty(0, np.uint64), np.empty(0, np.float64), ledger
        )
    dataset_spec = node.dataset(query.dataset)
    derived = registry.get(query.field)
    all_z: list[np.ndarray] = []
    all_v: list[np.ndarray] = []
    with node.db.transaction(ledger) as txn:
        pending: list[Box] = []
        for box in boxes:
            served = False
            if cache is not None:
                lookup = cache.lookup(
                    txn, query.dataset, query.field, query.timestep,
                    box, threshold=0.0,
                )
                # threshold=0 only hits an entry cached at threshold 0;
                # probe instead for any entry covering the box and take
                # its points when there are at least k of them.
                if not lookup.hit and lookup.stale_ordinal is not None:
                    zindexes, values = cache._read_points(
                        txn, lookup.stale_ordinal, box, lookup.stale_box,
                        threshold=0.0,
                    )
                    if len(values) >= query.k:
                        keep = np.argpartition(values, -query.k)[-query.k:]
                        all_z.append(zindexes[keep])
                        all_v.append(values[keep])
                        served = True
                elif lookup.hit and len(lookup.values) >= query.k:
                    keep = np.argpartition(lookup.values, -query.k)[-query.k:]
                    all_z.append(lookup.zindexes[keep])
                    all_v.append(lookup.values[keep])
                    served = True
            if not served:
                pending.append(box)
        if pending:
            evaluation = executor.evaluate(
                txn, ledger, dataset_spec, derived, query.timestep,
                pending, threshold=0.0, fd_order=query.fd_order,
                processes=processes, topk=query.k,
            )
            all_z.append(evaluation.zindexes)
            all_v.append(evaluation.values)
    zindexes = np.concatenate(all_z) if all_z else np.empty(0, np.uint64)
    values = np.concatenate(all_v) if all_v else np.empty(0, np.float64)
    return NodeTopKResult(zindexes, values, ledger)
