"""The application-aware semantic cache for threshold-query results.

The cache is "comprised of two database tables" (paper §4): ``cacheInfo``
holds per-entry metadata (dataset, field, timestep, spatial region,
threshold, recency) and ``cacheData`` holds the matching points, foreign-
key constrained to its ``cacheInfo`` entry.  Both live on the node's SSD
device and are accessed under snapshot-isolation transactions.

A cached entry answers a later query when the query asks for the same
(dataset, field, timestep), a region contained in the cached region, and
a threshold at or above the cached one (*threshold dominance*) — the
matching points are then a subset of the cached points, so the query is
served by an index scan of ``cacheData`` with no raw I/O and no kernel
computation.  Queries below the cached threshold or outside the cached
region must be re-evaluated from the raw data, and the fresher, larger
result replaces the entry.

Replacement is least-recently-used across all cached quantities, bounded
by a byte budget (the paper's per-node SSD space).

Unlike the paper's literal per-point ``cacheData`` table, points are
persisted as packed Morton-sorted chunks (:mod:`repro.core.pointset`):
one row per ~4096 points with per-chunk Morton bounds and value maximum,
so ``store`` issues O(points/4096) inserts through
:meth:`~repro.storage.table.Table.insert_many` and ``lookup`` prunes
whole chunks against the query box and threshold before decoding any
point.  Hit/miss/eviction semantics and byte accounting
(``point_count * point_record_bytes``) are unchanged — see DESIGN.md.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass

import numpy as np

from repro.core import pointset
from repro.grid import Box
from repro.morton import decode_array
from repro.morton.ranges import box_to_ranges
from repro.storage import (
    Column,
    ColumnType,
    Database,
    DuplicateKeyError,
    ForeignKey,
    SerializationConflictError,
    TableSchema,
    Transaction,
)

#: Default cache capacity per node; the paper's nodes had ~200 GB of SSD,
#: scaled here for laptop-size datasets.
DEFAULT_CAPACITY_BYTES = 256 * 1024 * 1024


def _covering_side(box: Box) -> int:
    """Smallest power-of-two domain side enclosing ``box``.

    Morton codes are domain-independent, so any power-of-two side at or
    beyond the box's upper corner yields the same exact range cover.
    """
    side = 1
    while side < max(box.hi):
        side *= 2
    return side


@dataclass
class CacheLookup:
    """Outcome of a cache probe.

    ``hit`` carries the points answering the query.  On a miss,
    ``stale_ordinal`` identifies an existing entry for the same
    (dataset, field, timestep, region) whose threshold was too high to
    answer from — the update path replaces it.
    """

    hit: bool
    zindexes: np.ndarray | None = None
    values: np.ndarray | None = None
    stale_ordinal: int | None = None
    stale_box: Box | None = None


class CacheStats:
    """Thread-safe workload counters for a cache instance.

    Updated on the query path (plain increments under a lock — the
    scatter pool probes one node's cache from several threads) and
    sampled by the observability layer at export time.
    """

    __slots__ = (
        "_lock", "hits", "misses", "dominance_rejections",
        "evictions", "stored_points", "stored_bytes", "chunks_pruned",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.dominance_rejections = 0
        self.evictions = 0
        self.stored_points = 0
        self.stored_bytes = 0
        self.chunks_pruned = 0

    def record_hit(self) -> None:
        """Count one probe answered from the cache."""
        with self._lock:
            self.hits += 1

    def record_miss(self, dominance_rejected: bool = False) -> None:
        """Count one probe that fell through to raw evaluation.

        ``dominance_rejected`` marks misses where an entry covered the
        region but its threshold was too high to answer from (threshold
        dominance failed, paper §4).
        """
        with self._lock:
            self.misses += 1
            if dominance_rejected:
                self.dominance_rejections += 1

    def record_store(self, points: int, nbytes: int) -> None:
        """Count one freshly-stored entry of ``points`` / ``nbytes``."""
        with self._lock:
            self.stored_points += points
            self.stored_bytes += nbytes

    def record_eviction(self) -> None:
        """Count one capacity eviction."""
        with self._lock:
            self.evictions += 1

    def record_pruned(self, chunks: int) -> None:
        """Count stored chunks a hit skipped without decoding."""
        with self._lock:
            self.chunks_pruned += chunks

    def snapshot(self) -> dict[str, int]:
        """A consistent copy of all counters."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "dominance_rejections": self.dominance_rejections,
                "evictions": self.evictions,
                "stored_points": self.stored_points,
                "stored_bytes": self.stored_bytes,
                "chunks_pruned": self.chunks_pruned,
            }


class SemanticCache:
    """Per-node query-result cache backed by SSD-resident tables.

    Args:
        db: the node's database (must already have an ``ssd`` device).
        capacity_bytes: byte budget over all cached points.
        point_record_bytes: stored bytes per cached point, for budget
            accounting (index + row overhead included, paper §4).
    """

    #: Supported replacement policies.  The paper uses LRU; FIFO is kept
    #: as an ablation baseline.
    POLICIES = ("lru", "fifo")

    def __init__(
        self,
        db: Database,
        capacity_bytes: int = DEFAULT_CAPACITY_BYTES,
        point_record_bytes: int = 20,
        policy: str = "lru",
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if policy not in self.POLICIES:
            raise ValueError(f"policy must be one of {self.POLICIES}")
        self._db = db
        self.capacity_bytes = capacity_bytes
        self.point_record_bytes = point_record_bytes
        self.policy = policy
        self._ordinals = itertools.count(1)
        self._recency = itertools.count(1)
        self.stats = CacheStats()
        self._create_tables()

    def _create_tables(self) -> None:
        self._db.create_table(
            TableSchema(
                "cacheInfo",
                (
                    Column("ordinal", ColumnType.INTEGER),
                    Column("dataset", ColumnType.TEXT),
                    Column("field", ColumnType.TEXT),
                    Column("timestep", ColumnType.INTEGER),
                    Column("threshold", ColumnType.FLOAT),
                    Column("xl", ColumnType.INTEGER),
                    Column("yl", ColumnType.INTEGER),
                    Column("zl", ColumnType.INTEGER),
                    Column("xu", ColumnType.INTEGER),
                    Column("yu", ColumnType.INTEGER),
                    Column("zu", ColumnType.INTEGER),
                    Column("last_used", ColumnType.BIGINT),
                    Column("point_count", ColumnType.INTEGER),
                    Column("byte_size", ColumnType.BIGINT),
                ),
                primary_key=("ordinal",),
                indexes={"by_query": ("dataset", "field", "timestep")},
            ),
            device="ssd",
        )
        # One row per packed point chunk, not per point: the column
        # blobs hold up to pointset.CHUNK_POINTS Morton-sorted points
        # and the metadata columns support pruning without decoding.
        self._db.create_table(
            TableSchema(
                "cacheData",
                (
                    Column("cacheInfoOrdinal", ColumnType.INTEGER),
                    Column("chunkSeq", ColumnType.INTEGER),
                    Column("zLo", ColumnType.BIGINT),
                    Column("zHi", ColumnType.BIGINT),
                    Column("valueMax", ColumnType.FLOAT),
                    Column("pointCount", ColumnType.INTEGER),
                    Column("zBlob", ColumnType.BLOB),
                    Column("vBlob", ColumnType.BLOB),
                ),
                primary_key=("cacheInfoOrdinal", "chunkSeq"),
                indexes={"by_info": ("cacheInfoOrdinal",)},
                foreign_keys=(
                    ForeignKey(("cacheInfoOrdinal",), "cacheInfo", cascade=True),
                ),
            ),
            device="ssd",
        )

    # -- probe ---------------------------------------------------------------

    def lookup(
        self,
        txn: Transaction,
        dataset: str,
        field: str,
        timestep: int,
        box: Box,
        threshold: float,
    ) -> CacheLookup:
        """Probe the cache for a query (Algorithm 1, lines 4-28).

        Returns a hit when some entry's region contains ``box`` and its
        stored threshold is at or below ``threshold``; the returned
        points are filtered to ``box`` and ``threshold``.
        """
        entries = self._db.sql(
            txn,
            "SELECT * FROM cacheInfo WHERE dataset = ? AND field = ?"
            " AND timestep = ?",
            [dataset, field, timestep],
        )
        stale_ordinal = None
        stale_box = None
        for entry in entries:
            cached_box = Box.from_corners(
                (entry["xl"], entry["yl"], entry["zl"],
                 entry["xu"], entry["yu"], entry["zu"])
            )
            if not cached_box.contains_box(box):
                continue
            if entry["threshold"] > threshold:
                stale_ordinal = entry["ordinal"]
                stale_box = cached_box
                continue
            zindexes, values = self._read_points(
                txn, entry["ordinal"], box, cached_box, threshold
            )
            self._touch(txn, entry["ordinal"])
            self.stats.record_hit()
            return CacheLookup(hit=True, zindexes=zindexes, values=values)
        self.stats.record_miss(dominance_rejected=stale_ordinal is not None)
        return CacheLookup(
            hit=False, stale_ordinal=stale_ordinal, stale_box=stale_box
        )

    def _read_points(
        self,
        txn: Transaction,
        ordinal: int,
        box: Box,
        cached_box: Box,
        threshold: float,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Decode an entry's points filtered to ``box`` and ``threshold``.

        Chunk metadata is consulted first: chunks whose ``valueMax``
        falls below the threshold, or whose Morton interval misses the
        query box's range cover, are skipped without touching their
        blobs (counted in ``stats.chunks_pruned``).  Surviving chunks
        are decoded and mask-filtered exactly as the seed filtered
        individual rows; chunks are stored in global Morton order, so
        the concatenated result is already sorted.
        """
        rows = sorted(
            self._db.sql(
                txn,
                "SELECT * FROM cacheData WHERE cacheInfoOrdinal = ?",
                [ordinal],
            ),
            key=lambda r: r["chunkSeq"],
        )
        if not rows:
            return np.empty(0, np.uint64), np.empty(0, np.float64)
        keep = np.array([r["valueMax"] >= threshold for r in rows], dtype=bool)
        if box != cached_box:
            keep &= pointset.chunks_overlapping_ranges(
                np.array([r["zLo"] for r in rows], dtype=np.uint64),
                np.array([r["zHi"] for r in rows], dtype=np.uint64),
                box_to_ranges(box.lo, box.hi, _covering_side(box)),
            )
        self.stats.record_pruned(len(rows) - int(keep.sum()))
        survivors = [row for row, live in zip(rows, keep.tolist()) if live]
        if not survivors:
            return np.empty(0, np.uint64), np.empty(0, np.float64)
        # Chunks are stored in global Morton order, so joining the
        # surviving blobs decodes straight into sorted columns — one
        # frombuffer per column and one mask pass over all points,
        # instead of decode/filter/collect per chunk.
        zindexes, values = pointset.chunk_arrays(
            b"".join(row["zBlob"] for row in survivors),
            b"".join(row["vBlob"] for row in survivors),
        )
        mask = values >= threshold
        if box != cached_box:
            x, y, z = decode_array(zindexes)
            for axis, coords in enumerate((x, y, z)):
                mask &= (coords >= box.lo[axis]) & (coords < box.hi[axis])
        if not mask.all():
            zindexes, values = zindexes[mask], values[mask]
        return pointset.merge_sorted_runs([(zindexes, values)])

    def _touch(self, txn: Transaction, ordinal: int) -> None:
        """Bump an entry's recency; lost races are harmless.

        A concurrent refresh of the same entry makes this update a
        snapshot-isolation write conflict.  Recency is advisory — losing
        one bump cannot affect correctness — so the conflict is swallowed
        rather than failing the read that produced the hit.
        """
        try:
            self._db.table("cacheInfo").update(
                txn, (ordinal,), {"last_used": next(self._recency)}
            )
        except SerializationConflictError:
            pass

    # -- update --------------------------------------------------------------

    def store(
        self,
        txn: Transaction,
        dataset: str,
        field: str,
        timestep: int,
        box: Box,
        threshold: float,
        zindexes: np.ndarray,
        values: np.ndarray,
        replace_ordinal: int | None = None,
    ) -> int:
        """Insert a freshly-evaluated result (Algorithm 1, line 37).

        Evicts least-recently-used entries until the new entry fits, and
        replaces ``replace_ordinal`` (the stale entry found at lookup)
        when given.  Returns the new entry's ordinal.

        Raises:
            ValueError: if the result alone exceeds the cache capacity.
        """
        if len(zindexes) != len(values):
            raise ValueError("zindexes and values must align")
        try:
            chunks = pointset.pack_chunks(zindexes, values)
        except ValueError as exc:
            # The row-per-point schema rejected repeated zindexes via its
            # (ordinal, zindex) primary key; keep raising the same error.
            raise DuplicateKeyError(f"cacheData: {exc}") from exc
        new_bytes = len(zindexes) * self.point_record_bytes
        if new_bytes > self.capacity_bytes:
            raise ValueError(
                f"result of {new_bytes} bytes exceeds cache capacity "
                f"{self.capacity_bytes}"
            )
        if replace_ordinal is not None:
            self._db.table("cacheInfo").delete(txn, (replace_ordinal,))
        self._evict_until_fits(txn, new_bytes)

        ordinal = next(self._ordinals)
        info = self._db.table("cacheInfo")
        info.insert(
            txn,
            {
                "ordinal": ordinal,
                "dataset": dataset,
                "field": field,
                "timestep": timestep,
                "threshold": float(threshold),
                "xl": box.lo[0], "yl": box.lo[1], "zl": box.lo[2],
                "xu": box.hi[0], "yu": box.hi[1], "zu": box.hi[2],
                "last_used": next(self._recency),
                "point_count": len(zindexes),
                "byte_size": new_bytes,
            },
        )
        self._db.table("cacheData").insert_many(
            txn,
            [
                {
                    "cacheInfoOrdinal": ordinal,
                    "chunkSeq": chunk.seq,
                    "zLo": chunk.z_lo,
                    "zHi": chunk.z_hi,
                    "valueMax": chunk.value_max,
                    "pointCount": chunk.count,
                    "zBlob": chunk.zblob,
                    "vBlob": chunk.vblob,
                }
                for chunk in chunks
            ],
        )
        self.stats.record_store(len(zindexes), new_bytes)
        return ordinal

    def _evict_until_fits(self, txn: Transaction, new_bytes: int) -> None:
        """Eviction "across all quantities" (paper §4): LRU, or FIFO
        (insertion order) under the ablation policy."""
        victim_order = "last_used" if self.policy == "lru" else "ordinal"
        while self.used_bytes(txn) + new_bytes > self.capacity_bytes:
            victims = self._db.sql(
                txn,
                f"SELECT ordinal FROM cacheInfo ORDER BY {victim_order} ASC"
                " LIMIT 1",
            )
            if not victims:
                return
            self._db.table("cacheInfo").delete(txn, (victims[0]["ordinal"],))
            self.stats.record_eviction()

    # -- introspection ----------------------------------------------------------

    def used_bytes(self, txn: Transaction) -> int:
        """Bytes currently accounted to cached entries."""
        total = self._db.sql(txn, "SELECT SUM(byte_size) FROM cacheInfo")
        return int(total or 0)

    def data_point_count(self, txn: Transaction) -> int:
        """Total points across all stored chunks (visible to ``txn``)."""
        total = self._db.sql(txn, "SELECT SUM(pointCount) FROM cacheData")
        return int(total or 0)

    def entry_points(
        self, txn: Transaction, ordinal: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Decode every point of one entry, unfiltered, in Morton order."""
        rows = sorted(
            self._db.sql(
                txn,
                "SELECT * FROM cacheData WHERE cacheInfoOrdinal = ?",
                [ordinal],
            ),
            key=lambda r: r["chunkSeq"],
        )
        parts = [pointset.chunk_arrays(r["zBlob"], r["vBlob"]) for r in rows]
        return pointset.merge_sorted_runs(parts)

    def entry_count(self, txn: Transaction) -> int:
        """Number of cached entries visible to ``txn``."""
        return self._db.table("cacheInfo").count(txn)

    def drop_timestep(self, dataset: str, field: str, timestep: int) -> int:
        """Drop all entries for one (dataset, field, timestep).

        Used by the experiments to force cache misses ("cache entries for
        the particular time-step queried were dropped before each run",
        paper §5.2).  Returns the number of entries removed.
        """
        with self._db.transaction() as txn:
            return self._db.sql(
                txn,
                "DELETE FROM cacheInfo WHERE dataset = ? AND field = ?"
                " AND timestep = ?",
                [dataset, field, timestep],
            )

    def clear(self) -> int:
        """Drop every entry; returns how many were removed."""
        with self._db.transaction() as txn:
            return self._db.sql(txn, "DELETE FROM cacheInfo")
