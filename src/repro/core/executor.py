"""Per-node data-parallel evaluation of derived fields from raw atoms.

On a cache miss the node evaluates its share of the query from the raw
data (paper §4): its share of the spatial region is split into slabs —
one chain per worker process — and each slab's evaluation reads the
covering atoms plus a kernel-half-width halo (fetching boundary atoms
from the owning peer node when necessary), assembles them into an array,
runs the derived field's kernel, and scans the interior against the
threshold.

Simulated time follows the paper's parallelism analysis (§5.3):

* compute parallelises perfectly across the process chains — the
  COMPUTE category is set to the busiest chain;
* I/O does not — all chains read from the same disk arrays, so the IO
  category is re-derived from the total bytes and seeks through the HDD
  contention model at ``streams = processes``;
* halo reads are *redundant* across chains (each fetches its own
  boundary), so I/O work genuinely grows with the process count,
  exactly as the paper observes.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol

import numpy as np

from repro.core.pointset import merge_sorted_runs
from repro.costmodel import Category, CostLedger
from repro.costmodel.ledger import (
    METER_COMPUTE_UNITS,
    METER_HALO_SECONDS,
    METER_IO_BYTES,
    METER_IO_SEEKS,
)
from repro.fields.derived import DerivedField
from repro.grid import Box, split_slabs
from repro.obs import tracing
from repro.grid.atoms import atom_ranges_covering
from repro.morton import MortonRange, encode_array
from repro.simulation.datasets import DatasetSpec
from repro.simulation.ingest import array_from_atoms
from repro.storage import Transaction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from typing import Sequence

    from repro.cluster.node import DatabaseNode
    from repro.cluster.partition import MortonPartitioner


class HaloPeer(Protocol):
    """What the executor needs from a peer node: boundary-band reads.

    In-process clusters pass the :class:`DatabaseNode` objects
    themselves; a node server running in its own OS process passes RPC
    proxies (see :class:`repro.net.server.RemoteHaloPeer`) with the
    same signature and charging contract.
    """

    def serve_halo(
        self,
        dataset: str,
        field: str,
        timestep: int,
        ranges: "list[MortonRange]",
        ledger: CostLedger | None,
    ) -> dict[int, bytes]:
        """Atoms of ``ranges``; transfer time charged to ``ledger``."""
        ...


@dataclass
class RawEvaluation:
    """Result of evaluating one node's share from the raw data."""

    zindexes: np.ndarray
    values: np.ndarray
    histogram: np.ndarray | None = None

    @classmethod
    def empty(cls) -> "RawEvaluation":
        return cls(np.empty(0, np.uint64), np.empty(0, np.float64))


class NodeExecutor:
    """Evaluates queries over one node's share of the data.

    Args:
        node: the node whose atoms this executor reads.
        peers: all cluster nodes indexed by node id (for halo fetches);
            any :class:`HaloPeer` works, so a node server substitutes
            RPC proxies for its remote peers.
        partitioner: the cluster's spatial partitioner.
    """

    def __init__(
        self,
        node: "DatabaseNode",
        peers: "Sequence[HaloPeer]",
        partitioner: "MortonPartitioner",
    ) -> None:
        self._node = node
        self._peers = peers
        self._partitioner = partitioner

    def evaluate(
        self,
        txn: Transaction,
        ledger: CostLedger,
        dataset_spec: DatasetSpec,
        derived: DerivedField,
        timestep: int,
        boxes: list[Box],
        threshold: float,
        fd_order: int,
        processes: int = 1,
        io_only: bool = False,
        bin_edges: tuple[float, ...] | None = None,
        topk: int | None = None,
        prefetched: dict[int, bytes] | None = None,
    ) -> RawEvaluation:
        """Evaluate ``derived`` over ``boxes`` against ``threshold``.

        Args:
            txn: the node-query transaction (its ledger is ``ledger``).
            ledger: cost ledger of the node query.
            boxes: this node's rectangular pieces of the query region.
            processes: worker processes per node (slab chains).
            io_only: read the data but skip kernels and thresholding
                (the paper's Fig. 8 I/O-only mode).
            bin_edges: when given, also histogram the norms (PDF query);
                the final bin is open-ended.
            topk: when given, return the ``topk`` highest-norm points of
                this node's share instead of thresholding (``threshold``
                is ignored).
            prefetched: remote boundary atoms already fetched by the
                caller (see :meth:`prefetch_halo`); when given, no halo
                RPC is issued here at all.

        Returns:
            a :class:`RawEvaluation` with matching points (empty when
            ``io_only``) and the histogram when requested.
        """
        if processes < 1:
            raise ValueError("processes must be >= 1")
        chains = self._assign_slabs(boxes, processes)
        chain_compute = [0.0] * len(chains)
        all_z: list[np.ndarray] = []
        all_v: list[np.ndarray] = []
        histogram = (
            np.zeros(len(bin_edges), dtype=np.int64)
            if bin_edges is not None
            else None
        )

        halo = derived.halo(fd_order)
        for chain_id, slabs in enumerate(chains):
            chain_atoms = (
                prefetched
                if prefetched is not None
                else self._prefetch_halo(
                    ledger, dataset_spec, derived.source, timestep, slabs, halo
                )
            )
            for slab in slabs:
                with tracing.span("node.io", category="io"):
                    block = self._fetch_block(
                        txn, ledger, dataset_spec, derived, timestep, slab,
                        fd_order, halo=halo, prefetched=chain_atoms,
                    )
                if io_only:
                    continue
                with tracing.span("node.kernel", category="compute") as kernel_span:
                    kernel_span.set("field", derived.name)
                    norm = derived.norm(block, dataset_spec.spacing, fd_order)
                    units = slab.volume * derived.units_per_point
                    chain_compute[chain_id] += self._node.spec.cpu.compute_time(
                        slab.volume, derived.units_per_point
                    )
                    ledger.count(METER_COMPUTE_UNITS, units)
                    if histogram is not None:
                        histogram += _histogram_open_ended(norm, bin_edges)
                    if topk is not None:
                        zidx, vals = _topk_scan(norm, slab, topk)
                    else:
                        zidx, vals = _threshold_scan(norm, slab, threshold)
                if len(zidx):
                    all_z.append(zidx)
                    all_v.append(vals)

        # Parallel-time composition (see module docstring).  Compute is
        # *charged* (not overwritten) so that several evaluate() calls on
        # the same ledger compose serially; I/O is re-derived from the
        # ledger's running byte/seek totals, so overwriting is correct.
        ledger.charge(Category.COMPUTE, max(chain_compute, default=0.0))
        io_bytes = ledger.meter(METER_IO_BYTES)
        io_seeks = ledger.meter(METER_IO_SEEKS)
        if io_bytes or io_seeks:
            ledger.set_category(
                Category.IO,
                self._node.spec.hdd.read_time(
                    int(io_bytes), seeks=int(io_seeks), streams=processes
                )
                + ledger.meter(METER_HALO_SECONDS),
            )

        # Slab results are Morton-sorted runs; disjoint slabs in curve
        # order merge by concatenation, interleaved ones by one argsort.
        zindexes, values = merge_sorted_runs(list(zip(all_z, all_v)))
        if topk is not None and len(values) > topk:
            keep = np.argpartition(values, -topk)[-topk:]
            keep.sort()  # restore Morton order after the selection
            zindexes, values = zindexes[keep], values[keep]
        return RawEvaluation(zindexes, values, histogram)

    def evaluate_batch(
        self,
        txn: Transaction,
        ledger: CostLedger,
        dataset_spec: DatasetSpec,
        deriveds: list[DerivedField],
        timestep: int,
        boxes: list[Box],
        thresholds: list[float],
        fd_order: int,
        processes: int = 1,
    ) -> list[RawEvaluation]:
        """Evaluate several same-source fields from one shared scan.

        The atoms covering each slab (plus the *widest* field's halo) are
        read once; every field's kernel then runs on the same in-memory
        block.  Fields must share their raw source field.

        Returns one :class:`RawEvaluation` per (derived, threshold) pair,
        in order.
        """
        if len(deriveds) != len(thresholds):
            raise ValueError("deriveds and thresholds must align")
        if not deriveds:
            return []
        source = deriveds[0].source
        if any(d.source != source for d in deriveds):
            raise ValueError("batched fields must share one source field")
        if processes < 1:
            raise ValueError("processes must be >= 1")

        halo = max(d.halo(fd_order) for d in deriveds)
        chains = self._assign_slabs(boxes, processes)
        chain_compute = [0.0] * len(chains)
        collected_z: list[list[np.ndarray]] = [[] for _ in deriveds]
        collected_v: list[list[np.ndarray]] = [[] for _ in deriveds]

        for chain_id, slabs in enumerate(chains):
            prefetched = self._prefetch_halo(
                ledger, dataset_spec, source, timestep, slabs, halo
            )
            for slab in slabs:
                block = self._fetch_block(
                    txn, ledger, dataset_spec, deriveds[0], timestep, slab,
                    fd_order, halo=halo, prefetched=prefetched,
                )
                for i, (derived, threshold) in enumerate(
                    zip(deriveds, thresholds)
                ):
                    own_halo = derived.halo(fd_order)
                    trim = halo - own_halo
                    view = block if trim == 0 else block[
                        (slice(trim, -trim),) * 3
                    ]
                    norm = derived.norm(view, dataset_spec.spacing, fd_order)
                    chain_compute[chain_id] += self._node.spec.cpu.compute_time(
                        slab.volume, derived.units_per_point
                    )
                    ledger.count(
                        METER_COMPUTE_UNITS,
                        slab.volume * derived.units_per_point,
                    )
                    zidx, vals = _threshold_scan(norm, slab, threshold)
                    if len(zidx):
                        collected_z[i].append(zidx)
                        collected_v[i].append(vals)

        ledger.charge(Category.COMPUTE, max(chain_compute, default=0.0))
        io_bytes = ledger.meter(METER_IO_BYTES)
        io_seeks = ledger.meter(METER_IO_SEEKS)
        if io_bytes or io_seeks:
            ledger.set_category(
                Category.IO,
                self._node.spec.hdd.read_time(
                    int(io_bytes), seeks=int(io_seeks), streams=processes
                )
                + ledger.meter(METER_HALO_SECONDS),
            )

        out = []
        for z_parts, v_parts in zip(collected_z, collected_v):
            if z_parts:
                zindexes, values = merge_sorted_runs(list(zip(z_parts, v_parts)))
                out.append(RawEvaluation(zindexes, values))
            else:
                out.append(RawEvaluation.empty())
        return out

    # -- internals ---------------------------------------------------------------

    def _assign_slabs(self, boxes: list[Box], processes: int) -> list[list[Box]]:
        """Split each box into per-process slabs; chain p gets slab p of each."""
        chains: list[list[Box]] = [[] for _ in range(processes)]
        for box in boxes:
            for i, slab in enumerate(split_slabs(box, processes)):
                chains[i % processes].append(slab)
        return [chain for chain in chains if chain] or [[]]

    def _fetch_block(
        self,
        txn: Transaction,
        ledger: CostLedger,
        dataset_spec: DatasetSpec,
        derived: DerivedField,
        timestep: int,
        slab: Box,
        fd_order: int,
        halo: int | None = None,
        prefetched: dict[int, bytes] | None = None,
    ) -> np.ndarray:
        """Read and assemble ``slab`` plus its halo into one array."""
        if halo is None:
            halo = derived.halo(fd_order)
        expanded = slab.expand(halo)
        side = dataset_spec.side
        ncomp = derived.source_components
        if any(n > side for n in expanded.shape):
            # The slab plus halo wraps all the way around the domain
            # (single-node clusters on small grids): read the whole
            # domain once and index it periodically.
            domain = Box.cube(side)
            atoms = self._fetch_atoms(
                txn, ledger, dataset_spec, derived.source, timestep, domain,
                prefetched=prefetched,
            )
            full = array_from_atoms(domain, atoms, ncomp)
            # Periodic extension by pad-and-slice: np.pad's wrap mode
            # copies whole contiguous faces, an order of magnitude
            # faster than the equivalent np.ix_ fancy-index gather.
            margins = [
                (max(0, -lo), max(0, hi - side))
                for lo, hi in zip(expanded.lo, expanded.hi)
            ]
            padded = np.pad(full, [*margins, (0, 0)], mode="wrap")
            trim = tuple(
                slice(lo + before, hi + before)
                for (lo, hi), (before, _after) in zip(
                    zip(expanded.lo, expanded.hi), margins
                )
            )
            return np.ascontiguousarray(padded[trim])
        block = np.empty(expanded.shape + (ncomp,), dtype=np.float32)
        pieces = list(expanded.wrap_periodic(side))
        # One combined fetch for every wrapped piece: all ranges owned
        # by one peer travel in a single halo RPC instead of one RPC
        # per piece, which is what makes remote boundary reads cheap
        # (atoms straddling a piece boundary are also deduplicated).
        seen: set[tuple[int, int]] = set()
        ranges: list[MortonRange] = []
        for piece, _offset in pieces:
            for rng in atom_ranges_covering(piece, side):
                key = (rng.start, rng.stop)
                if key not in seen:
                    seen.add(key)
                    ranges.append(rng)
        atoms = self._fetch_ranges(
            txn, ledger, dataset_spec, derived.source, timestep, ranges,
            prefetched=prefetched,
        )
        for piece, offset in pieces:
            sub = array_from_atoms(piece, atoms, ncomp)
            dst = tuple(
                slice(o, o + n) for o, n in zip(offset, piece.shape)
            )
            block[dst] = sub
        return block

    def _fetch_atoms(
        self,
        txn: Transaction,
        ledger: CostLedger,
        dataset_spec: DatasetSpec,
        source_field: str,
        timestep: int,
        piece: Box,
        prefetched: dict[int, bytes] | None = None,
    ) -> dict[int, bytes]:
        """Atoms covering an in-domain piece, locally or from peers."""
        ranges = atom_ranges_covering(piece, dataset_spec.side)
        return self._fetch_ranges(
            txn, ledger, dataset_spec, source_field, timestep, ranges,
            prefetched=prefetched,
        )

    def _fetch_ranges(
        self,
        txn: Transaction,
        ledger: CostLedger,
        dataset_spec: DatasetSpec,
        source_field: str,
        timestep: int,
        ranges: "list[MortonRange]",
        prefetched: dict[int, bytes] | None = None,
    ) -> dict[int, bytes]:
        """Atoms covering ``ranges``, read locally and from peer nodes.

        With ``prefetched`` atoms (a chain-level boundary prefetch, see
        :meth:`_prefetch_halo`) no RPC is issued at all — the remote
        share is served from the prefetch and only the local ranges
        touch the transaction.  Otherwise each peer gets all of its
        ranges in one ``serve_halo`` call via :meth:`_fetch_remote`.
        """
        by_node = self._split_ranges_by_node(ranges)
        atoms: dict[int, bytes] = {}
        own = by_node.pop(self._node.node_id, None)
        if own:
            atoms.update(
                self._node.read_atoms(
                    txn, dataset_spec.name, source_field, timestep, own
                )
            )
        if prefetched is not None:
            atoms.update(prefetched)
            return atoms
        atoms.update(
            self._fetch_remote(
                ledger, dataset_spec.name, source_field, timestep,
                list(by_node.items()),
            )
        )
        return atoms

    def _fetch_remote(
        self,
        ledger: CostLedger,
        dataset: str,
        source_field: str,
        timestep: int,
        remote: "list[tuple[int, list[MortonRange]]]",
    ) -> dict[int, bytes]:
        """Boundary atoms from peer nodes, one RPC per peer.

        When several peers are involved their calls run concurrently on
        short-lived threads — the peers' pipelined connection pools
        multiplex them, so the wall time is one round trip rather than
        one per peer.  Every concurrent fetch charges a scratch
        :class:`CostLedger` that is folded back in deterministic order,
        so the *simulated* time is identical to a serial exchange
        regardless of the real-world overlap.
        """
        atoms: dict[int, bytes] = {}
        if len(remote) > 1:
            scratch = [CostLedger() for _ in remote]
            with ThreadPoolExecutor(
                max_workers=len(remote), thread_name_prefix="halo-fetch"
            ) as pool:
                futures = [
                    pool.submit(
                        self._peers[node_id].serve_halo,
                        dataset, source_field, timestep, node_ranges, part,
                    )
                    for (node_id, node_ranges), part in zip(remote, scratch)
                ]
                for future in futures:
                    atoms.update(future.result())
            for part in scratch:
                ledger.add(part)
            return atoms
        for node_id, node_ranges in remote:
            atoms.update(
                self._peers[node_id].serve_halo(
                    dataset, source_field, timestep, node_ranges, ledger,
                )
            )
        return atoms

    def prefetch_halo(
        self,
        ledger: CostLedger,
        dataset_spec: DatasetSpec,
        derived: DerivedField,
        timestep: int,
        boxes: "list[Box]",
        fd_order: int,
    ) -> dict[int, bytes] | None:
        """Combined remote boundary fetch for a whole node query.

        Query drivers that evaluate box by box (the semantic cache
        stores each box separately) call this once for every box they
        are about to evaluate, then pass the result to
        :meth:`evaluate` as ``prefetched`` — turning one halo RPC per
        box into one per peer per query.  The remote ranges of a box's
        slabs equal those of the box itself (interior slab seams stay
        on the owning node), so prefetching at box granularity is
        exact.  Only meaningful for single-chain evaluation; with
        ``processes > 1`` callers should let each chain fetch its own
        redundant boundary, as the paper's parallelism model assumes.

        Returns ``{}``-able atoms keyed by zindex, or ``None`` when no
        remote atoms are needed at all.
        """
        return self._prefetch_halo(
            ledger, dataset_spec, derived.source, timestep, boxes,
            derived.halo(fd_order),
        )

    def _prefetch_halo(
        self,
        ledger: CostLedger,
        dataset_spec: DatasetSpec,
        source_field: str,
        timestep: int,
        slabs: "list[Box]",
        halo: int,
    ) -> dict[int, bytes] | None:
        """One combined boundary fetch for a whole chain of slabs.

        Collects every remote atom range the chain's expanded blocks
        will need and fetches each peer's share in a *single*
        ``serve_halo`` RPC before the chain starts computing — the
        dominant win of the pipelined data plane for halo exchange
        (one round trip per peer per chain instead of one per block).
        Atoms shared by adjacent blocks are fetched once.  Prefetching
        stays per *chain* so the paper's observation that halo reads
        are redundant across process chains keeps holding.

        Returns ``None`` when the chain needs no remote atoms (single
        node clusters, interior slabs) so callers fall back to the
        per-block path unchanged.
        """
        side = dataset_spec.side
        seen: set[tuple[int, int]] = set()
        ranges: list[MortonRange] = []
        for slab in slabs:
            expanded = slab.expand(halo)
            if any(n > side for n in expanded.shape):
                pieces = [Box.cube(side)]
            else:
                pieces = [piece for piece, _ in expanded.wrap_periodic(side)]
            for piece in pieces:
                for rng in atom_ranges_covering(piece, side):
                    key = (rng.start, rng.stop)
                    if key not in seen:
                        seen.add(key)
                        ranges.append(rng)
        by_node = self._split_ranges_by_node(ranges)
        by_node.pop(self._node.node_id, None)
        if not by_node:
            return None
        return self._fetch_remote(
            ledger, dataset_spec.name, source_field, timestep,
            list(by_node.items()),
        )

    def _split_ranges_by_node(
        self, ranges: list[MortonRange]
    ) -> dict[int, list[MortonRange]]:
        """Group curve ranges by owning node.

        Each range's start is binary-searched against the partitioner's
        split points (via :meth:`MortonPartitioner.node_spans`), so the
        cost is O(ranges x log nodes + spans) instead of the former
        O(ranges x nodes) intersection probe.
        """
        by_node: dict[int, list[MortonRange]] = {}
        for rng in ranges:
            for node_id, span in self._partitioner.node_spans(rng):
                by_node.setdefault(node_id, []).append(span)
        return by_node


def _threshold_scan(
    norm: np.ndarray, slab: Box, threshold: float
) -> tuple[np.ndarray, np.ndarray]:
    """Indices and values of norm >= threshold, in global Morton codes."""
    mask = norm >= threshold
    if not mask.any():
        return np.empty(0, np.uint64), np.empty(0, np.float64)
    ix, iy, iz = np.nonzero(mask)
    zindexes = encode_array(
        ix + slab.lo[0], iy + slab.lo[1], iz + slab.lo[2]
    )
    return zindexes, norm[mask].astype(np.float64)


def _topk_scan(norm: np.ndarray, slab: Box, k: int) -> tuple[np.ndarray, np.ndarray]:
    """The k highest-norm points of one slab (unordered)."""
    flat = norm.ravel()
    if len(flat) > k:
        candidate = np.argpartition(flat, -k)[-k:]
    else:
        candidate = np.arange(len(flat))
    ix, iy, iz = np.unravel_index(candidate, norm.shape)
    zindexes = encode_array(ix + slab.lo[0], iy + slab.lo[1], iz + slab.lo[2])
    return zindexes, flat[candidate].astype(np.float64)


def _histogram_open_ended(
    norm: np.ndarray, bin_edges: tuple[float, ...]
) -> np.ndarray:
    """Counts per bin; the final bin collects everything above the last edge."""
    edges = np.asarray(bin_edges, dtype=np.float64)
    counts, _ = np.histogram(norm, bins=np.append(edges, np.inf))
    return counts.astype(np.int64)
