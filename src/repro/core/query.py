"""Query and result types of the threshold engine."""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

import numpy as np

from repro.costmodel import CostLedger
from repro.fields.finite_difference import fd_coefficients
from repro.grid import Box
from repro.morton import decode_array


@dataclass(frozen=True)
class ThresholdQuery:
    """Find all locations where a field's norm is at or above a threshold.

    Attributes:
        dataset: dataset name (``"mhd"`` etc.).
        field: derived or raw field name from the field registry.
        timestep: timestep to examine.
        threshold: the cut value; points with ``norm >= threshold`` match.
        box: spatial region, or ``None`` for the entire timestep.
        fd_order: finite-difference order for differential kernels.
    """

    dataset: str
    field: str
    timestep: int
    threshold: float
    box: Box | None = None
    fd_order: int = 4

    def __post_init__(self) -> None:
        fd_coefficients(self.fd_order)
        if self.timestep < 0:
            raise ValueError("timestep must be non-negative")
        if self.threshold < 0:
            raise ValueError(
                "threshold must be non-negative (norms are non-negative)"
            )


@dataclass
class ThresholdResult:
    """Points above threshold, with the query's simulated-time ledger.

    ``zindexes`` are Morton codes of matching grid points, sorted
    ascending; ``values`` are the field norms at those points, aligned
    with ``zindexes``.
    """

    zindexes: np.ndarray
    values: np.ndarray
    ledger: CostLedger
    cache_hits: int = 0
    nodes: int = 0
    #: Trace id assigned by the mediator; keys ``GET /trace/<query_id>``.
    query_id: str | None = None

    def __post_init__(self) -> None:
        if len(self.zindexes) != len(self.values):
            raise ValueError("zindexes and values must align")

    def __len__(self) -> int:
        return len(self.zindexes)

    def coordinates(self) -> np.ndarray:
        """Matching grid points as an ``(n, 3)`` integer array."""
        x, y, z = decode_array(self.zindexes)
        return np.stack([x, y, z], axis=1).astype(np.int64)

    @property
    def elapsed(self) -> float:
        """Total simulated seconds of the query."""
        return self.ledger.total


@dataclass(frozen=True)
class PdfQuery:
    """Histogram of a field's norm over an entire timestep (paper Fig. 2)."""

    dataset: str
    field: str
    timestep: int
    bin_edges: tuple[float, ...]
    fd_order: int = 4

    def __post_init__(self) -> None:
        fd_coefficients(self.fd_order)
        edges = tuple(float(e) for e in self.bin_edges)
        if len(edges) < 2 or list(edges) != sorted(edges):
            raise ValueError("bin_edges must be at least two ascending values")
        object.__setattr__(self, "bin_edges", edges)


@dataclass
class PdfResult:
    """Per-bin counts; the final bin is open-ended above the last edge."""

    counts: np.ndarray
    bin_edges: tuple[float, ...]
    ledger: CostLedger
    query_id: str | None = None

    @property
    def total_points(self) -> int:
        return int(self.counts.sum())


@dataclass(frozen=True)
class TopKQuery:
    """The k grid locations with the largest field norm in a timestep."""

    dataset: str
    field: str
    timestep: int
    k: int
    fd_order: int = 4

    def __post_init__(self) -> None:
        fd_coefficients(self.fd_order)
        if self.k <= 0:
            raise ValueError("k must be positive")


@dataclass
class TopKResult:
    """Top-k points sorted by descending norm."""

    zindexes: np.ndarray
    values: np.ndarray
    ledger: CostLedger = dataclass_field(default_factory=CostLedger)
    query_id: str | None = None

    def __len__(self) -> int:
        return len(self.zindexes)

    def coordinates(self) -> np.ndarray:
        """Top-k grid points as an ``(k, 3)`` integer array."""
        x, y, z = decode_array(self.zindexes)
        return np.stack([x, y, z], axis=1).astype(np.int64)
