"""The result-size limit on threshold queries.

"We impose a limit on the maximum number of locations that can be
returned as a result of a threshold query ... currently this limit is
set conservatively to 10^6 locations" (paper §4).  Queries whose
thresholds are set too low fail with :class:`ThresholdTooLowError`, and
the user is pointed at the PDF query to pick a better threshold.
"""

from __future__ import annotations

#: Maximum number of points a threshold query may return (paper §4).
MAX_RESULT_POINTS = 1_000_000


class ThresholdTooLowError(Exception):
    """The query matched more points than the configured limit.

    Attributes:
        points_found: how many matching points were seen before the
            query was cut off (a lower bound on the true count).
        limit: the configured maximum.
    """

    def __init__(self, points_found: int, limit: int) -> None:
        super().__init__(
            f"threshold matched at least {points_found} points, above the "
            f"limit of {limit}; raise the threshold (the PDF query shows "
            "the value distribution) or request the field data directly"
        )
        self.points_found = points_found
        self.limit = limit
