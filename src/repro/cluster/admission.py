"""Admission control for the service front door.

The paper's database answers the open public; the ROADMAP's north star
is "heavy traffic from millions of users".  A public front door
survives that load only when overload has *defined* behaviour: every
request is either admitted — and then finishes with a correct answer —
or shed *early* with a typed, well-formed response telling the client
when to retry.  This module is that decision layer, kept free of any
transport so it can be unit-tested exhaustively and shared by future
doors:

* :class:`TokenBucket` — per-tenant request quotas (rate + burst);
* :class:`AdmissionController` — the queue-accounting state machine:
  quota check, bounded queue depth, *projected-wait* backpressure (an
  EWMA of recent service times turns queue depth into an expected wait,
  so the door sheds before the queue is hopeless, not after), and a
  hard wait budget applied when a request is finally dequeued;
* the :class:`ShedError` hierarchy — one typed error per shedding
  reason, each knowing its HTTP status (``429`` for quota, ``503`` for
  load) and carrying a ``retry_after_s`` hint.

Admission decisions are O(1) under one lock; the controller never
blocks, sleeps or touches a socket — queues and waiting live in the
transport (:mod:`repro.net.aio`), which consults this class at the
three points of a request's life: :meth:`~AdmissionController.admit`
on arrival, :meth:`~AdmissionController.start` when capacity frees up,
and :meth:`~AdmissionController.finish` when the answer is ready.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.obs import clock
from repro.obs.metrics import MetricsRegistry

#: Service methods answered from memory (no node fan-out); they ride a
#: higher queue priority so health checks and dashboards stay live
#: while heavy query traffic saturates the bridge.
LIGHT_METHODS = frozenset(
    {"ListFields", "ListDatasets", "GetStatistics", "GetStats", "GetTrace"}
)

#: Queue priorities, lower served first.
PRIORITY_LIGHT = 0
PRIORITY_QUERY = 1

#: Smallest retry hint ever issued; clients with sub-50ms retries would
#: hammer the door harder than the traffic being shed.
MIN_RETRY_AFTER_S = 0.05

#: EWMA smoothing for the per-request service-time estimate.
_SERVICE_EWMA_ALPHA = 0.2


def classify(method: str) -> tuple[str, int]:
    """``(class name, queue priority)`` for a service method name."""
    if method in LIGHT_METHODS:
        return "light", PRIORITY_LIGHT
    return "query", PRIORITY_QUERY


class ShedError(Exception):
    """A request refused (or abandoned) by admission control.

    Every shed is well-formed: the response dictionary always carries
    ``status``/``code``/``message``/``retry_after_s``, and the HTTP
    door maps :attr:`http_status` plus a ``Retry-After`` header onto
    it, so a client under overload never sees a hang, a reset or a
    truncated body — only a typed refusal it can back off from.
    """

    #: Wire-level error code; subclasses override.
    code = "overloaded"
    #: HTTP status the front door answers with.
    http_status = 503

    def __init__(self, message: str, retry_after_s: float) -> None:
        super().__init__(message)
        self.retry_after_s = max(MIN_RETRY_AFTER_S, retry_after_s)

    def to_response(self) -> dict:
        """The JSON-serializable shed response body."""
        return {
            "status": "error",
            "code": self.code,
            "message": str(self),
            "retry_after_s": round(self.retry_after_s, 3),
        }


class QuotaExceededError(ShedError):
    """The tenant's token bucket is empty — slow down (HTTP 429)."""

    code = "quota_exceeded"
    http_status = 429


class QueueFullError(ShedError):
    """Queue depth or projected wait over budget — shed at arrival."""

    code = "queue_full"
    http_status = 503


class QueueWaitExceededError(ShedError):
    """The request aged out while queued — shed at dequeue."""

    code = "queue_timeout"
    http_status = 503


class TokenBucket:
    """A standard token bucket: ``rate`` tokens/s up to ``burst``.

    Not thread-safe on its own; the owning controller serializes calls.
    """

    __slots__ = ("rate", "burst", "_tokens", "_stamp")

    def __init__(self, rate: float, burst: float, now: float = 0.0) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("token bucket needs positive rate and burst")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._stamp = now

    def take(self, now: float, amount: float = 1.0) -> float:
        """Try to take ``amount`` tokens at time ``now``.

        Returns ``0.0`` when the take succeeded, else the seconds until
        enough tokens will have accrued (the retry-after hint) — and in
        that case takes nothing.
        """
        elapsed = max(0.0, now - self._stamp)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._stamp = now
        if self._tokens >= amount:
            self._tokens -= amount
            return 0.0
        return (amount - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        """Tokens available as of the last :meth:`take` call."""
        return self._tokens


@dataclass(frozen=True)
class Ticket:
    """One admitted request's identity inside the controller.

    ``(priority, seq)`` is the queue sort key: light traffic first,
    FIFO within a class.
    """

    tenant: str
    method: str
    klass: str
    priority: int
    seq: int
    admitted_at: float


class AdmissionController:
    """Quota + queue accounting for one front door.

    Args:
        metrics: registry for the door's instruments (the mediator's).
        tenant_rate: default per-tenant sustained requests/second.
        tenant_burst: default per-tenant burst allowance.
        max_queue_depth: hard cap on queued (admitted, unstarted)
            requests.
        max_queue_wait: seconds a request may spend queued; enforced
            both as projected-wait backpressure at admission and as a
            hard age-out at dequeue.
        workers: dispatch concurrency of the owning door, used to
            convert queue depth into projected wait.
        tenant_overrides: per-tenant ``(rate, burst)`` exceptions.
    """

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        *,
        tenant_rate: float = 100.0,
        tenant_burst: float = 200.0,
        max_queue_depth: int = 512,
        max_queue_wait: float = 2.0,
        workers: int = 8,
        tenant_overrides: dict[str, tuple[float, float]] | None = None,
    ) -> None:
        self._lock = threading.Lock()
        self._tenant_rate = float(tenant_rate)
        self._tenant_burst = float(tenant_burst)
        self._max_queue_depth = int(max_queue_depth)
        self._max_queue_wait = float(max_queue_wait)
        self._workers = max(1, int(workers))
        self._overrides = dict(tenant_overrides or {})
        self._buckets: dict[str, TokenBucket] = {}
        self._depth = 0
        self._seq = 0
        #: EWMA of bridge service time, seeded at zero so a cold door
        #: never sheds its first burst on a guess.
        self._service_ewma = 0.0
        registry = metrics if metrics is not None else MetricsRegistry()
        self._admissions = registry.counter(
            "aio_admissions_total",
            "Requests admitted past quota and queue checks, by class",
            labelnames=["klass"],
        )
        self._sheds = registry.counter(
            "aio_sheds_total",
            "Requests shed by admission control, by reason",
            labelnames=["reason"],
        )
        self._queue_depth = registry.gauge(
            "aio_queue_depth", "Admitted requests waiting for a bridge slot"
        )
        self._queue_wait = registry.histogram(
            "aio_queue_wait_seconds",
            "Seconds between admission and dispatch, by class",
            labelnames=["klass"],
        )

    # -- request lifecycle -------------------------------------------------

    def admit(
        self, tenant: str, method: str, now: float | None = None
    ) -> Ticket:
        """Admit one request or raise a :class:`ShedError` subtype.

        Checks, in order: the tenant's token bucket (429 on empty), the
        hard queue-depth cap, and the projected queue wait
        ``depth / workers * ewma_service_time`` (both 503).  On success
        the queued depth is charged immediately; callers must hand the
        ticket back through :meth:`start` or :meth:`abandon`.
        """
        stamp = clock.now() if now is None else now
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                rate, burst = self._overrides.get(
                    tenant, (self._tenant_rate, self._tenant_burst)
                )
                bucket = TokenBucket(rate, burst, now=stamp)
                self._buckets[tenant] = bucket
            wait = bucket.take(stamp)
            if wait > 0.0:
                self._sheds.labels(reason="quota").inc()
                raise QuotaExceededError(
                    f"tenant {tenant!r} is over its {bucket.rate:g} "
                    "request/s quota",
                    retry_after_s=wait,
                )
            if self._depth >= self._max_queue_depth:
                self._sheds.labels(reason="queue_full").inc()
                raise QueueFullError(
                    f"request queue is full ({self._depth} waiting)",
                    retry_after_s=self._projected_wait_locked(),
                )
            projected = self._projected_wait_locked()
            if projected > self._max_queue_wait:
                self._sheds.labels(reason="projected_wait").inc()
                raise QueueFullError(
                    f"projected queue wait {projected:.2f}s exceeds the "
                    f"{self._max_queue_wait:g}s budget",
                    retry_after_s=projected - self._max_queue_wait,
                )
            self._depth += 1
            self._seq += 1
            seq = self._seq
            self._queue_depth.set(float(self._depth))
        klass, priority = classify(method)
        self._admissions.labels(klass=klass).inc()
        return Ticket(
            tenant=tenant,
            method=method,
            klass=klass,
            priority=priority,
            seq=seq,
            admitted_at=stamp,
        )

    def start(self, ticket: Ticket, now: float | None = None) -> float:
        """Mark ``ticket`` dequeued; returns its queue wait in seconds.

        Raises :class:`QueueWaitExceededError` when the request aged
        past the wait budget while queued — the dispatch slot is better
        spent on a request whose client is still listening.  Either
        way, the queued depth is released.
        """
        stamp = clock.now() if now is None else now
        waited = max(0.0, stamp - ticket.admitted_at)
        with self._lock:
            self._depth = max(0, self._depth - 1)
            self._queue_depth.set(float(self._depth))
        if waited > self._max_queue_wait:
            self._sheds.labels(reason="queue_timeout").inc()
            raise QueueWaitExceededError(
                f"request queued {waited:.2f}s, over the "
                f"{self._max_queue_wait:g}s budget",
                retry_after_s=waited - self._max_queue_wait,
            )
        return waited

    def abandon(self, ticket: Ticket) -> None:
        """Release a queued ticket that will never start (client gone)."""
        with self._lock:
            self._depth = max(0, self._depth - 1)
            self._queue_depth.set(float(self._depth))

    def finish(
        self,
        ticket: Ticket,
        queue_wait: float,
        service_seconds: float,
        exemplar: str | None = None,
    ) -> None:
        """Record a completed dispatch.

        Feeds the service-time EWMA behind projected-wait backpressure
        and observes the queue-wait histogram; ``exemplar`` (the
        response's query id) lets the p99 bucket point at its trace.
        """
        with self._lock:
            if self._service_ewma == 0.0:
                self._service_ewma = service_seconds
            else:
                self._service_ewma += _SERVICE_EWMA_ALPHA * (
                    service_seconds - self._service_ewma
                )
        self._queue_wait.labels(klass=ticket.klass).observe(
            queue_wait, exemplar=exemplar
        )

    # -- introspection -----------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Admitted requests currently waiting for a bridge slot."""
        with self._lock:
            return self._depth

    @property
    def service_ewma(self) -> float:
        """The smoothed per-request service-time estimate (seconds)."""
        with self._lock:
            return self._service_ewma

    @property
    def max_queue_wait(self) -> float:
        """The queue-wait budget (seconds)."""
        return self._max_queue_wait

    def _projected_wait_locked(self) -> float:
        """Expected wait of a request admitted now (lock held)."""
        return self._depth / self._workers * self._service_ewma
