"""The web-service tier: request parsing, validation and serialization.

"Access to the data is provided by means of Web-services ... executed
through Web-service calls" (paper §2, Fig. 1).  This module is that
front door in testable form: requests arrive as plain dictionaries (the
parsed body of a SOAP/JSON call), are validated against the service's
contract, dispatched to the mediator, and answered with serializable
dictionaries — including the error responses the paper specifies, such
as notifying users "if their request has a threshold that is set too
low" (§4).
"""

from __future__ import annotations

import json
from typing import Callable

import numpy as np

from repro.cluster.mediator import Mediator
from repro.core import (
    PdfQuery,
    ThresholdQuery,
    ThresholdTooLowError,
    TopKQuery,
)
from repro.fields.derived import UnknownFieldError
from repro.grid import Box
from repro.net.errors import DeadlineExceededError, NetError
from repro.obs import clock, tracing
from repro.obs.metrics import MetricsRegistry

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4"


class WebServiceError(Exception):
    """A request the service rejects; carries a wire-level error code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code

    def to_response(self) -> dict:
        """The wire-level error payload."""
        return {"status": "error", "code": self.code, "message": str(self)}


class WebService:
    """Dispatches request dictionaries to the mediator.

    Every method of the service takes and returns JSON-serializable
    dictionaries, so a transport (HTTP, SOAP, a test) can sit on top
    unchanged.
    """

    def __init__(self, mediator: Mediator, max_points: int | None = None) -> None:
        from repro.core import MAX_RESULT_POINTS

        self._mediator = mediator
        self._max_points = max_points or MAX_RESULT_POINTS
        self._methods: dict[str, Callable[[dict], dict]] = {
            "GetThreshold": self._get_threshold,
            "GetPdf": self._get_pdf,
            "GetTopK": self._get_topk,
            "ListFields": self._list_fields,
            "ListDatasets": self._list_datasets,
            "GetStatistics": self._get_statistics,
            "GetBatchThreshold": self._get_batch_threshold,
            "RegisterField": self._register_field,
            "GetStats": self._get_stats,
            "GetTrace": self._get_trace,
        }
        self._latency = mediator.metrics.histogram(
            "webservice_request_seconds",
            "Request handling wall seconds, by method",
            labelnames=["method"],
        )
        self._in_flight = mediator.metrics.gauge(
            "webservice_in_flight", "Requests currently being handled"
        )
        self._client_disconnects = mediator.metrics.counter(
            "http_client_disconnects",
            "Client connections dropped before the reply landed, by door",
            labelnames=["door"],
        )

    @property
    def metrics(self) -> "MetricsRegistry":
        """The mediator's metrics registry (the doors' instrument home)."""
        return self._mediator.metrics

    def note_client_disconnect(self, door: str) -> None:
        """Count a client that hung up mid-exchange on ``door``.

        A public front door sees disconnects constantly; they are
        traffic weather, not errors — counted here so overload
        investigations can correlate them with shed rates, and
        swallowed by the doors so a vanished client never kills a
        handler thread or poisons the event loop.
        """
        self._client_disconnects.labels(door=door).inc()

    def handle(self, request: dict) -> dict:
        """Process one request; never raises, always answers.

        A request is ``{"method": name, **params}``; responses are
        ``{"status": "ok", ...}`` or ``{"status": "error", "code",
        "message"}``.
        """
        method_name = request.get("method")
        # Unknown method names share one label value so a client spraying
        # garbage cannot blow the latency family's cardinality cap.
        label = (
            method_name
            if isinstance(method_name, str) and method_name in self._methods
            else "<unknown>"
        )
        self._in_flight.inc()
        started = clock.now()
        response: dict | None = None
        try:
            response = self._dispatch(request)
            return response
        finally:
            # Timed by hand rather than via ``timed``: a successful
            # query response carries its query id, which becomes the
            # observation's exemplar — the p99 latency bucket then
            # points straight at the trace that caused it.
            exemplar = (
                response.get("query_id") if response is not None else None
            )
            self._latency.labels(method=label).observe(
                clock.now() - started,
                exemplar=exemplar if isinstance(exemplar, str) else None,
            )
            self._in_flight.dec()

    def _dispatch(self, request: dict) -> dict:
        try:
            method_name = request.get("method")
            if not isinstance(method_name, str):
                raise WebServiceError("bad_request", "missing method name")
            method = self._methods.get(method_name)
            if method is None:
                raise WebServiceError(
                    "unknown_method",
                    f"unknown method {method_name!r}; "
                    f"known: {sorted(self._methods)}",
                )
            return method(request)
        except WebServiceError as error:
            return error.to_response()
        except ThresholdTooLowError as error:
            return WebServiceError("threshold_too_low", str(error)).to_response()
        except UnknownFieldError as error:
            return WebServiceError("unknown_field", str(error)).to_response()
        except DeadlineExceededError as error:
            return WebServiceError("deadline_exceeded", str(error)).to_response()
        except NetError as error:
            return WebServiceError("node_unavailable", str(error)).to_response()
        except (KeyError, ValueError, TypeError) as error:
            return WebServiceError("bad_request", str(error)).to_response()

    def handle_http(self, method: str, path: str) -> tuple[int, str, str]:
        """Route an HTTP-style introspection request.

        The dictionary protocol stays the service's front door for
        queries; this thin router exposes the two live-introspection
        endpoints — ``GET /stats`` (Prometheus text) and
        ``GET /trace/<query_id>`` (the trace as JSON) — the way a
        scraper or a browser expects them.

        Returns ``(status_code, content_type, body)``.
        """
        if method.upper() != "GET":
            return 405, "text/plain", "method not allowed\n"
        if path in ("/stats", "/stats/"):
            return (
                200,
                PROMETHEUS_CONTENT_TYPE,
                self._mediator.metrics.render_prometheus(),
            )
        if path.startswith("/trace/"):
            query_id = path[len("/trace/"):]
            response = self.handle({"method": "GetTrace", "query_id": query_id})
            if response["status"] == "ok":
                return 200, "application/json", json.dumps(response)
            status = {
                "unknown_trace": 404,
                "tracing_disabled": 503,
            }.get(response["code"], 400)
            return status, "application/json", json.dumps(response)
        return 404, "text/plain", f"no route for {path!r}\n"

    # -- methods -----------------------------------------------------------------

    def _get_threshold(self, request: dict) -> dict:
        query = ThresholdQuery(
            dataset=self._require(request, "dataset", str),
            field=self._require(request, "field", str),
            timestep=self._require(request, "timestep", int),
            threshold=float(self._require(request, "threshold", (int, float))),
            box=self._optional_box(request),
            fd_order=int(request.get("fd_order", 4)),
        )
        result = self._mediator.threshold(
            query,
            processes=int(request.get("processes", 4)),
            max_points=self._max_points,
        )
        coordinates = result.coordinates()
        return {
            "status": "ok",
            "points": [
                {"x": int(x), "y": int(y), "z": int(z), "value": float(v)}
                for (x, y, z), v in zip(
                    coordinates.tolist(), result.values.tolist()
                )
            ],
            "count": len(result),
            "cache_hits": result.cache_hits,
            "elapsed_seconds": result.elapsed,
            "query_id": result.query_id,
        }

    def _get_pdf(self, request: dict) -> dict:
        edges = self._require(request, "bin_edges", (list, tuple))
        query = PdfQuery(
            dataset=self._require(request, "dataset", str),
            field=self._require(request, "field", str),
            timestep=self._require(request, "timestep", int),
            bin_edges=tuple(float(e) for e in edges),
            fd_order=int(request.get("fd_order", 4)),
        )
        result = self._mediator.pdf(query)
        return {
            "status": "ok",
            "bin_edges": list(result.bin_edges),
            "counts": [int(c) for c in result.counts],
            "elapsed_seconds": result.ledger.total,
            "query_id": result.query_id,
        }

    def _get_topk(self, request: dict) -> dict:
        query = TopKQuery(
            dataset=self._require(request, "dataset", str),
            field=self._require(request, "field", str),
            timestep=self._require(request, "timestep", int),
            k=self._require(request, "k", int),
            fd_order=int(request.get("fd_order", 4)),
        )
        result = self._mediator.topk(query)
        coordinates = result.coordinates()
        return {
            "status": "ok",
            "points": [
                {"x": int(x), "y": int(y), "z": int(z), "value": float(v)}
                for (x, y, z), v in zip(
                    coordinates.tolist(), result.values.tolist()
                )
            ],
            "elapsed_seconds": result.ledger.total,
            "query_id": result.query_id,
        }

    def _list_fields(self, request: dict) -> dict:
        return {"status": "ok", "fields": self._mediator.registry.names()}

    def _get_batch_threshold(self, request: dict) -> dict:
        """Several same-source queries over one shared scan."""
        specs = self._require(request, "queries", list)
        queries = []
        for spec in specs:
            if not isinstance(spec, dict):
                raise WebServiceError("bad_request", "queries must be objects")
            queries.append(
                ThresholdQuery(
                    dataset=self._require(spec, "dataset", str),
                    field=self._require(spec, "field", str),
                    timestep=self._require(spec, "timestep", int),
                    threshold=float(
                        self._require(spec, "threshold", (int, float))
                    ),
                    fd_order=int(spec.get("fd_order", 4)),
                )
            )
        batch = self._mediator.batch_threshold(
            queries,
            processes=int(request.get("processes", 4)),
            max_points=self._max_points,
        )
        return {
            "status": "ok",
            "results": [
                {
                    "count": len(result),
                    "cache_hits": result.cache_hits,
                    "values_max": (
                        float(result.values.max()) if len(result) else None
                    ),
                }
                for result in batch.results
            ],
            "elapsed_seconds": batch.ledger.total,
        }

    def _register_field(self, request: dict) -> dict:
        """Register a declarative derived field (paper §7)."""
        from repro.fields.expressions import ExpressionError

        name = self._require(request, "name", str)
        expression = self._require(request, "expression", str)
        try:
            description = self._mediator.register_expression(name, expression)
        except ExpressionError as error:
            raise WebServiceError("bad_expression", str(error)) from None
        except ValueError as error:
            raise WebServiceError("duplicate_field", str(error)) from None
        return {"status": "ok", **description}

    def _get_statistics(self, request: dict) -> dict:
        stats = self._mediator.statistics
        return {
            "status": "ok",
            "threshold_queries": stats.threshold_queries,
            "node_queries": stats.node_queries,
            "node_cache_hits": stats.node_cache_hits,
            "cache_hit_ratio": stats.cache_hit_ratio,
            "points_returned": stats.points_returned,
            "simulated_seconds": stats.simulated_seconds,
        }

    def _get_stats(self, request: dict) -> dict:
        """The full metrics registry; ``format: "prometheus"`` for text."""
        fmt = request.get("format", "json")
        if fmt == "prometheus":
            return {
                "status": "ok",
                "content_type": PROMETHEUS_CONTENT_TYPE,
                "body": self._mediator.metrics.render_prometheus(),
            }
        if fmt != "json":
            raise WebServiceError(
                "bad_request", "format must be 'json' or 'prometheus'"
            )
        statistics = self._get_statistics(request)
        del statistics["status"]
        return {
            "status": "ok",
            "metrics": self._mediator.metrics.to_dict(),
            "statistics": statistics,
        }

    def _get_trace(self, request: dict) -> dict:
        """One query's recorded span tree, by query id."""
        query_id = self._require(request, "query_id", str)
        collector = tracing.collector()
        if collector is None:
            raise WebServiceError(
                "tracing_disabled",
                "no trace collector is installed; call repro.obs.install()",
            )
        spans = collector.trace(query_id)
        if not spans:
            raise WebServiceError(
                "unknown_trace",
                f"no trace recorded for query {query_id!r}",
            )
        # Per-node wall seconds of the stitched remote subtrees: each
        # grafted span is tagged origin=nodeN, and the node's own
        # server.request span brackets everything it did for this query.
        attribution: dict[str, float] = {}
        for span in spans:
            origin = span.attributes.get("origin")
            if isinstance(origin, str) and span.name == "server.request":
                attribution[origin] = (
                    attribution.get(origin, 0.0) + span.wall_seconds
                )
        return {
            "status": "ok",
            "query_id": query_id,
            "spans": [span.to_json() for span in spans],
            "category_totals": tracing.category_totals(spans),
            "node_attribution": attribution,
            "tree": tracing.render_tree(spans),
        }

    def _list_datasets(self, request: dict) -> dict:
        return {"status": "ok", "datasets": self._mediator.dataset_names()}

    # -- validation ---------------------------------------------------------------

    @staticmethod
    def _require(request: dict, key: str, types) -> object:
        value = request.get(key)
        if value is None:
            raise WebServiceError("bad_request", f"missing parameter {key!r}")
        if not isinstance(value, types) or isinstance(value, bool):
            raise WebServiceError(
                "bad_request", f"parameter {key!r} has the wrong type"
            )
        return value

    @staticmethod
    def _optional_box(request: dict) -> Box | None:
        corners = request.get("box")
        if corners is None:
            return None
        if not isinstance(corners, (list, tuple)) or len(corners) != 6:
            raise WebServiceError(
                "bad_request", "box must be [xl, yl, zl, xu, yu, zu]"
            )
        try:
            return Box.from_corners([int(c) for c in corners])
        except ValueError as error:
            raise WebServiceError("bad_request", str(error)) from None
