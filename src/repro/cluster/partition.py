"""Spatial partitioning of datasets across cluster nodes.

Datasets are "partitioned spatially across 4 to 8 database nodes ...
along contiguous ranges of the Morton z-curve" (paper §2, §5.1).  With a
power-of-two node count each node's share is a union of whole octants of
the domain, so a node's part of any box query decomposes into a small
set of rectangular boxes — which is what the per-node executor operates
on.
"""

from __future__ import annotations

import bisect

from repro.grid import Box
from repro.grid.atoms import ATOM_VOLUME, atom_code
from repro.morton import MortonRange, decode, split_curve

#: Node counts whose curve shares are unions of whole octants.
SUPPORTED_NODE_COUNTS = (1, 2, 4, 8)


class MortonPartitioner:
    """Assigns atoms (and spatial octants) to cluster nodes.

    Args:
        domain_side: grid points per domain edge (power of two multiple
            of the atom side).
        nodes: number of database nodes (1, 2, 4 or 8, as in the paper's
            scale-out experiments).
    """

    def __init__(self, domain_side: int, nodes: int) -> None:
        if nodes not in SUPPORTED_NODE_COUNTS:
            raise ValueError(
                f"node count {nodes} unsupported; pick one of {SUPPORTED_NODE_COUNTS}"
            )
        if domain_side <= 0 or domain_side & (domain_side - 1):
            raise ValueError(f"domain side {domain_side} is not a power of two")
        if domain_side % 8:
            raise ValueError("domain side must be a multiple of the atom side")
        self.domain_side = domain_side
        self.nodes = nodes
        self._ranges = split_curve(domain_side, nodes)
        # Range starts, for binary-searching a code to its owning node.
        self._starts = [rng.start for rng in self._ranges]

    def node_ranges(self, node_id: int) -> MortonRange:
        """The contiguous Morton-code range (grid-point codes) of a node."""
        return self._ranges[node_id]

    def shard_ranges(self) -> list[MortonRange]:
        """Every shard's curve range in shard order (placement, catch-up)."""
        return list(self._ranges)

    def node_of_code(self, zindex: int) -> int:
        """The node owning the grid point with Morton code ``zindex``."""
        node_id = bisect.bisect_right(self._starts, zindex) - 1
        if node_id < 0 or zindex not in self._ranges[node_id]:
            raise ValueError(f"Morton code {zindex} outside the domain")
        return node_id

    def node_spans(self, rng: MortonRange) -> list[tuple[int, MortonRange]]:
        """Split a curve range at node boundaries: ``(node_id, piece)`` pairs.

        One binary search locates the node owning ``rng.start``; the
        pieces then walk forward through consecutive nodes, so splitting
        is O(log nodes + pieces) rather than an intersection probe of
        every node.

        Raises:
            ValueError: when the range reaches outside the domain.
        """
        if len(rng) == 0:
            return []
        if rng.stop > self._ranges[-1].stop:
            raise ValueError(f"Morton range {rng} outside the domain")
        node_id = self.node_of_code(rng.start)
        spans: list[tuple[int, MortonRange]] = []
        start = rng.start
        while start < rng.stop:
            stop = min(rng.stop, self._ranges[node_id].stop)
            spans.append((node_id, MortonRange(start, stop)))
            start = stop
            node_id += 1
        return spans

    def node_of_atom(self, atom_zindex: int) -> int:
        """The node owning the atom whose corner code is ``atom_zindex``."""
        return self.node_of_code(atom_zindex)

    def node_of_point(self, x: int, y: int, z: int) -> int:
        """The node owning grid point ``(x, y, z)`` (via its atom)."""
        return self.node_of_code(atom_code(x, y, z))

    def node_boxes(self, node_id: int) -> list[Box]:
        """The node's share of the domain as rectangular octant boxes.

        An octant of the Morton curve over a cube is itself a cube, so
        each node's contiguous curve range is a run of ``8 / nodes``
        equal sub-cubes.
        """
        if not 0 <= node_id < self.nodes:
            raise ValueError(f"node id {node_id} outside [0, {self.nodes})")
        if self.nodes == 1:
            return [Box.cube(self.domain_side)]
        half = self.domain_side // 2
        octants_per_node = 8 // self.nodes
        boxes = []
        for octant in range(
            node_id * octants_per_node, (node_id + 1) * octants_per_node
        ):
            # Octant index along the curve = Morton code of its corner/half.
            corner = decode(octant * (half**3))
            lo = tuple(corner)
            boxes.append(Box(lo, tuple(c + half for c in lo)))
        return boxes

    def query_boxes(self, node_id: int, query: Box) -> list[Box]:
        """The node's rectangular pieces of ``query`` (may be empty)."""
        pieces = []
        for owned in self.node_boxes(node_id):
            overlap = owned.intersection(query)
            if overlap is not None:
                pieces.append(overlap)
        return pieces

    def atoms_of_node(self, node_id: int) -> int:
        """Number of atoms of one timestep stored on a node."""
        return len(self.node_ranges(node_id)) // ATOM_VOLUME
