"""The analysis database cluster: nodes, partitioning and the mediator.

Mirrors the JHTDB architecture (paper Fig. 1 and Fig. 5): datasets are
sharded across database nodes along the Morton z-curve, a front-end
mediator splits each user request by the spatial layout of the data,
submits the parts to the nodes asynchronously, and assembles the
results.  Each node hosts its shard of the atom tables on HDD arrays and
its local cache tables on SSD.
"""

from repro.cluster.partition import MortonPartitioner
from repro.cluster.node import DatabaseNode
from repro.cluster.mediator import Mediator, build_cluster

__all__ = [
    "DatabaseNode",
    "Mediator",
    "MortonPartitioner",
    "build_cluster",
]
