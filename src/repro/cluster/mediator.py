"""The web-server/mediator tier: request splitting, async scheduling, assembly.

"The Web-server acts as a mediator sending the users' requests to the
database nodes and initiating their distributed evaluation.  Each
request is broken down into multiple parts based on the spatial layout
of the data.  Each part is asynchronously submitted for evaluation to
the database which stores the data needed" (paper §2).

The mediator here does exactly that with a thread pool, then assembles
the per-node results, charges the mediator<->node (LAN) and
mediator<->user (WAN, XML-inflated) transfers, and enforces the global
result limit.

Over TCP, the scatter's whole per-node fan-out rides one or two
pipelined connections per node (many requests in flight on a shared
socket), and oversized per-node results arrive as streamed PARTIAL
chunks that the transport merges incrementally with
:func:`merge_sorted_runs` while later chunks are still on the wire —
the final gather here sees exactly the same Morton-sorted columns
either way.
"""

from __future__ import annotations

import contextvars
import threading
from concurrent.futures import Future, ThreadPoolExecutor, wait
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence, TypeVar

import numpy as np

from repro.core.cache import SemanticCache
from repro.core.executor import NodeExecutor
from repro.core.limits import MAX_RESULT_POINTS, ThresholdTooLowError
from repro.core.pointset import merge_sorted_runs
from repro.core.query import (
    PdfQuery,
    PdfResult,
    ThresholdQuery,
    ThresholdResult,
    TopKQuery,
    TopKResult,
)
from repro.cluster.node import DatabaseNode
from repro.cluster.partition import MortonPartitioner
from repro.costmodel import Category, ClusterSpec, CostLedger, paper_cluster
from repro.costmodel.ledger import METER_IO_BYTES, METER_RESULT_POINTS
from repro.fields.derived import FieldRegistry, default_registry
from repro.net.errors import (
    DeadlineExceededError,
    NetError,
    PartialFailureError,
    UnsupportedRemoteOperationError,
)
from repro.net.frame import Deadline
from repro.net.transport import InProcessTransport, Transport
from repro.obs import tracing
from repro.obs.metrics import MetricsRegistry
from repro.grid import Box
from repro.simulation.datasets import SyntheticDataset
from repro.simulation.ingest import atomize

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.pdfcache import PdfCache

T = TypeVar("T")


@dataclass
class ServiceStatistics:
    """Running counters of the service's workload (paper §5.2 observes
    "fairly high cache-hit ratios as the workload is very structured")."""

    threshold_queries: int = 0
    node_queries: int = 0
    node_cache_hits: int = 0
    points_returned: int = 0
    simulated_seconds: float = 0.0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of node-level queries answered from the cache."""
        if self.node_queries == 0:
            return 0.0
        return self.node_cache_hits / self.node_queries

    def _record(self, nodes: int, hits: int, points: int, seconds: float) -> None:
        with self._lock:
            self.threshold_queries += 1
            self.node_queries += nodes
            self.node_cache_hits += hits
            self.points_returned += points
            self.simulated_seconds += seconds


class Mediator:
    """Front-end of the analysis cluster.

    Args:
        nodes: the database nodes, indexed by node id.
        partitioner: spatial partitioner matching the nodes.
        registry: derived-field registry (defaults to the stock one).
        spec: cluster hardware spec for network charging.
        cache_capacity_bytes: per-node semantic-cache budget; ``None``
            disables the cache entirely.
        transport: where per-node query parts execute.  ``None`` (the
            default) runs them in this process against ``nodes``, the
            seed behaviour; a :class:`~repro.net.transport.TcpTransport`
            runs them against ``serve-node`` processes, in which case
            ``nodes`` is empty and the transport's node count must match
            the partitioner.
        scatter_timeout: wall-second budget for gathering one query's
            node parts; on expiry outstanding parts are cancelled or
            drained and :class:`DeadlineExceededError` is raised.
    """

    def __init__(
        self,
        nodes: Sequence[DatabaseNode],
        partitioner: MortonPartitioner,
        registry: FieldRegistry | None = None,
        spec: ClusterSpec | None = None,
        cache_capacity_bytes: int | None = 256 * 1024 * 1024,
        sequential_scatter: bool = False,
        transport: Transport | None = None,
        scatter_timeout: float = 600.0,
    ) -> None:
        if transport is None:
            if len(nodes) != partitioner.nodes:
                raise ValueError(
                    f"{len(nodes)} nodes but partitioner expects "
                    f"{partitioner.nodes}"
                )
        elif transport.node_count != partitioner.nodes:
            raise ValueError(
                f"transport reaches {transport.node_count} nodes but "
                f"partitioner expects {partitioner.nodes}"
            )
        if scatter_timeout <= 0:
            raise ValueError("scatter_timeout must be positive")
        self.nodes = list(nodes)
        self.partitioner = partitioner
        self.sequential_scatter = sequential_scatter
        self.scatter_timeout = scatter_timeout
        self.statistics = ServiceStatistics()
        # One long-lived scatter pool per mediator, created lazily on
        # first use: building a ThreadPoolExecutor per query costs thread
        # spawns on the latency-critical path and briefly doubles the
        # thread count under concurrent clients.
        self._scatter_pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self.registry = registry or default_registry()
        self.spec = spec or paper_cluster()
        self.executors = [
            NodeExecutor(node, self.nodes, partitioner) for node in self.nodes
        ]
        self.caches: list[SemanticCache | None]
        self.pdf_caches: list["PdfCache | None"]
        if cache_capacity_bytes is None:
            self.caches = [None] * len(self.nodes)
            self.pdf_caches = [None] * len(self.nodes)
        else:
            from repro.core.pdfcache import PdfCache

            self.caches = [
                SemanticCache(
                    node.db,
                    capacity_bytes=cache_capacity_bytes,
                    point_record_bytes=self.spec.point_record_bytes,
                )
                for node in self.nodes
            ]
            self.pdf_caches = [PdfCache(node.db) for node in self.nodes]
        self.transport: Transport = transport or InProcessTransport(self)
        self.metrics = MetricsRegistry()
        self.transport.attach(self.metrics, self.spec)
        self._build_instruments()

    @property
    def node_count(self) -> int:
        """Nodes participating in every query (local or behind RPCs)."""
        return self.partitioner.nodes

    def _build_instruments(self) -> None:
        """Register this mediator's metric families and engine samplers.

        Counters on the query path are incremented once per query (see
        :meth:`_observe_query`); engine-internal statistics the hot paths
        keep as plain integers are exposed through export-time sampling
        callbacks, so an idle (unscraped) cluster pays nothing for them.
        """
        self._m_queries = self.metrics.counter(
            "queries_total", "Queries served, by kind", labelnames=["kind"]
        )
        self._m_points = self.metrics.counter(
            "result_points_total", "Points returned to clients"
        )
        self._m_cache_hits = self.metrics.counter(
            "semantic_cache_hits_total",
            "Node-level semantic-cache hits (whole node share served)",
        )
        self._m_cache_misses = self.metrics.counter(
            "semantic_cache_misses_total",
            "Node-level semantic-cache misses",
        )
        self._m_sim_seconds = self.metrics.counter(
            "simulated_seconds_total",
            "Simulated seconds, by Figure-9 cost category",
            labelnames=["category"],
        )
        self._m_io_bytes = self.metrics.counter(
            "io_bytes_total", "Raw bytes read from the atom tables"
        )
        self._m_fanout = self.metrics.histogram(
            "scatter_fanout",
            "Participating nodes per query",
            buckets=[1, 2, 4, 8, 16, 32],
        )
        # Pre-resolved series for the hot query path: labels() takes the
        # family lock on every call, so the per-query observation code
        # uses these bound series instead.
        self._m_queries_by_kind = {
            kind: self._m_queries.labels(kind=kind)
            for kind in ("threshold", "batch_threshold", "pdf", "topk")
        }
        self._m_sim_by_category = {
            category.value: self._m_sim_seconds.labels(category=category.value)
            for category in Category
        }

        storage_keys = (
            "bufferpool_hits", "bufferpool_misses", "btree_splits",
            "txn_begun", "txn_committed", "txn_aborted", "txn_conflicts",
            "wal_appends", "wal_flushes", "wal_flushed_bytes",
        )
        for key in storage_keys:
            self.metrics.gauge_callback(
                f"storage_{key}",
                lambda key=key: sum(
                    node.db.storage_stats().get(key, 0.0)
                    for node in self.nodes
                ),
                f"Cluster-wide {key.replace('_', ' ')} (sampled at export)",
            )

        def hit_rate() -> float:
            hits = misses = 0.0
            for node in self.nodes:
                stats = node.db.storage_stats()
                hits += stats["bufferpool_hits"]
                misses += stats["bufferpool_misses"]
            return hits / (hits + misses) if hits + misses else 0.0

        self.metrics.gauge_callback(
            "storage_bufferpool_hit_rate",
            hit_rate,
            "Cluster-wide buffer-pool hit rate (sampled at export)",
        )

        # Columnar fast-path observability (ISSUE 3): how many packed
        # chunks lookups skipped without decoding, and how many rows
        # went through the storage engine's bulk-insert path.
        self.metrics.gauge_callback(
            "cache_chunks_pruned",
            lambda: float(sum(
                cache.stats.snapshot()["chunks_pruned"]
                for cache in self.caches
                if cache is not None
            )),
            "Packed cacheData chunks pruned by Morton/value metadata",
        )
        self.metrics.gauge_callback(
            "bulk_insert_rows",
            lambda: sum(
                node.db.storage_stats().get("bulk_insert_rows", 0.0)
                for node in self.nodes
            ),
            "Rows written through Table.insert_many across the cluster",
        )

        cache_keys = (
            "hits", "misses", "dominance_rejections", "evictions",
            "stored_points", "stored_bytes", "chunks_pruned",
        )
        for key in cache_keys:
            self.metrics.gauge_callback(
                f"semantic_cache_probe_{key}",
                lambda key=key: float(sum(
                    cache.stats.snapshot()[key]
                    for cache in self.caches
                    if cache is not None
                )),
                f"Per-box semantic-cache {key.replace('_', ' ')}",
            )
        for key in ("hits", "misses", "evictions"):
            self.metrics.gauge_callback(
                f"pdf_cache_{key}",
                lambda key=key: float(sum(
                    cache.stats.snapshot()[key]
                    for cache in self.pdf_caches
                    if cache is not None
                )),
                f"PDF-cache {key}",
            )

    def _observe_query(
        self,
        kind: str,
        ledger: CostLedger,
        points: int,
        fanout: int,
        node_hits: int = 0,
        node_misses: int = 0,
    ) -> None:
        """Fold one finished query into the metrics registry."""
        series = self._m_queries_by_kind.get(kind)
        (series if series is not None else self._m_queries.labels(kind=kind)).inc()
        if points:
            self._m_points.inc(points)
        io_bytes = ledger.meter(METER_IO_BYTES)
        if io_bytes:
            self._m_io_bytes.inc(io_bytes)
        for category, seconds in ledger.breakdown().items():
            if seconds:
                self._m_sim_by_category[category].inc(seconds)
        self._m_fanout.observe(fanout)
        if node_hits:
            self._m_cache_hits.inc(node_hits)
        if node_misses:
            self._m_cache_misses.inc(node_misses)

    # -- data loading ---------------------------------------------------------------

    def load_dataset(
        self,
        dataset: SyntheticDataset,
        timesteps: Sequence[int] | None = None,
        fields: Sequence[str] | None = None,
    ) -> int:
        """Ingest a synthetic dataset into the cluster's atom tables.

        Atoms are routed to nodes by the Morton code of their corner.
        Returns the number of atoms stored.
        """
        self._require_local("load_dataset")
        spec = dataset.spec
        if spec.side != self.partitioner.domain_side:
            raise ValueError(
                f"dataset side {spec.side} does not match partitioner "
                f"domain {self.partitioner.domain_side}"
            )
        for node in self.nodes:
            if spec.name not in node.dataset_names:
                node.register_dataset(spec)
        stored = 0
        for field in fields or spec.fields:
            for timestep in timesteps or range(spec.timesteps):
                array = dataset.field_array(field, timestep)
                per_node: dict[int, list[tuple[int, bytes]]] = {}
                for zindex, blob in atomize(array):
                    node_id = self.partitioner.node_of_atom(zindex)
                    per_node.setdefault(node_id, []).append((zindex, blob))
                for node_id, atoms in per_node.items():
                    node = self.nodes[node_id]
                    with node.db.transaction() as txn:
                        stored += node.store_atoms(
                            txn, spec.name, field, timestep, atoms
                        )
        self.drop_page_caches()
        return stored

    # -- queries ----------------------------------------------------------------------

    def threshold(
        self,
        query: ThresholdQuery,
        processes: int = 1,
        use_cache: bool = True,
        io_only: bool = False,
        max_points: int = MAX_RESULT_POINTS,
        timeout: float | None = None,
    ) -> ThresholdResult:
        """Evaluate a threshold query across the cluster.

        Args:
            processes: worker processes per node.
            use_cache: probe/maintain the semantic cache (the "no cache"
                baseline sets this false).
            io_only: only perform the raw reads (Fig. 8).
            max_points: global result limit.
            timeout: per-node-part budget in wall seconds on networked
                transports (``None`` uses the transport's default).

        Raises:
            ThresholdTooLowError: when more than ``max_points`` match.
        """
        query_id = tracing.new_trace_id()
        with tracing.span(
            "query.threshold", trace_id=query_id,
            dataset=query.dataset, field=query.field,
            timestep=query.timestep, threshold=query.threshold,
        ) as root:
            box = self._query_box(query.dataset, query.box)
            node_results = self._scatter(
                lambda node_id: self.transport.threshold_part(
                    node_id,
                    query,
                    self.partitioner.query_boxes(node_id, box),
                    use_cache=use_cache,
                    processes=processes,
                    io_only=io_only,
                    timeout=timeout,
                )
            )
            total = sum(len(r) for r in node_results)
            if total > max_points:
                raise ThresholdTooLowError(total, max_points)

            ledger = CostLedger.parallel([r.ledger for r in node_results])
            self._charge_networks(ledger, total)
            ledger.count(METER_RESULT_POINTS, total)

            # Nodes own disjoint curve spans gathered in node order, so
            # this is a plain concatenation on the fast path.
            zindexes, values = merge_sorted_runs(
                [(r.zindexes, r.values) for r in node_results]
            )
            hits = sum(1 for r in node_results if r.cache_hit)
            participating = sum(
                1 for r in node_results
                if len(r) or r.boxes_evaluated or r.cache_hit
            )
            self.statistics._record(
                nodes=participating,
                hits=hits,
                points=total,
                seconds=ledger.total,
            )
            self._observe_query(
                "threshold", ledger, total, fanout=participating,
                node_hits=hits, node_misses=participating - hits,
            )
            root.set("points", total)
            root.attach_ledger(ledger)
            return ThresholdResult(
                zindexes,
                values,
                ledger,
                cache_hits=hits,
                nodes=self.node_count,
                query_id=query_id,
            )

    def batch_threshold(
        self,
        queries: list[ThresholdQuery],
        processes: int = 1,
        use_cache: bool = True,
        max_points: int = MAX_RESULT_POINTS,
        timeout: float | None = None,
    ):
        """Evaluate several same-source threshold queries in one pass.

        Queries must share dataset, timestep, region, FD order and raw
        source field (e.g. vorticity + Q-criterion, both from the
        velocity); the raw data are then read once for the whole batch
        (see :mod:`repro.core.batch`).

        Returns a :class:`repro.core.batch.BatchThresholdResult` whose
        ``results`` align with the submitted queries.

        Raises:
            ValueError: if the queries cannot share a scan.
            ThresholdTooLowError: when any query exceeds ``max_points``.
        """
        from repro.core.batch import BatchThresholdResult, check_batchable

        check_batchable(queries, self.registry)
        query_id = tracing.new_trace_id()
        with tracing.span(
            "query.batch_threshold", trace_id=query_id,
            dataset=queries[0].dataset, queries=len(queries),
        ) as root:
            box = self._query_box(queries[0].dataset, queries[0].box)
            node_results = self._scatter(
                lambda node_id: self.transport.batch_part(
                    node_id,
                    queries,
                    self.partitioner.query_boxes(node_id, box),
                    use_cache=use_cache,
                    processes=processes,
                    timeout=timeout,
                )
            )
            ledger = CostLedger.parallel(
                [per_node[0].ledger for per_node in node_results]
            )
            results = []
            total_points = 0
            for i, query in enumerate(queries):
                zindexes, values = merge_sorted_runs(
                    [
                        (per_node[i].zindexes, per_node[i].values)
                        for per_node in node_results
                    ]
                )
                if len(zindexes) > max_points:
                    raise ThresholdTooLowError(len(zindexes), max_points)
                total_points += len(zindexes)
                results.append(
                    ThresholdResult(
                        zindexes, values, ledger,
                        cache_hits=sum(
                            1 for per_node in node_results if per_node[i].cache_hit
                        ),
                        nodes=self.node_count,
                        query_id=query_id,
                    )
                )
            self._charge_networks(ledger, total_points)
            ledger.count(METER_RESULT_POINTS, total_points)
            for i in range(len(queries)):
                participating = sum(
                    1
                    for per_node in node_results
                    if len(per_node[i])
                    or per_node[i].boxes_evaluated
                    or per_node[i].cache_hit
                )
                self.statistics._record(
                    nodes=participating,
                    hits=results[i].cache_hits,
                    points=len(results[i]),
                    seconds=ledger.total if i == 0 else 0.0,
                )
            self._observe_query(
                "batch_threshold", ledger, total_points,
                fanout=len(node_results),
            )
            root.set("points", total_points)
            root.attach_ledger(ledger)
            return BatchThresholdResult(results, ledger)

    def pdf(
        self,
        query: PdfQuery,
        processes: int = 1,
        use_cache: bool = True,
        timeout: float | None = None,
    ) -> PdfResult:
        """Histogram a field's norm over an entire timestep (Fig. 2)."""
        query_id = tracing.new_trace_id()
        with tracing.span(
            "query.pdf", trace_id=query_id,
            dataset=query.dataset, field=query.field, timestep=query.timestep,
        ) as root:
            box = self._query_box(query.dataset, None)
            node_results = self._scatter(
                lambda node_id: self.transport.pdf_part(
                    node_id,
                    query,
                    self.partitioner.query_boxes(node_id, box),
                    use_cache=use_cache,
                    processes=processes,
                    timeout=timeout,
                )
            )
            counts = sum(r.counts for r in node_results)
            ledger = CostLedger.parallel([r.ledger for r in node_results])
            # A PDF response is a handful of numbers; charge latency only.
            self._charge_networks(ledger, result_points=0)
            self._observe_query(
                "pdf", ledger, points=0, fanout=len(node_results),
            )
            root.attach_ledger(ledger)
            return PdfResult(counts, query.bin_edges, ledger, query_id=query_id)

    def topk(
        self,
        query: TopKQuery,
        processes: int = 1,
        use_cache: bool = True,
        timeout: float | None = None,
    ) -> TopKResult:
        """The k highest-norm locations of a timestep.

        A node whose cached threshold entry holds at least ``k`` points
        answers its share from the cache (see
        :func:`repro.core.topk.get_topk_on_node`).
        """
        query_id = tracing.new_trace_id()
        with tracing.span(
            "query.topk", trace_id=query_id,
            dataset=query.dataset, field=query.field,
            timestep=query.timestep, k=query.k,
        ) as root:
            box = self._query_box(query.dataset, None)
            node_results = self._scatter(
                lambda node_id: self.transport.topk_part(
                    node_id,
                    query,
                    self.partitioner.query_boxes(node_id, box),
                    use_cache=use_cache,
                    processes=processes,
                    timeout=timeout,
                )
            )
            zindexes = np.concatenate([r.zindexes for r in node_results])
            values = np.concatenate([r.values for r in node_results])
            if len(values) > query.k:
                keep = np.argpartition(values, -query.k)[-query.k :]
                zindexes, values = zindexes[keep], values[keep]
            order = np.argsort(values)[::-1]
            ledger = CostLedger.parallel([r.ledger for r in node_results])
            self._charge_networks(ledger, len(values))
            self._observe_query(
                "topk", ledger, len(values), fanout=len(node_results),
            )
            root.attach_ledger(ledger)
            return TopKResult(
                zindexes[order], values[order], ledger, query_id=query_id
            )

    def get_field(
        self,
        dataset: str,
        field: str,
        timestep: int,
        box: Box,
        fd_order: int = 4,
    ) -> tuple[np.ndarray, CostLedger]:
        """Server-side evaluation of a derived field's norm over a box.

        This is the "request the values of the derived field directly"
        path (paper §4) that the local-evaluation baseline uses; the
        result array crosses the WAN with XML inflation.
        """
        self._require_local("get_field")
        derived = self.registry.get(field)
        ledger = CostLedger()
        out = np.empty(box.shape, dtype=np.float64)
        for node_id, node in enumerate(self.nodes):
            pieces = self.partitioner.query_boxes(node_id, box)
            if not pieces:
                continue
            node_ledger = CostLedger()
            with node.db.transaction(node_ledger) as txn:
                for piece in pieces:
                    executor = self.executors[node_id]
                    block = executor._fetch_block(
                        txn, node_ledger, node.dataset(dataset), derived,
                        timestep, piece, fd_order,
                    )
                    norm = derived.norm(block, node.dataset(dataset).spacing, fd_order)
                    node_ledger.charge(
                        Category.COMPUTE,
                        self.spec.cpu.compute_time(
                            piece.volume, derived.units_per_point
                        ),
                    )
                    dst = tuple(
                        slice(p - b, q - b)
                        for p, q, b in zip(piece.lo, piece.hi, box.lo)
                    )
                    out[dst] = norm
            ledger = CostLedger.parallel([ledger, node_ledger])
        payload = out.size * 4  # float32 on the wire
        ledger.charge(
            Category.MEDIATOR_DB,
            self.spec.lan.transfer_time(payload, round_trips=len(self.nodes)),
        )
        ledger.charge(
            Category.MEDIATOR_USER, self.spec.wan.transfer_time(payload)
        )
        return out, ledger

    def get_gradient(
        self,
        dataset: str,
        field: str,
        timestep: int,
        box: Box,
        fd_order: int = 4,
    ) -> tuple[np.ndarray, CostLedger]:
        """Server-side velocity-gradient tensor over a box, shipped raw.

        This is the transfer the paper's §5.3 local-evaluation story is
        about: the 9-component gradient is at least 3x the size of the
        stored vector field, and it crosses the WAN wrapped in XML.
        Returns ``(tensor, ledger)`` with tensor shape ``box.shape + (3, 3)``.
        """
        from repro.fields.finite_difference import kernel_half_width
        from repro.fields.operators import gradient_tensor_interior

        self._require_local("get_gradient")
        derived = self.registry.get(field)
        ledger = CostLedger()
        out = np.empty(box.shape + (3, 3), dtype=np.float64)
        for node_id, node in enumerate(self.nodes):
            pieces = self.partitioner.query_boxes(node_id, box)
            if not pieces:
                continue
            node_ledger = CostLedger()
            with node.db.transaction(node_ledger) as txn:
                for piece in pieces:
                    executor = self.executors[node_id]
                    block = executor._fetch_block(
                        txn, node_ledger, node.dataset(dataset), derived,
                        timestep, piece, fd_order,
                        halo=kernel_half_width(fd_order),
                    )
                    tensor = gradient_tensor_interior(
                        block, node.dataset(dataset).spacing, fd_order,
                        kernel_half_width(fd_order),
                    )
                    node_ledger.charge(
                        Category.COMPUTE,
                        self.spec.cpu.compute_time(piece.volume, 1.0),
                    )
                    dst = tuple(
                        slice(p - b, q - b)
                        for p, q, b in zip(piece.lo, piece.hi, box.lo)
                    )
                    out[dst] = tensor
            ledger = CostLedger.parallel([ledger, node_ledger])
        payload = out.size * 4  # float32 on the wire, 9 components/point
        ledger.charge(
            Category.MEDIATOR_DB,
            self.spec.lan.transfer_time(payload, round_trips=len(self.nodes)),
        )
        ledger.charge(
            Category.MEDIATOR_USER, self.spec.wan.transfer_time(payload)
        )
        return out, ledger

    # -- maintenance -------------------------------------------------------------------

    def drop_cache_entries(self, dataset: str, field: str, timestep: int) -> int:
        """Drop semantic-cache entries on every node (cold-cache resets)."""
        return sum(
            cache.drop_timestep(dataset, field, timestep)
            for cache in self.caches
            if cache is not None
        )

    def clear_caches(self) -> int:
        """Empty every node's semantic cache."""
        return sum(cache.clear() for cache in self.caches if cache is not None)

    def drop_page_caches(self) -> None:
        """Empty every node's buffer pools (cold I/O)."""
        for node in self.nodes:
            node.db.drop_page_cache()

    # -- catalogue and control -----------------------------------------------------------

    def dataset_names(self, timeout: float | None = None) -> list[str]:
        """Sorted names of every dataset hosted by the cluster."""
        return self.transport.dataset_names(timeout=timeout)

    def register_expression(
        self, name: str, text: str, timeout: float | None = None
    ) -> dict:
        """Register a derived-field expression wherever queries evaluate.

        In-process this lands in :attr:`registry`; over TCP it is
        broadcast to every node server (never retried — registration is
        not idempotent).  Returns the field's description (``name``,
        ``source``, ``halo_depth``, ``units_per_point``).
        """
        return self.transport.register_expression(name, text, timeout=timeout)

    def _require_local(self, operation: str) -> None:
        """Refuse an operation that touches node storage directly.

        Raises:
            UnsupportedRemoteOperationError: when this mediator fronts
                remote node servers instead of in-process nodes.
        """
        if not self.nodes:
            raise UnsupportedRemoteOperationError(
                f"{operation} runs where the storage lives; this mediator "
                f"fronts remote node servers (load data through each "
                f"server's own ingest instead)"
            )

    # -- internals ----------------------------------------------------------------------

    def _query_box(self, dataset: str, box: Box | None) -> Box:
        side = self.transport.dataset_side(dataset)
        if box is None:
            return Box.cube(side)
        domain = Box.cube(side)
        if not domain.contains_box(box):
            raise ValueError(f"query box {box} outside domain of side {side}")
        return box

    def _scatter(self, task: Callable[[int], T]) -> list[T]:
        """Submit a per-node task asynchronously and gather the results.

        With ``sequential_scatter`` the node tasks run one after another
        instead: simulated times are identical by construction (parallel
        composition happens in the ledgers, not the threads), but buffer-
        pool races between concurrent halo reads disappear, making the
        simulated-second output bit-for-bit reproducible.  Experiments
        use this; interactive use keeps the asynchronous scheduling of
        the paper's mediator.

        Each node part runs under its own trace span.  Pool workers do
        not inherit the submitting thread's contextvars, so every submit
        ships a copy of the current context — that is what parents the
        part spans under the query's root span across threads.
        """
        def run(node_id: int) -> T:
            with tracing.span("node.part", node=node_id) as part:
                try:
                    result = task(node_id)
                except Exception as error:
                    # This node's subtree ends here — the trace shows an
                    # explicitly-marked orphan instead of silent loss.
                    tracing.mark_orphaned(part, type(error).__name__)
                    raise
                ledger = getattr(result, "ledger", None)
                if ledger is not None:
                    part.attach_ledger(ledger)
                return result

        if self.sequential_scatter:
            return [
                self._run_part(run, node_id)
                for node_id in range(self.node_count)
            ]
        pool = self._ensure_pool()
        futures = [
            pool.submit(contextvars.copy_context().run, run, node_id)
            for node_id in range(self.node_count)
        ]
        return self._gather(futures)

    def _run_part(self, run: Callable[[int], T], node_id: int) -> T:
        """One node part with the gather's error typing (sequential path)."""
        try:
            return run(node_id)
        except (DeadlineExceededError, PartialFailureError):
            raise
        except NetError as error:
            raise self._part_failure(node_id, error) from error

    def _part_failure(self, node_id: int, error: NetError) -> PartialFailureError:
        """A machine-readable part failure: which nodes, which curve spans.

        On a replicated cluster the transport's
        :class:`~repro.net.errors.NoLiveReplicaError` names every
        replica it tried; those node ids and the shard's Morton range
        ride on the exception so callers (retry layers, tests, the web
        tier's error mapper) can target exactly what was lost.
        """
        attempted = tuple(getattr(error, "attempted", ()) or (node_id,))
        return PartialFailureError(
            node_id,
            f"node {node_id} part failed: {error}",
            node_ids=attempted,
            ranges=(self.partitioner.node_ranges(node_id),),
        )

    def _gather(self, futures: "list[Future[T]]") -> list[T]:
        """Collect part futures under the scatter deadline.

        On the first failure — or when :attr:`scatter_timeout` expires —
        the remaining parts are cancelled where still queued and drained
        where already running (every part is bounded: in-process parts
        terminate on their own, RPC parts carry per-request deadlines),
        and their exceptions consumed so none leaks to the pool.

        Raises:
            DeadlineExceededError: the gather outlived its budget, or a
                part's own RPC deadline expired (a slow node).
            PartialFailureError: a part failed with any other transport
                error after its retries were exhausted (a dead node).
        """
        deadline = Deadline.after(self.scatter_timeout)
        results: list[T] = []
        try:
            for node_id, future in enumerate(futures):
                try:
                    results.append(future.result(timeout=deadline.remaining()))
                except FuturesTimeoutError:
                    raise DeadlineExceededError(
                        f"scatter gather exceeded its {self.scatter_timeout}s "
                        f"budget waiting on node {node_id}"
                    ) from None
                except (DeadlineExceededError, PartialFailureError):
                    raise
                except NetError as error:
                    raise self._part_failure(node_id, error) from error
        except BaseException:
            self._drain(futures)
            raise
        return results

    def _drain(self, futures: "list[Future[T]]") -> None:
        """Cancel queued parts, wait out running ones, eat their errors."""
        for future in futures:
            future.cancel()
        wait(futures, timeout=self.scatter_timeout)
        for future in futures:
            if future.done() and not future.cancelled():
                future.exception()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        """The shared scatter pool, created on first asynchronous query.

        Sized at nodes x a small oversubscription factor so that several
        concurrent client queries scatter without queueing behind each
        other (the paper's mediator keeps every data node busy per
        request; concurrent requests interleave at the node level).
        """
        with self._pool_lock:
            if self._scatter_pool is None:
                self._scatter_pool = ThreadPoolExecutor(
                    max_workers=max(8, 4 * len(self.nodes)),
                    thread_name_prefix="scatter",
                )
            return self._scatter_pool

    def close(self) -> None:
        """Tear the whole service down (idempotent).

        Shuts down the scatter pool, closes the transport (for TCP, every
        pooled connection), and closes each in-process node's database —
        flushing write-ahead logs and releasing buffer-pool frames.  The
        scatter pool alone restarts lazily, but a query after ``close``
        on an in-process cluster fails in the storage layer because the
        node databases refuse new transactions.
        """
        with self._pool_lock:
            pool, self._scatter_pool = self._scatter_pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        self.transport.close()
        for node in self.nodes:
            node.close()

    def __enter__(self) -> "Mediator":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _charge_networks(self, ledger: CostLedger, result_points: int) -> None:
        result_bytes = result_points * self.spec.point_record_bytes
        ledger.charge(
            Category.MEDIATOR_DB,
            self.spec.lan.transfer_time(
                result_bytes, round_trips=self.node_count
            ),
        )
        ledger.charge(
            Category.MEDIATOR_USER, self.spec.wan.transfer_time(result_bytes)
        )


def build_cluster(
    dataset: SyntheticDataset,
    nodes: int = 4,
    spec: ClusterSpec | None = None,
    registry: FieldRegistry | None = None,
    cache_capacity_bytes: int | None = 256 * 1024 * 1024,
    buffer_pages: int = 256,
    load: bool = True,
    sequential_scatter: bool = False,
) -> Mediator:
    """Stand up a cluster and (optionally) ingest a dataset into it.

    Args:
        dataset: the synthetic dataset to host.
        nodes: node count (1, 2, 4 or 8).
        spec: hardware spec (defaults to the paper-calibrated cluster).
        cache_capacity_bytes: per-node cache budget; ``None`` = no cache.
        buffer_pages: buffer-pool frames per table — small by default so
            that a timestep's share exceeds the pool, as at production
            scale.
        load: ingest every field and timestep now.
    """
    spec = spec or paper_cluster()
    partitioner = MortonPartitioner(dataset.spec.side, nodes)
    cluster_nodes = [
        DatabaseNode(node_id, spec, buffer_pages=buffer_pages)
        for node_id in range(nodes)
    ]
    mediator = Mediator(
        cluster_nodes,
        partitioner,
        registry=registry,
        spec=spec,
        cache_capacity_bytes=cache_capacity_bytes,
        sequential_scatter=sequential_scatter,
    )
    for node in cluster_nodes:
        node.register_dataset(dataset.spec)
    if load:
        mediator.load_dataset(dataset)
    return mediator
