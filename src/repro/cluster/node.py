"""A database node: atom tables on HDD arrays, cache tables on SSD.

Each node runs its own :class:`~repro.storage.database.Database` holding
one atom table per (dataset, raw field) pair, plus the local
application-aware cache tables managed by :mod:`repro.core.cache`
(paper Fig. 5).  Nodes answer two kinds of internal requests: clustered
range scans of their atom tables, and small boundary (halo) reads on
behalf of neighbouring nodes.
"""

from __future__ import annotations

from repro.costmodel import Category, ClusterSpec, CostLedger
from repro.costmodel.ledger import METER_HALO_BYTES, METER_HALO_SECONDS
from repro.grid import Box
from repro.grid.atoms import atom_ranges_covering
from repro.morton import MortonRange
from repro.obs import tracing
from repro.simulation.datasets import DatasetSpec
from repro.storage import (
    Column,
    ColumnType,
    Database,
    StorageDevice,
    TableSchema,
    Transaction,
)


def _atom_table_name(dataset: str, field: str) -> str:
    return f"atoms_{dataset}_{field}"


class DatabaseNode:
    """One node of the analysis cluster.

    Args:
        node_id: position of this node in the cluster.
        spec: hardware description used for simulated-time charging.
        buffer_pages: buffer-pool frames per table.
    """

    def __init__(
        self,
        node_id: int,
        spec: ClusterSpec,
        buffer_pages: int = 2048,
        durable: bool = False,
    ) -> None:
        wal = None
        if durable:
            from repro.storage.wal import WriteAheadLog

            # The log shares the SSD (its appends are sequential).
            log_device = StorageDevice(
                "wal", spec.ssd, Category.CACHE_LOOKUP
            )
            wal = WriteAheadLog(log_device)
        self.node_id = node_id
        self.spec = spec
        self.db = Database(f"node{node_id}", buffer_pages=buffer_pages, wal=wal)
        self.db.add_device(StorageDevice("hdd", spec.hdd, Category.IO))
        self.db.add_device(StorageDevice("ssd", spec.ssd, Category.CACHE_LOOKUP))
        if wal is not None:
            self.db.add_device(wal._device)
        self._datasets: dict[str, DatasetSpec] = {}

    # -- schema -----------------------------------------------------------------

    def register_dataset(self, spec: DatasetSpec) -> None:
        """Create the atom tables for every raw field of a dataset."""
        if spec.name in self._datasets:
            raise ValueError(f"dataset {spec.name!r} already registered")
        self._datasets[spec.name] = spec
        for field in spec.fields:
            self.db.create_table(
                TableSchema(
                    _atom_table_name(spec.name, field),
                    (
                        Column("timestep", ColumnType.INTEGER),
                        Column("zindex", ColumnType.BIGINT),
                        Column("blob", ColumnType.BLOB),
                    ),
                    primary_key=("timestep", "zindex"),
                    # Bulk-loaded simulation output is reproducible from
                    # its source; keep it out of the write-ahead log.
                    logged=False,
                ),
                device="hdd",
            )

    def close(self) -> None:
        """Close the node's database (flush WAL, release buffer pools)."""
        self.db.close()

    def dataset(self, name: str) -> DatasetSpec:
        """The spec of a hosted dataset.  Raises :class:`KeyError` if absent."""
        try:
            return self._datasets[name]
        except KeyError:
            raise KeyError(f"node {self.node_id} has no dataset {name!r}") from None

    @property
    def dataset_names(self) -> list[str]:
        return sorted(self._datasets)

    # -- atom I/O -----------------------------------------------------------------

    def store_atom(
        self,
        txn: Transaction,
        dataset: str,
        field: str,
        timestep: int,
        zindex: int,
        blob: bytes,
    ) -> None:
        """Insert one atom record."""
        table = self.db.table(_atom_table_name(dataset, field))
        table.insert(
            txn, {"timestep": timestep, "zindex": zindex, "blob": blob}
        )

    def store_atoms(
        self,
        txn: Transaction,
        dataset: str,
        field: str,
        timestep: int,
        atoms: list[tuple[int, bytes]],
    ) -> int:
        """Bulk-insert ``(zindex, blob)`` atom records in one batch.

        Dataset loads push millions of atoms; routing them through
        :meth:`~repro.storage.table.Table.insert_many` takes the latch
        once per batch instead of once per atom.  Returns the number of
        atoms stored.
        """
        table = self.db.table(_atom_table_name(dataset, field))
        return table.insert_many(
            txn,
            [
                {"timestep": timestep, "zindex": zindex, "blob": blob}
                for zindex, blob in atoms
            ],
        )

    def replace_atoms(
        self,
        txn: Transaction,
        dataset: str,
        field: str,
        timestep: int,
        atoms: list[tuple[int, bytes]],
    ) -> int:
        """Upsert ``(zindex, blob)`` atom records (anti-entropy catch-up).

        The atom tables' primary key is ``(timestep, zindex)``, so a
        rejoining node whose copy diverged (rather than being absent)
        cannot plain-insert the peer's version; deleting any existing
        record first turns the bulk insert into an upsert.  Returns the
        number of atoms written.
        """
        table = self.db.table(_atom_table_name(dataset, field))
        for zindex, _blob in atoms:
            table.delete(txn, (timestep, zindex))
        return table.insert_many(
            txn,
            [
                {"timestep": timestep, "zindex": zindex, "blob": blob}
                for zindex, blob in atoms
            ],
        )

    def read_atoms(
        self,
        txn: Transaction,
        dataset: str,
        field: str,
        timestep: int,
        ranges: list[MortonRange],
        charge: bool = True,
    ) -> dict[int, bytes]:
        """Clustered range scans returning ``zindex -> blob`` for atoms.

        Each :class:`MortonRange` is in grid-point codes (as produced by
        :func:`repro.grid.atoms.atom_ranges_covering`); one range is one
        sequential extent on disk.  ``charge`` False reads without buffer-
        pool side effects (halo service for a peer).
        """
        table = self.db.table(_atom_table_name(dataset, field))
        out: dict[int, bytes] = {}
        # Ranges arrive sorted along the curve, so the disk visits them in
        # elevator order: only the first range pays a full seek, later
        # ranges are forward skips served by read-ahead (SQL Server's
        # sequential scan behaviour the paper's I/O numbers reflect).
        # The columnar scan hands back (zindex, blob) column batches, so
        # no per-row dict is ever materialised on this path.
        first_range = True
        for rng in ranges:
            for zcol, bcol in table.scan_column_batches(
                txn, ["zindex", "blob"],
                (timestep, rng.start), (timestep, rng.stop),
                sequential=not first_range, charge=charge,
            ):
                out.update(zip(zcol, bcol))  # type: ignore[arg-type]
            first_range = False
        return out

    def read_atoms_for_box(
        self,
        txn: Transaction,
        dataset: str,
        field: str,
        timestep: int,
        box: Box,
    ) -> dict[int, bytes]:
        """Atoms covering an in-domain box (local data only)."""
        side = self.dataset(dataset).side
        return self.read_atoms(
            txn, dataset, field, timestep, atom_ranges_covering(box, side)
        )

    def serve_halo(
        self,
        dataset: str,
        field: str,
        timestep: int,
        ranges: list[MortonRange],
        ledger: CostLedger | None,
    ) -> dict[int, bytes]:
        """Serve a boundary read for a peer node.

        The atoms a node serves as halo are part of its *own* share of
        the same distributed query, so its local scan has them buffer-hot
        — the marginal cost of the boundary exchange is shipping the
        band over the node interconnect, not extra disk I/O (paper §4:
        "only a small amount of data along the boundary need to be
        requested from adjacent nodes").  The transfer time is charged
        to the requesting query's ledger as I/O-phase time; the read
        leaves no trace in this node's buffer pool (its own scan of the
        same query pays for those pages itself).
        """
        with tracing.span("node.halo", category="io") as halo_span:
            halo_span.set("server", self.node_id)
            with self.db.transaction(None) as txn:
                atoms = self.read_atoms(
                    txn, dataset, field, timestep, ranges, charge=False
                )
            if ledger is not None:
                nbytes = sum(len(blob) for blob in atoms.values())
                seconds = self.spec.interconnect.transfer_time(nbytes)
                ledger.charge(Category.IO, seconds)
                ledger.count(METER_HALO_SECONDS, seconds)
                ledger.count(METER_HALO_BYTES, nbytes)
                halo_span.set("bytes", nbytes)
        return atoms
