"""High availability: replicated shards, health-aware routing, failover.

The paper's service model assumes every Morton shard is always
answerable; this package removes that assumption for production-scale
deployments.  Four cooperating pieces:

* :mod:`repro.ha.placement` — R-way replica placement of the
  partitioner's Morton shards onto cluster nodes (rack-spread
  round-robin), shared by ``serve-node`` ingest and the mediator's
  routing;
* :mod:`repro.ha.router` — per-node health (heartbeat probes,
  consecutive-failure tracking) and EWMA latency, producing a best-
  replica-first routing order per shard;
* :mod:`repro.ha.failover` — :class:`HaTcpTransport`, a drop-in
  :class:`~repro.net.transport.TcpTransport` that retries a failed
  shard part against surviving replicas mid-query, so a killed node
  degrades a query's latency instead of its answer;
* :mod:`repro.ha.anti_entropy` — digest-based catch-up for a rejoining
  node: compare per-range chunk digests against a peer replica and
  bulk-fetch only the divergent atoms over the existing RPC path.
"""

from repro.ha.anti_entropy import CatchUpReport, catch_up, chunk_digests
from repro.ha.failover import HaTcpTransport
from repro.ha.placement import PlacementMap
from repro.ha.router import ReplicaRouter

__all__ = [
    "CatchUpReport",
    "HaTcpTransport",
    "PlacementMap",
    "ReplicaRouter",
    "catch_up",
    "chunk_digests",
]
