"""Health- and latency-aware replica selection.

A :class:`ReplicaRouter` sits between the HA transport and its
:class:`~repro.net.pool.ConnectionPool` list.  It keeps two facts per
node:

* an **EWMA of call latency**, fed from the same wall-clock samples the
  transport's ``rpc_latency_seconds`` histogram observes, so routing
  preferences track the live cluster rather than a static order;
* a **health state**: a node is unhealthy after
  ``failure_threshold`` consecutive call/probe failures and healthy
  again after one success — the cheap, hysteresis-free scheme that
  matches the transport's own retry granularity.

``route(shard)`` returns the shard's replicas best-first: healthy
nodes ordered by EWMA latency, then unhealthy ones as a last resort
(a "dead" node may have just rejoined; trying it after every healthy
replica failed costs nothing extra).  An optional heartbeat thread
probes every node at a fixed interval so a dead replica is demoted
*between* queries, not discovered by the first scatter that hits it.
"""

from __future__ import annotations

import threading
from typing import Callable, Sequence

from repro.ha.placement import PlacementMap
from repro.net.errors import NetError

#: Weight of the newest latency sample in the EWMA.
EWMA_ALPHA = 0.3

#: Consecutive failures after which a node is routed around.
FAILURE_THRESHOLD = 3


class _NodeState:
    """Mutable per-node health/latency record (guarded by the router)."""

    __slots__ = ("ewma", "failures")

    def __init__(self) -> None:
        self.ewma: float | None = None
        self.failures = 0


class ReplicaRouter:
    """Best-live-replica-first routing over a placement map.

    Args:
        placement: which nodes hold which shards.
        failure_threshold: consecutive failures before a node is
            considered unhealthy.
        probe: optional health probe (``node_id -> rtt seconds``,
            raising :class:`~repro.net.errors.NetError` on failure);
            required when :meth:`start_heartbeat` is used.
        heartbeat_interval: seconds between heartbeat rounds.
    """

    def __init__(
        self,
        placement: PlacementMap,
        *,
        failure_threshold: int = FAILURE_THRESHOLD,
        probe: Callable[[int], float] | None = None,
        heartbeat_interval: float = 5.0,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be positive")
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        self.placement = placement
        self.failure_threshold = failure_threshold
        self.heartbeat_interval = heartbeat_interval
        self._probe = probe
        self._lock = threading.Lock()
        self._states = [_NodeState() for _ in range(placement.nodes)]
        self._stop = threading.Event()
        self._heartbeat: threading.Thread | None = None

    # -- observations ----------------------------------------------------------

    def record_success(self, node_id: int, latency: float) -> None:
        """Fold one successful call's wall seconds into the node's EWMA."""
        with self._lock:
            state = self._states[node_id]
            state.failures = 0
            if state.ewma is None:
                state.ewma = latency
            else:
                state.ewma += EWMA_ALPHA * (latency - state.ewma)

    def record_failure(self, node_id: int) -> None:
        """Count one failed call/probe against the node's health."""
        with self._lock:
            self._states[node_id].failures += 1

    def is_healthy(self, node_id: int) -> bool:
        """Whether the node is below the consecutive-failure threshold."""
        with self._lock:
            return self._states[node_id].failures < self.failure_threshold

    def latency(self, node_id: int) -> float | None:
        """The node's EWMA latency in seconds (``None`` before samples)."""
        with self._lock:
            return self._states[node_id].ewma

    def unhealthy_count(self) -> int:
        """Nodes currently over the failure threshold (a gauge value)."""
        with self._lock:
            return sum(
                1
                for state in self._states
                if state.failures >= self.failure_threshold
            )

    # -- routing ---------------------------------------------------------------

    def route(self, shard_id: int) -> list[int]:
        """The shard's replicas, best candidate first.

        Healthy replicas come first, ordered by EWMA latency (unsampled
        nodes sort ahead of sampled ones — a node nothing is known
        about should get traffic, not be starved); unhealthy replicas
        follow in placement order as a last resort, so a fully-dark
        shard still produces attempts rather than an instant failure.
        """
        replicas = self.placement.replicas_of(shard_id)
        with self._lock:
            healthy = [
                node
                for node in replicas
                if self._states[node].failures < self.failure_threshold
            ]
            healthy.sort(
                key=lambda node: (
                    self._states[node].ewma is not None,
                    self._states[node].ewma or 0.0,
                )
            )
            unhealthy = [node for node in replicas if node not in healthy]
        return healthy + unhealthy

    # -- heartbeat -------------------------------------------------------------

    def probe_once(self, nodes: Sequence[int] | None = None) -> None:
        """One probe round: ping each node, fold the outcome in."""
        if self._probe is None:
            raise ValueError("router has no probe function")
        for node_id in nodes if nodes is not None else range(
            self.placement.nodes
        ):
            try:
                rtt = self._probe(node_id)
            except (NetError, OSError):
                self.record_failure(node_id)
            else:
                self.record_success(node_id, rtt)

    def start_heartbeat(self) -> None:
        """Probe every node at the configured interval, in the background."""
        if self._probe is None:
            raise ValueError("router has no probe function")
        if self._heartbeat is not None:
            return
        self._stop.clear()
        self._heartbeat = threading.Thread(
            target=self._heartbeat_loop, name="ha-heartbeat", daemon=True
        )
        self._heartbeat.start()

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            try:
                self.probe_once()
            except Exception:  # pragma: no cover - probe must never kill us
                pass

    def close(self) -> None:
        """Stop the heartbeat thread (idempotent)."""
        self._stop.set()
        if self._heartbeat is not None:
            self._heartbeat.join(timeout=2.0)
            self._heartbeat = None

    def __enter__(self) -> "ReplicaRouter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
