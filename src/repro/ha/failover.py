"""Mid-query failover: a TcpTransport that routes shards over replicas.

:class:`HaTcpTransport` is a drop-in
:class:`~repro.net.transport.TcpTransport` for replicated clusters.
The mediator keeps addressing *shards* (its scatter is one part per
Morton shard, exactly as before); this transport maps each shard call
to the best live replica via a :class:`~repro.ha.router.ReplicaRouter`
and, when the call dies with a connection-level failure, retries the
*same part* against the next surviving replica:

* only the lost shard's sub-ranges are re-scattered — the other parts
  of the query never notice;
* a streamed part's sink is reset at the start of every attempt (the
  pool already guarantees this), so PARTIAL chunks received from the
  dead node are discarded and the part restarts clean;
* parts are gathered in shard order and merged with
  ``merge_sorted_runs``, so the final answer is byte-identical to the
  unreplicated cluster's no matter which replica served which part.

Failover applies to idempotent reads only; non-idempotent calls
(field registration) keep their fail-fast semantics.  When every
replica of a shard is exhausted the transport raises
:class:`~repro.net.errors.NoLiveReplicaError` carrying the shard and
the attempted node ids.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.costmodel import ClusterSpec
from repro.ha.placement import PlacementMap
from repro.ha.router import ReplicaRouter
from repro.net.client import CallResult, RetryPolicy
from repro.net.compress import CompressionConfig
from repro.net.errors import (
    ConnectionLostError,
    DeadlineExceededError,
    NetError,
    NoLiveReplicaError,
    NodeUnavailableError,
    RemoteCallError,
)
from repro.net.frame import Buffer
from repro.net.stream import PartialSink
from repro.net.transport import DEFAULT_RPC_TIMEOUT, TcpTransport
from repro.obs import clock, tracing
from repro.obs.metrics import MetricsRegistry

#: Error names (local types and remote halo failures surfaced as typed
#: ERROR frames) that mean "this replica cannot answer right now" —
#: the only failures worth retrying on a different replica.
_FAILOVER_TYPES = frozenset(
    {"ConnectionLostError", "DeadlineExceededError", "NodeUnavailableError"}
)


def failover_worthy(error: NetError) -> bool:
    """Whether an error indicates a dead/unreachable replica.

    Connection loss, node unavailability and a blown deadline all mean
    the *replica* failed, not the request; a typed remote error whose
    remote type is one of those names is a node that answered but could
    not reach a dependency (its own halo peer died mid-query) — another
    replica with a different halo topology may still succeed.
    """
    if isinstance(
        error,
        (ConnectionLostError, DeadlineExceededError, NodeUnavailableError),
    ):
        return True
    return (
        isinstance(error, RemoteCallError)
        and error.remote_type in _FAILOVER_TYPES
    )


class HaTcpTransport(TcpTransport):
    """A replica-routing, mid-query-failover TCP transport.

    Args:
        addresses: one ``"host:port"`` per *node* in node-id order.
        placement: replica placement of the partitioner's shards onto
            those nodes (``placement.nodes`` must match the address
            count).
        router: replica router; built from the placement when omitted.
        heartbeat_interval: when set, starts the router's background
            health probe at this period (seconds); ``None`` (default)
            leaves health tracking to the calls themselves.
        Remaining keyword arguments match
        :class:`~repro.net.transport.TcpTransport`.
    """

    def __init__(
        self,
        addresses: Sequence["str | tuple[str, int]"],
        *,
        placement: PlacementMap,
        router: ReplicaRouter | None = None,
        heartbeat_interval: float | None = None,
        timeout: float = DEFAULT_RPC_TIMEOUT,
        connect_timeout: float = 2.0,
        max_connections: int = 2,
        retry: RetryPolicy | None = None,
        rng: random.Random | None = None,
        pipeline: bool = True,
        compression: CompressionConfig | None = None,
        shm: bool = False,
    ) -> None:
        super().__init__(
            addresses,
            timeout=timeout,
            connect_timeout=connect_timeout,
            max_connections=max_connections,
            retry=retry,
            rng=rng,
            pipeline=pipeline,
            compression=compression,
            shm=shm,
        )
        if placement.nodes != len(self.pools):
            raise ValueError(
                f"placement spans {placement.nodes} nodes but "
                f"{len(self.pools)} addresses were given"
            )
        self.placement = placement
        self.router = router or ReplicaRouter(
            placement,
            probe=self._probe,
            heartbeat_interval=heartbeat_interval or 5.0,
        )
        self._m_failovers = None
        self._m_antientropy = None
        if heartbeat_interval is not None:
            self.router.start_heartbeat()

    def _probe(self, node_id: int) -> float:
        """Heartbeat ping with a budget far below the RPC timeout."""
        return self.ping(node_id, timeout=min(2.0, self.timeout))

    # -- instrumentation -------------------------------------------------------

    def attach(self, metrics: MetricsRegistry, spec: ClusterSpec) -> None:
        super().attach(metrics, spec)
        self._m_failovers = metrics.counter(
            "ha_failovers_total",
            "Shard parts retried on another replica after a node failure",
        )
        self._m_antientropy = metrics.counter(
            "ha_antientropy_chunks_fetched",
            "Divergent atom chunks fetched by anti-entropy catch-up",
        )
        metrics.gauge_callback(
            "ha_replica_unhealthy",
            lambda: float(self.router.unhealthy_count()),
            "Nodes currently over the router's failure threshold",
        )

    def record_antientropy(self, chunks: int) -> None:
        """Fold a catch-up run's fetched chunk count into ``/stats``."""
        if self._m_antientropy is not None and chunks:
            self._m_antientropy.inc(chunks)

    # -- shard routing ---------------------------------------------------------

    def _node_call(
        self,
        physical_node: int,
        method: str,
        header: dict,
        blobs: Sequence[Buffer] = (),
        *,
        idempotent: bool = True,
        timeout: float | None = None,
        sink: PartialSink | None = None,
    ) -> CallResult:
        """One RPC to a specific *node*, feeding the router's EWMA."""
        start = clock.now()
        try:
            result = super()._call(
                physical_node,
                method,
                header,
                blobs,
                idempotent=idempotent,
                timeout=timeout,
                sink=sink,
            )
        except NetError as error:
            if failover_worthy(error):
                self.router.record_failure(physical_node)
            raise
        self.router.record_success(physical_node, clock.now() - start)
        return result

    def _call(
        self,
        node_id: int,
        method: str,
        header: dict,
        blobs: Sequence[Buffer] = (),
        *,
        idempotent: bool = True,
        timeout: float | None = None,
        sink: PartialSink | None = None,
    ) -> CallResult:
        """One shard call with automatic failover across its replicas.

        ``node_id`` is a *shard* id here: the mediator's scatter (and
        the base class's query-part methods) address shards, and this
        override maps each attempt to a physical node via the router.
        Failover applies to idempotent calls only; each attempt gets a
        fresh sink state (the pool resets it), so a partially-streamed
        part restarts clean on the next replica.
        """
        candidates = self.router.route(node_id)
        attempted: list[int] = []
        last_error: NetError | None = None
        for replica in candidates:
            if attempted:
                # This is a failover retry: the previous replica died
                # mid-part.  The span brackets the replacement attempt,
                # so its duration is the part's failover-added latency.
                if self._m_failovers is not None:
                    self._m_failovers.inc()
                with tracing.span(
                    "ha.failover",
                    shard=node_id,
                    dead=attempted[-1],
                    retry=replica,
                    method=method,
                ) as span:
                    try:
                        return self._node_call(
                            replica,
                            method,
                            header,
                            blobs,
                            idempotent=idempotent,
                            timeout=timeout,
                            sink=sink,
                        )
                    except NetError as error:
                        if not (idempotent and failover_worthy(error)):
                            raise
                        span.set("error", type(error).__name__)
                        attempted.append(replica)
                        last_error = error
                continue
            try:
                return self._node_call(
                    replica,
                    method,
                    header,
                    blobs,
                    idempotent=idempotent,
                    timeout=timeout,
                    sink=sink,
                )
            except NetError as error:
                if not (idempotent and failover_worthy(error)):
                    raise
                attempted.append(replica)
                last_error = error
        raise NoLiveReplicaError(
            node_id,
            tuple(attempted),
            f"shard {node_id}: no live replica (tried nodes "
            f"{attempted}): {last_error}",
        ) from last_error

    # -- node-addressed control plane ------------------------------------------

    def register_expression(
        self, name: str, text: str, *, timeout: float | None = None
    ) -> dict:
        # Registration must reach every *node* (any replica may serve
        # any of its shards later), not one node per shard — bypass the
        # shard routing and broadcast, keeping the never-retried
        # semantics of the base class.
        description: dict = {}
        for physical_node in range(len(self.pools)):
            call = self._node_call(
                physical_node,
                "register_field",
                {"name": name, "text": text},
                idempotent=False,
                timeout=timeout,
            )
            description = dict(call.header.get("field", {}))
        return description

    def close(self) -> None:
        self.router.close()
        super().close()
