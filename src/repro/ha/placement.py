"""R-way placement of Morton shards onto cluster nodes.

The partitioner cuts the domain's Morton curve into ``S`` contiguous
shards (paper §5.1); a :class:`PlacementMap` assigns each shard to
``R`` of the cluster's ``N`` nodes.  Replicas are chosen round-robin
starting at the shard's primary (node ``shard_id`` itself, preserving
the replication-factor-1 layout bit-for-bit), preferring nodes in racks
the shard does not already touch so a rack loss never takes out every
copy — the grid-services replication discipline of "When Database
Systems Meet the Grid".

The map is pure arithmetic over ``(shards, nodes, replication_factor,
racks)`` — every process that shares a
:class:`~repro.net.server.ClusterConfig` derives the identical map, so
no placement state ever crosses the wire.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.partition import MortonPartitioner


class PlacementMap:
    """Which nodes hold a copy of each Morton shard.

    Args:
        shards: contiguous Morton shards (the partitioner's node count).
        nodes: physical cluster nodes; shard ``i``'s primary is node
            ``i``, so ``shards`` must equal ``nodes`` in the current
            topology (kept as two arguments because they are two
            different concepts — routing addresses shards, sockets
            address nodes).
        replication_factor: copies of every shard (``1`` reproduces the
            unreplicated seed layout exactly).
        racks: optional per-node rack/host labels, used to spread a
            shard's replicas across failure domains; defaults to one
            rack per node (plain round-robin).
    """

    def __init__(
        self,
        shards: int,
        nodes: int,
        replication_factor: int,
        racks: Sequence[str] | None = None,
    ) -> None:
        if shards < 1 or nodes < 1:
            raise ValueError("a placement needs at least one shard and node")
        if shards != nodes:
            raise ValueError(
                f"{shards} shards over {nodes} nodes: each shard's primary "
                "is the same-numbered node, so the counts must match"
            )
        if not 1 <= replication_factor <= nodes:
            raise ValueError(
                f"replication factor {replication_factor} outside "
                f"[1, {nodes}] for a {nodes}-node cluster"
            )
        if racks is not None and len(racks) != nodes:
            raise ValueError(
                f"{len(racks)} rack labels for {nodes} nodes"
            )
        self.shards = shards
        self.nodes = nodes
        self.replication_factor = replication_factor
        self.racks = (
            tuple(racks) if racks is not None
            else tuple(f"rack{i}" for i in range(nodes))
        )
        self._replicas = tuple(
            self._spread(shard) for shard in range(shards)
        )
        owned: list[list[int]] = [[] for _ in range(nodes)]
        for shard, replicas in enumerate(self._replicas):
            for node in replicas:
                owned[node].append(shard)
        self._owned = tuple(tuple(shards_) for shards_ in owned)

    @classmethod
    def from_partitioner(
        cls,
        partitioner: "MortonPartitioner",
        replication_factor: int,
        racks: Sequence[str] | None = None,
    ) -> "PlacementMap":
        """The placement matching a partitioner's shard count."""
        return cls(
            partitioner.nodes, partitioner.nodes, replication_factor, racks
        )

    def _spread(self, shard: int) -> tuple[int, ...]:
        """Round-robin from the primary, rack-spread where possible.

        The primary always holds its shard; further copies walk the
        ring, first taking nodes in racks the shard does not touch yet,
        then (when racks are exhausted before replicas are) filling the
        remainder in ring order.
        """
        ring = [(shard + k) % self.nodes for k in range(self.nodes)]
        chosen = [ring[0]]
        used_racks = {self.racks[ring[0]]}
        for node in ring[1:]:
            if len(chosen) == self.replication_factor:
                break
            if self.racks[node] not in used_racks:
                chosen.append(node)
                used_racks.add(self.racks[node])
        for node in ring[1:]:
            if len(chosen) == self.replication_factor:
                break
            if node not in chosen:
                chosen.append(node)
        return tuple(chosen)

    def replicas_of(self, shard: int) -> tuple[int, ...]:
        """Nodes holding a copy of ``shard``, primary first."""
        if not 0 <= shard < self.shards:
            raise ValueError(f"shard {shard} outside [0, {self.shards})")
        return self._replicas[shard]

    def shards_of(self, node: int) -> tuple[int, ...]:
        """Shards a node holds a copy of (its ingest set), ascending."""
        if not 0 <= node < self.nodes:
            raise ValueError(f"node {node} outside [0, {self.nodes})")
        return self._owned[node]

    def owns(self, node: int, shard: int) -> bool:
        """Whether ``node`` holds a copy of ``shard``."""
        return node in self.replicas_of(shard)

    def to_wire(self) -> dict:
        """A JSON-serializable description (diagnostics, ``/stats``)."""
        return {
            "shards": self.shards,
            "nodes": self.nodes,
            "replication_factor": self.replication_factor,
            "replicas": [list(r) for r in self._replicas],
        }
