"""Digest-based catch-up for a node rejoining a replicated cluster.

A node that was dead while its peers kept serving has stale shards: any
atom written (or rewritten) in the meantime exists only on the surviving
replicas.  Shipping whole shards to close that gap would cost a full
re-ingest; instead the rejoining node runs Merkle-style anti-entropy at
atom granularity:

1. for every shard it owns, ask one peer replica for the shard's **chunk
   digests** — ``zindex -> blake2b-64`` of each atom blob (one small
   JSON map instead of the atoms themselves);
2. compare against the digests of its own copy;
3. coalesce the divergent atoms into contiguous Morton ranges and fetch
   only those over the existing ``halo`` RPC (a clustered range read on
   the peer, exactly the boundary-exchange path);
4. upsert the fetched blobs locally.

An in-sync shard therefore costs one digest RPC and zero data transfer,
and a partially-stale shard costs transfer proportional to its drift —
never to its size.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Mapping

from repro.grid.atoms import ATOM_VOLUME
from repro.morton import MortonRange
from repro.net import codec
from repro.net.pool import ConnectionPool
from repro.net.transport import parse_address
from repro.obs import tracing

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.server import NodeServer

#: Bytes per chunk digest; 8 (64-bit) matches the collision budget of
#: the usual anti-entropy hashes while keeping the digest map small.
DIGEST_BYTES = 8


def chunk_digests(atoms: Mapping[int, bytes]) -> dict[int, str]:
    """``zindex -> hex digest`` of each atom blob.

    blake2b at 8 bytes is the stdlib stand-in for the xxhash-style
    64-bit content hashes replication systems use: far cheaper than a
    cryptographic-length digest, strong enough that a silent collision
    across two replicas of one atom is not a practical concern.
    """
    return {
        zindex: hashlib.blake2b(blob, digest_size=DIGEST_BYTES).hexdigest()
        for zindex, blob in atoms.items()
    }


def diverging_atoms(
    local: Mapping[int, str], remote: Mapping[int, str]
) -> list[int]:
    """Atoms to fetch from the peer: missing here, or content differs.

    The peer is the source of truth (it stayed up); atoms only the local
    side has are left alone — this cluster's ingest is deterministic, so
    local extras cannot exist unless an operator loaded them on purpose.
    """
    return sorted(
        zindex
        for zindex, digest in remote.items()
        if local.get(zindex) != digest
    )


def coalesce_atoms(zindexes: Iterable[int]) -> list[MortonRange]:
    """Merge atom corner codes into maximal contiguous Morton ranges.

    Each atom spans ``[z, z + ATOM_VOLUME)`` on the curve; adjacent
    stale atoms fuse into one range so the fetch runs as few clustered
    scans as possible on the peer.
    """
    ranges: list[MortonRange] = []
    for zindex in sorted(zindexes):
        if ranges and ranges[-1].stop == zindex:
            ranges[-1] = MortonRange(ranges[-1].start, zindex + ATOM_VOLUME)
        else:
            ranges.append(MortonRange(zindex, zindex + ATOM_VOLUME))
    return ranges


@dataclass(frozen=True)
class CatchUpReport:
    """What one anti-entropy pass compared and moved."""

    shards: tuple[int, ...]
    ranges_checked: int
    atoms_checked: int
    chunks_fetched: int
    bytes_fetched: int


def catch_up(
    server: "NodeServer",
    *,
    timeout: float = 60.0,
    on_chunks: Callable[[int], None] | None = None,
) -> CatchUpReport:
    """Bring every shard this server owns in sync with a peer replica.

    For each owned shard with at least one other replica, the digest
    map of the shard's full Morton range is compared per (dataset,
    field, timestep) against that peer, and only the divergent atoms
    are fetched and upserted.  ``on_chunks`` is called with each
    fetch's chunk count (the HA transport wires its
    ``ha_antientropy_chunks_fetched`` counter here).

    Returns a :class:`CatchUpReport`; raises
    :class:`~repro.net.errors.NetError` if a chosen peer cannot answer.
    """
    placement = server.placement
    addresses = server.peer_addresses
    if addresses is None:
        raise ValueError(
            f"node {server.node_id} has no peer addresses; catch-up needs "
            "connect_peers() with the cluster's address list"
        )
    ranges_checked = atoms_checked = chunks_fetched = bytes_fetched = 0
    shards: list[int] = []
    pools: dict[int, ConnectionPool] = {}

    def pool_for(node_id: int) -> ConnectionPool:
        pool = pools.get(node_id)
        if pool is None:
            host, port = parse_address(addresses[node_id])
            # Serial mode: catch-up is a sequential fetch loop, one
            # request in flight — the pipelined reader thread buys
            # nothing here.
            pool = ConnectionPool(host, port, max_connections=1, pipeline=False)
            pools[node_id] = pool
        return pool

    with tracing.span("ha.catchup", node=server.node_id) as span:
        try:
            for shard in placement.shards_of(server.node_id):
                peers = [
                    node
                    for node in placement.replicas_of(shard)
                    if node != server.node_id
                ]
                if not peers:
                    continue  # replication factor 1: nothing to compare
                shards.append(shard)
                pool = pool_for(peers[0])
                shard_range = server.partitioner.node_ranges(shard)
                for dataset in server.node.dataset_names:
                    spec = server.node.dataset(dataset)
                    for field in sorted(spec.fields):
                        for timestep in range(spec.timesteps):
                            (
                                checked,
                                fetched,
                                nbytes,
                            ) = _sync_range(
                                server,
                                pool,
                                dataset,
                                field,
                                timestep,
                                shard_range,
                                timeout,
                            )
                            ranges_checked += 1
                            atoms_checked += checked
                            chunks_fetched += fetched
                            bytes_fetched += nbytes
                            if on_chunks is not None and fetched:
                                on_chunks(fetched)
        finally:
            for pool in pools.values():
                pool.close()
        span.set("shards", len(shards))
        span.set("chunks_fetched", chunks_fetched)
        span.set("bytes_fetched", bytes_fetched)
    return CatchUpReport(
        shards=tuple(shards),
        ranges_checked=ranges_checked,
        atoms_checked=atoms_checked,
        chunks_fetched=chunks_fetched,
        bytes_fetched=bytes_fetched,
    )


def _sync_range(
    server: "NodeServer",
    pool: ConnectionPool,
    dataset: str,
    field: str,
    timestep: int,
    shard_range: MortonRange,
    timeout: float,
) -> tuple[int, int, int]:
    """Sync one (dataset, field, timestep, range); returns
    ``(atoms_checked, chunks_fetched, bytes_fetched)``."""
    wire_ranges = codec.ranges_to_wire([shard_range])
    call = pool.call(
        "digest",
        {
            "dataset": dataset,
            "field": field,
            "timestep": timestep,
            "ranges": wire_ranges,
        },
        (),
        timeout=timeout,
        idempotent=True,
    )
    remote = {
        int(zindex): str(digest)
        for zindex, digest in call.header.get("digests", {}).items()
    }
    with server.node.db.transaction(None) as txn:
        local_atoms = server.node.read_atoms(
            txn, dataset, field, timestep, [shard_range], charge=False
        )
    stale = diverging_atoms(chunk_digests(local_atoms), remote)
    if not stale:
        return len(remote), 0, 0
    fetch = pool.call(
        "halo",
        {
            "dataset": dataset,
            "field": field,
            "timestep": timestep,
            "ranges": codec.ranges_to_wire(coalesce_atoms(stale)),
        },
        (),
        timeout=timeout,
        idempotent=True,
    )
    atoms = codec.halo_atoms_from_wire(fetch.header, fetch.blobs)
    nbytes = sum(len(blob) for blob in atoms.values())
    with server.node.db.transaction() as txn:
        server.node.replace_atoms(
            txn, dataset, field, timestep, sorted(atoms.items())
        )
    return len(remote), len(atoms), nbytes
