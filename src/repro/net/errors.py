"""Typed error taxonomy of the network tier.

Every failure mode of the cluster transport has its own class so that
callers (the mediator's gather loop, the web service's error mapper,
tests) can dispatch on it — the same ERR01 contract the storage engine
keeps with :mod:`repro.storage.errors`.  The taxonomy distinguishes the
three questions a caller asks about an RPC failure:

* *is the request known not to have executed?* —
  :class:`NodeUnavailableError` (the connection never opened) and
  :class:`ConnectionLostError` before the request was written are safe
  to retry; the client stack retries them automatically for idempotent
  reads;
* *did we run out of time?* — :class:`DeadlineExceededError` is never
  retried (the budget is spent by definition);
* *did the peer speak garbage?* — :class:`FrameError` /
  :class:`ProtocolError` poison the connection, which is discarded
  rather than returned to the pool.
"""

from __future__ import annotations


class NetError(Exception):
    """Base class for every error of the ``repro.net`` tier."""


class ProtocolError(NetError):
    """The peer violated the wire protocol (bad magic, version, ids)."""


class FrameError(ProtocolError):
    """A malformed frame: truncated, oversized or garbage bytes."""


class DeadlineExceededError(NetError):
    """The per-request deadline expired before the response arrived."""


class ConnectionLostError(NetError):
    """An established connection broke while a call was in flight."""


class NodeUnavailableError(NetError):
    """A node could not be reached (after any configured retries).

    Attributes:
        address: ``host:port`` of the unreachable node.
        attempts: connection attempts made before giving up.
    """

    def __init__(self, address: str, attempts: int, message: str) -> None:
        super().__init__(message)
        self.address = address
        self.attempts = attempts


class RemoteCallError(NetError):
    """The server answered with a typed error response.

    Attributes:
        remote_type: exception class name raised on the server.
        code: stable wire-level error code.
    """

    def __init__(self, remote_type: str, code: str, message: str) -> None:
        super().__init__(message)
        self.remote_type = remote_type
        self.code = code


class PartialFailureError(NetError):
    """A distributed query lost one of its node parts.

    Raised by the mediator's gather after the transport's retries are
    exhausted; the remaining node parts have been cancelled or drained,
    so the cluster is quiescent when this surfaces.

    Attributes:
        node_id: the shard whose part failed first (kept for backward
            compatibility; equals ``node_ids[0]`` when those are set).
        node_ids: every node id involved in the failed part — on a
            replicated cluster these are the replicas that were tried
            and found dead, so failover logic and tests can target the
            exact machines that were lost.
        ranges: the Morton ranges (as ``(start, stop)`` pairs or
            :class:`~repro.morton.ranges.MortonRange` objects) the
            failed part was responsible for — the sub-ranges a retry
            must re-scatter.
    """

    def __init__(
        self,
        node_id: int,
        message: str,
        *,
        node_ids: "tuple[int, ...]" = (),
        ranges: tuple = (),
    ) -> None:
        super().__init__(message)
        self.node_id = node_id
        self.node_ids = node_ids or (node_id,)
        self.ranges = tuple(ranges)


class NoLiveReplicaError(NetError):
    """Every replica of a shard was tried and none could answer.

    Raised by the HA transport when mid-query failover exhausts a
    shard's placement — the distributed query cannot complete until a
    replica returns.

    Attributes:
        shard_id: the Morton shard with no live replica.
        attempted: node ids tried, in routing order.
    """

    def __init__(
        self, shard_id: int, attempted: "tuple[int, ...]", message: str
    ) -> None:
        super().__init__(message)
        self.shard_id = shard_id
        self.attempted = attempted


class UnsupportedRemoteOperationError(NetError):
    """A local-only operation (ingest, raw block reads) on a TCP cluster.

    Data loading and whole-array reads run where the storage lives; a
    mediator fronting remote node servers must not silently no-op them.
    """
