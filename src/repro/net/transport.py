"""Where the mediator's per-node query parts execute.

The mediator splits every query into per-node parts (paper §2); a
:class:`Transport` is the seam deciding whether those parts run as
function calls in this process (:class:`InProcessTransport`, the seed
behaviour, bit-for-bit) or as RPCs to node-server processes over the
:mod:`repro.net` wire protocol (:class:`TcpTransport`).

``TcpTransport`` instruments every RPC: a ``net.rpc`` trace span nests
under the query's ``node.part`` span, the ``rpc_*`` metric families
count requests/retries/latency/bytes, and each part result's ledger
carries the *actual* wire bytes under :data:`METER_WIRE_BYTES` so the
cost model's MEDIATOR_DB transfer can be reconciled against reality.
With compression negotiated (the default), those wire bytes are the
*compressed* footprint — what truly crossed the LAN — and the
``net_compression_ratio`` histogram records how far each frame shrank.

The data plane defaults to the fast path end to end: pooled
connections pipeline many in-flight requests over one or two sockets
per node, and large threshold/batch responses arrive as PARTIAL chunk
streams that are merged incrementally via ``merge_sorted_runs`` while
the remaining chunks are still in flight.

``TcpTransport`` assumes shard ``node_id`` *is* physical node
``node_id`` — the unreplicated layout.  On a replicated cluster use
:class:`repro.ha.HaTcpTransport`, which subclasses this transport and
re-routes each per-shard call across the shard's replicas with health/
latency awareness and mid-query failover.
"""

from __future__ import annotations

import abc
import random
import threading
from typing import TYPE_CHECKING, Sequence

from repro.core.pdf import NodePdfResult, get_pdf_on_node
from repro.core.query import PdfQuery, ThresholdQuery, TopKQuery
from repro.core.threshold import NodeThresholdResult, get_threshold_on_node
from repro.core.topk import NodeTopKResult, get_topk_on_node
from repro.costmodel import ClusterSpec
from repro.costmodel.ledger import METER_WIRE_BYTES
from repro.grid import Box
from repro.net import codec
from repro.net.client import CallResult, RetryPolicy
from repro.net.compress import CompressionConfig
from repro.net.errors import ProtocolError
from repro.net.frame import Buffer
from repro.net.pool import ConnectionPool
from repro.net.stream import BatchStreamSink, PartialSink, ThresholdStreamSink
from repro.obs import clock, tracing
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.mediator import Mediator

#: Default per-RPC budget: generous enough for a cold full-domain scan
#: on CI hardware, small enough that a hung node fails the query rather
#: than the session.
DEFAULT_RPC_TIMEOUT = 60.0


class Transport(abc.ABC):
    """The mediator's access path to its per-node query parts."""

    @property
    @abc.abstractmethod
    def node_count(self) -> int:
        """How many nodes answer queries through this transport."""

    @abc.abstractmethod
    def threshold_part(
        self,
        node_id: int,
        query: ThresholdQuery,
        boxes: list[Box],
        *,
        use_cache: bool,
        processes: int,
        io_only: bool,
        timeout: float | None = None,
    ) -> NodeThresholdResult:
        """One node's share of a threshold query.

        ``timeout`` bounds the part in wall seconds on networked
        transports (``None`` uses the transport's configured default);
        in-process parts run inline and ignore it.
        """

    @abc.abstractmethod
    def batch_part(
        self,
        node_id: int,
        queries: list[ThresholdQuery],
        boxes: list[Box],
        *,
        use_cache: bool,
        processes: int,
        timeout: float | None = None,
    ) -> list[NodeThresholdResult]:
        """One node's share of a batched threshold query."""

    @abc.abstractmethod
    def pdf_part(
        self,
        node_id: int,
        query: PdfQuery,
        boxes: list[Box],
        *,
        use_cache: bool,
        processes: int,
        timeout: float | None = None,
    ) -> NodePdfResult:
        """One node's share of a PDF query."""

    @abc.abstractmethod
    def topk_part(
        self,
        node_id: int,
        query: TopKQuery,
        boxes: list[Box],
        *,
        use_cache: bool,
        processes: int,
        timeout: float | None = None,
    ) -> NodeTopKResult:
        """One node's share of a top-k query."""

    @abc.abstractmethod
    def dataset_side(self, dataset: str) -> int:
        """Grid side of a hosted dataset (raises :class:`KeyError`)."""

    @abc.abstractmethod
    def dataset_names(self, *, timeout: float | None = None) -> list[str]:
        """Sorted names of every dataset hosted behind this transport."""

    @abc.abstractmethod
    def register_expression(
        self, name: str, text: str, *, timeout: float | None = None
    ) -> dict:
        """Register a derived-field expression wherever parts evaluate.

        Returns the field's wire description (``name``, ``source``,
        ``halo_depth``, ``units_per_point``).
        """

    def attach(self, metrics: MetricsRegistry, spec: ClusterSpec) -> None:
        """Hook the mediator's metrics registry and hardware spec in."""

    def close(self) -> None:
        """Release transport resources (idempotent)."""


class InProcessTransport(Transport):
    """Parts run as direct function calls against the mediator's nodes.

    This preserves the seed engine's behaviour exactly: the transport
    reads the mediator's live ``nodes``/``executors``/``caches`` lists
    (not copies), so cache clears and experiment resets keep working.
    """

    def __init__(self, mediator: "Mediator") -> None:
        self._mediator = mediator

    @property
    def node_count(self) -> int:
        return len(self._mediator.nodes)

    def threshold_part(
        self,
        node_id: int,
        query: ThresholdQuery,
        boxes: list[Box],
        *,
        use_cache: bool,
        processes: int,
        io_only: bool,
        timeout: float | None = None,
    ) -> NodeThresholdResult:
        # ``timeout`` is part of the transport contract but has nothing
        # to arm here: in-process parts never touch a socket.
        m = self._mediator
        return get_threshold_on_node(
            m.nodes[node_id],
            m.executors[node_id],
            m.caches[node_id] if use_cache else None,
            m.registry,
            query,
            boxes,
            processes=processes,
            io_only=io_only,
        )

    def batch_part(
        self,
        node_id: int,
        queries: list[ThresholdQuery],
        boxes: list[Box],
        *,
        use_cache: bool,
        processes: int,
        timeout: float | None = None,
    ) -> list[NodeThresholdResult]:
        from repro.core.batch import get_batch_on_node

        m = self._mediator
        return get_batch_on_node(
            m.nodes[node_id],
            m.executors[node_id],
            m.caches[node_id] if use_cache else None,
            m.registry,
            queries,
            boxes,
            processes=processes,
        )

    def pdf_part(
        self,
        node_id: int,
        query: PdfQuery,
        boxes: list[Box],
        *,
        use_cache: bool,
        processes: int,
        timeout: float | None = None,
    ) -> NodePdfResult:
        m = self._mediator
        return get_pdf_on_node(
            m.nodes[node_id],
            m.executors[node_id],
            m.registry,
            query,
            boxes,
            processes=processes,
            pdf_cache=m.pdf_caches[node_id] if use_cache else None,
        )

    def topk_part(
        self,
        node_id: int,
        query: TopKQuery,
        boxes: list[Box],
        *,
        use_cache: bool,
        processes: int,
        timeout: float | None = None,
    ) -> NodeTopKResult:
        m = self._mediator
        return get_topk_on_node(
            m.nodes[node_id],
            m.executors[node_id],
            m.registry,
            query,
            boxes,
            processes=processes,
            cache=m.caches[node_id] if use_cache else None,
        )

    def dataset_side(self, dataset: str) -> int:
        return self._mediator.nodes[0].dataset(dataset).side

    def dataset_names(self, *, timeout: float | None = None) -> list[str]:
        return sorted(
            {
                name
                for node in self._mediator.nodes
                for name in node.dataset_names
            }
        )

    def register_expression(
        self, name: str, text: str, *, timeout: float | None = None
    ) -> dict:
        derived = self._mediator.registry.register_expression(name, text)
        return field_description(derived)


def field_description(derived) -> dict:
    """A derived field's wire-level description (shared with the server)."""
    return {
        "name": derived.name,
        "source": derived.source,
        "halo_depth": derived.halo_depth if derived.differential else 0,
        "units_per_point": derived.units_per_point,
    }


def parse_address(address: "str | tuple[str, int]") -> tuple[str, int]:
    """Normalise ``"host:port"`` (or a pre-split pair) to ``(host, port)``."""
    if isinstance(address, tuple):
        host, port = address
        return str(host), int(port)
    host, sep, port_text = address.rpartition(":")
    if not sep or not host:
        raise ValueError(f"address {address!r} is not host:port")
    return host, int(port_text)


class TcpTransport(Transport):
    """Parts run as RPCs to ``serve-node`` processes.

    Args:
        addresses: one ``"host:port"`` (or pair) per node, in node-id
            order matching the cluster's partitioner.
        timeout: per-RPC deadline in wall seconds.  Retries of a failed
            idempotent call share this one budget.
        connect_timeout: per-attempt TCP connect + handshake budget.
        max_connections: pooled sockets per node.  With pipelining on
            (the default) each socket multiplexes many in-flight
            requests, so the whole scatter to one node rides one or two
            connections.
        retry: backoff policy for idempotent reads.
        rng: jitter source, seedable for deterministic tests.
        pipeline: multiplex requests over shared connections (default)
            instead of checking one out per call.
        compression: codecs advertised during the handshake; defaults
            to the stock zlib configuration.  Pass
            :data:`~repro.net.compress.NO_COMPRESSION` to force raw
            frames.
        shm: offer node servers a shared-memory payload ring per
            connection (same-host fast path; servers on another host —
            or with shm disabled — decline and the connection stays on
            plain TCP).
    """

    def __init__(
        self,
        addresses: Sequence["str | tuple[str, int]"],
        *,
        timeout: float = DEFAULT_RPC_TIMEOUT,
        connect_timeout: float = 2.0,
        max_connections: int = 2,
        retry: RetryPolicy | None = None,
        rng: random.Random | None = None,
        pipeline: bool = True,
        compression: CompressionConfig | None = None,
        shm: bool = False,
    ) -> None:
        if not addresses:
            raise ValueError("a TCP transport needs at least one node address")
        if timeout <= 0:
            raise ValueError("the RPC timeout must be positive")
        self.timeout = timeout
        self._rng = rng or random.Random()
        self.pools = [
            ConnectionPool(
                host,
                port,
                max_connections=max_connections,
                connect_timeout=connect_timeout,
                retry=retry,
                rng=self._rng,
                on_retry=self._observe_retry,
                pipeline=pipeline,
                compression=compression,
                on_ratio=self._observe_ratio,
                shm=shm,
            )
            for host, port in map(parse_address, addresses)
        ]
        self._describe_lock = threading.Lock()
        self._datasets: list[dict] | None = None
        self._m_requests = None
        self._m_latency = None
        self._m_retries = None
        self._m_sent = None
        self._m_received = None
        self._m_ratio = None
        self._m_partials = None
        self._m_shm = None

    # -- instrumentation -------------------------------------------------------

    def attach(self, metrics: MetricsRegistry, spec: ClusterSpec) -> None:
        self._m_requests = metrics.counter(
            "rpc_requests_total",
            "Node RPCs issued, by method and outcome",
            labelnames=["method", "status"],
        )
        self._m_latency = metrics.histogram(
            "rpc_latency_seconds",
            "Wall seconds per node RPC (including retries)",
            buckets=[0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0, 60.0],
        )
        self._m_retries = metrics.counter(
            "rpc_retries_total", "Node RPC attempts beyond the first"
        )
        self._m_sent = metrics.counter(
            "rpc_bytes_sent_total", "Request bytes put on the wire"
        )
        self._m_received = metrics.counter(
            "rpc_bytes_received_total", "Response bytes read off the wire"
        )
        self._m_ratio = metrics.histogram(
            "net_compression_ratio",
            "Raw/compressed size ratio per compressed frame",
            buckets=[1.0, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0, 20.0],
        )
        self._m_partials = metrics.counter(
            "rpc_partial_frames_total",
            "PARTIAL frames received in streamed responses",
        )
        self._m_shm = metrics.counter(
            "rpc_shm_bytes_total",
            "Payload bytes passed via shared memory instead of TCP",
        )

    def _observe_retry(self) -> None:
        if self._m_retries is not None:
            self._m_retries.inc()

    def _observe_ratio(self, ratio: float) -> None:
        if self._m_ratio is not None:
            self._m_ratio.observe(ratio)

    def _call(
        self,
        node_id: int,
        method: str,
        header: dict,
        blobs: Sequence[Buffer] = (),
        *,
        idempotent: bool = True,
        timeout: float | None = None,
        sink: PartialSink | None = None,
    ) -> CallResult:
        pool = self.pools[node_id]
        start = clock.now()
        status = "ok"
        with tracing.span(
            "net.rpc", node=node_id, method=method, address=pool.address
        ) as span:
            try:
                result = pool.call(
                    method,
                    header,
                    blobs,
                    timeout=timeout if timeout is not None else self.timeout,
                    idempotent=idempotent,
                    sink=sink,
                )
            except Exception as error:
                status = type(error).__name__
                span.set("error", status)
                # The remote side of this call is unaccounted for: its
                # spans never shipped back, so whatever subtree hangs
                # under this RPC is explicitly an orphan, not a gap.
                tracing.mark_orphaned(span, status)
                raise
            finally:
                if self._m_requests is not None:
                    self._m_requests.labels(method=method, status=status).inc()
                if self._m_latency is not None:
                    # The exemplar ties this latency observation back to
                    # the trace that produced it (p99 bucket -> trace id).
                    self._m_latency.observe(
                        clock.now() - start, exemplar=span.trace_id or None
                    )
            span.set("bytes_sent", result.bytes_sent)
            span.set("bytes_received", result.bytes_received)
            if result.shm_bytes:
                span.set("shm_bytes", result.shm_bytes)
        if self._m_sent is not None:
            self._m_sent.inc(result.bytes_sent)
            self._m_received.inc(result.bytes_received)
        if self._m_partials is not None and result.partial_frames:
            self._m_partials.inc(result.partial_frames)
        if self._m_shm is not None and result.shm_bytes:
            self._m_shm.inc(result.shm_bytes)
        return result

    @staticmethod
    def _reconcile(result, call: CallResult):
        """Record the RPC's real wire bytes on the part's ledger.

        The mediator separately *models* the mediator<->node transfer
        (``Category.MEDIATOR_DB``, from the spec's LAN); this meter is
        the measured footprint the model is reconciled against.
        """
        result.ledger.count(
            METER_WIRE_BYTES, call.bytes_sent + call.bytes_received
        )
        return result

    # -- query parts -----------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self.pools)

    def threshold_part(
        self,
        node_id: int,
        query: ThresholdQuery,
        boxes: list[Box],
        *,
        use_cache: bool,
        processes: int,
        io_only: bool,
        timeout: float | None = None,
    ) -> NodeThresholdResult:
        sink = ThresholdStreamSink()
        call = self._call(
            node_id,
            "threshold",
            {
                "query": codec.threshold_query_to_wire(query),
                "boxes": codec.boxes_to_wire(boxes),
                "use_cache": use_cache,
                "processes": processes,
                "io_only": io_only,
            },
            timeout=timeout,
            sink=sink,
        )
        if call.header.get("streamed"):
            # Large result: the point columns arrived as PARTIAL chunks
            # and were merged incrementally while still in flight.
            zindexes, values = sink.columns()
            result = codec.threshold_result_from_stream(
                call.header, zindexes, values
            )
        else:
            result = codec.threshold_result_from_wire(call.header, call.blobs)
        return self._reconcile(result, call)

    def batch_part(
        self,
        node_id: int,
        queries: list[ThresholdQuery],
        boxes: list[Box],
        *,
        use_cache: bool,
        processes: int,
        timeout: float | None = None,
    ) -> list[NodeThresholdResult]:
        sink = BatchStreamSink()
        call = self._call(
            node_id,
            "batch_threshold",
            {
                "queries": [codec.threshold_query_to_wire(q) for q in queries],
                "boxes": codec.boxes_to_wire(boxes),
                "use_cache": use_cache,
                "processes": processes,
            },
            timeout=timeout,
            sink=sink,
        )
        if call.header.get("streamed"):
            results = codec.batch_results_from_stream(call.header, sink.runs())
        else:
            results = codec.batch_results_from_wire(call.header, call.blobs)
        if results:
            # One shared ledger across the batch: meter the wire once.
            self._reconcile(results[0], call)
        return results

    def pdf_part(
        self,
        node_id: int,
        query: PdfQuery,
        boxes: list[Box],
        *,
        use_cache: bool,
        processes: int,
        timeout: float | None = None,
    ) -> NodePdfResult:
        call = self._call(
            node_id,
            "pdf",
            {
                "query": codec.pdf_query_to_wire(query),
                "boxes": codec.boxes_to_wire(boxes),
                "use_cache": use_cache,
                "processes": processes,
            },
            timeout=timeout,
        )
        return self._reconcile(
            codec.pdf_result_from_wire(call.header, call.blobs), call
        )

    def topk_part(
        self,
        node_id: int,
        query: TopKQuery,
        boxes: list[Box],
        *,
        use_cache: bool,
        processes: int,
        timeout: float | None = None,
    ) -> NodeTopKResult:
        call = self._call(
            node_id,
            "topk",
            {
                "query": codec.topk_query_to_wire(query),
                "boxes": codec.boxes_to_wire(boxes),
                "use_cache": use_cache,
                "processes": processes,
            },
            timeout=timeout,
        )
        return self._reconcile(
            codec.topk_result_from_wire(call.header, call.blobs), call
        )

    # -- catalogue and control -------------------------------------------------

    def _describe(self, timeout: float | None = None) -> list[dict]:
        """Node 0's dataset catalogue, fetched once and cached."""
        with self._describe_lock:
            if self._datasets is not None:
                return self._datasets
        # Fetch with the lock released: the RPC can take the full call
        # timeout and must not serialize unrelated catalogue lookups.
        # Describe is idempotent, so concurrent first callers may fetch
        # twice; the first answer to land wins.
        call = self._call(0, "describe", {}, timeout=timeout)
        datasets = call.header.get("datasets")
        if not isinstance(datasets, list):
            raise ProtocolError("describe response has no datasets")
        with self._describe_lock:
            if self._datasets is None:
                self._datasets = datasets
            return self._datasets

    def dataset_side(self, dataset: str) -> int:
        for record in self._describe():
            if record.get("name") == dataset:
                return int(record["side"])
        raise KeyError(f"cluster hosts no dataset {dataset!r}")

    def dataset_names(self, *, timeout: float | None = None) -> list[str]:
        return sorted(
            str(record["name"]) for record in self._describe(timeout)
        )

    def register_expression(
        self, name: str, text: str, *, timeout: float | None = None
    ) -> dict:
        # Registration mutates node state: never retried (a replayed
        # request would see "already registered" from its own first try).
        description: dict = {}
        for node_id in range(len(self.pools)):
            call = self._call(
                node_id,
                "register_field",
                {"name": name, "text": text},
                idempotent=False,
                timeout=timeout,
            )
            description = dict(call.header.get("field", {}))
        return description

    def ping(self, node_id: int, timeout: float | None = None) -> float:
        """Health-check one node; returns round-trip wall seconds."""
        return self.pools[node_id].ping(
            timeout if timeout is not None else self.timeout
        )

    def close(self) -> None:
        for pool in self.pools:
            pool.close()

    def __enter__(self) -> "TcpTransport":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
