"""repro.net: the cluster's real transport tier.

A length-prefixed binary wire protocol (:mod:`repro.net.frame`,
:mod:`repro.net.codec`) whose payloads carry the engine's columnar
point-set blobs verbatim; a threaded TCP node server
(:mod:`repro.net.server`, ``python -m repro.net serve-node``); a client
stack with per-host connection pooling, mandatory deadlines and
jittered retries (:mod:`repro.net.client`, :mod:`repro.net.pool`); and
the :class:`~repro.net.transport.Transport` seam that lets the mediator
run its per-node query parts either in-process (the seed behaviour,
bit-for-bit) or against a real multi-process cluster.
"""

from repro.net.client import CallResult, NodeClient, RetryPolicy
from repro.net.errors import (
    ConnectionLostError,
    DeadlineExceededError,
    FrameError,
    NetError,
    NodeUnavailableError,
    PartialFailureError,
    ProtocolError,
    RemoteCallError,
    UnsupportedRemoteOperationError,
)
from repro.net.frame import Deadline, FrameType, PROTOCOL_VERSION
from repro.net.pool import ConnectionPool
from repro.net.transport import InProcessTransport, TcpTransport, Transport

__all__ = [
    "CallResult",
    "ConnectionLostError",
    "ConnectionPool",
    "Deadline",
    "DeadlineExceededError",
    "FrameError",
    "FrameType",
    "InProcessTransport",
    "NetError",
    "NodeClient",
    "NodeUnavailableError",
    "PROTOCOL_VERSION",
    "PartialFailureError",
    "ProtocolError",
    "RemoteCallError",
    "RetryPolicy",
    "TcpTransport",
    "Transport",
    "UnsupportedRemoteOperationError",
]
