"""repro.net: the cluster's real transport tier.

A length-prefixed binary wire protocol (:mod:`repro.net.frame`,
:mod:`repro.net.codec`) whose payloads carry the engine's columnar
point-set blobs verbatim; a threaded TCP node server
(:mod:`repro.net.server`, ``python -m repro.net serve-node``); a client
stack with per-host connection pooling, mandatory deadlines and
jittered retries (:mod:`repro.net.client`, :mod:`repro.net.pool`); and
the :class:`~repro.net.transport.Transport` seam that lets the mediator
run its per-node query parts either in-process (the seed behaviour,
bit-for-bit) or against a real multi-process cluster.

The data plane is built for throughput: frames are assembled as lists
of buffers and sent with vectored I/O (no full-payload concatenation),
the handshake negotiates per-frame compression
(:mod:`repro.net.compress`), pooled connections pipeline many in-flight
requests over shared sockets, and oversized responses stream back as
PARTIAL chunk frames merged incrementally (:mod:`repro.net.stream`).
"""

from repro.net.client import (
    CallResult,
    NodeClient,
    PipelinedConnection,
    RetryPolicy,
)
from repro.net.compress import (
    CompressionConfig,
    DEFAULT_COMPRESSION,
    FrameCodec,
    NO_COMPRESSION,
    negotiate,
)
from repro.net.errors import (
    ConnectionLostError,
    DeadlineExceededError,
    FrameError,
    NetError,
    NodeUnavailableError,
    PartialFailureError,
    ProtocolError,
    RemoteCallError,
    UnsupportedRemoteOperationError,
)
from repro.net.frame import Deadline, Frame, FrameType, PROTOCOL_VERSION
from repro.net.pool import ConnectionPool
from repro.net.stream import (
    BatchStreamSink,
    ByteStreamSink,
    PartialSink,
    ThresholdStreamSink,
)
from repro.net.transport import InProcessTransport, TcpTransport, Transport

__all__ = [
    "BatchStreamSink",
    "ByteStreamSink",
    "CallResult",
    "CompressionConfig",
    "ConnectionLostError",
    "ConnectionPool",
    "DEFAULT_COMPRESSION",
    "Deadline",
    "DeadlineExceededError",
    "Frame",
    "FrameCodec",
    "FrameError",
    "FrameType",
    "InProcessTransport",
    "NO_COMPRESSION",
    "NetError",
    "NodeClient",
    "NodeUnavailableError",
    "PROTOCOL_VERSION",
    "PartialFailureError",
    "PartialSink",
    "PipelinedConnection",
    "ProtocolError",
    "RemoteCallError",
    "RetryPolicy",
    "TcpTransport",
    "ThresholdStreamSink",
    "Transport",
    "UnsupportedRemoteOperationError",
    "negotiate",
]
