"""Streamed partial results: chunked point columns over PARTIAL frames.

Large threshold/batch responses do not ship as one monolithic frame.
The node server slices its Morton-sorted result columns into bounded
chunks (:func:`iter_point_chunks`) and emits one ``PARTIAL`` frame per
chunk, terminated by a final ``RESPONSE`` frame that carries the ledger
and flags but no blobs (marked ``"streamed": true``).  The client feeds
each chunk into a *sink* as it arrives, so node compute, wire transfer
and mediator merging overlap, and peak mediator buffering is bounded by
the merged prefix plus one in-flight chunk instead of the whole
response.

Because every node emits chunks in Morton order, the accumulator's
incremental :func:`~repro.core.pointset.merge_sorted_runs` always hits
the concatenation fast path — merging as frames arrive costs the same
as one big concatenation, just spread over the transfer.
"""

from __future__ import annotations

from typing import Iterator, Protocol, Sequence

import numpy as np

from repro.core.pointset import merge_sorted_runs
from repro.net.codec import _point_columns
from repro.net.frame import Buffer

#: Points per PARTIAL frame: 256Ki points = 4 MiB of packed columns,
#: big enough to amortise framing, small enough to bound buffering.
STREAM_CHUNK_POINTS = 256 * 1024


def iter_point_chunks(
    zindexes: np.ndarray, values: np.ndarray, chunk_points: int
) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
    """Slice a column pair into ``(seq, zindexes, values)`` chunks."""
    if chunk_points <= 0:
        raise ValueError(f"chunk_points must be positive, got {chunk_points}")
    for seq, start in enumerate(range(0, len(zindexes), chunk_points)):
        stop = start + chunk_points
        yield seq, zindexes[start:stop], values[start:stop]


class PartialSink(Protocol):
    """Receiver for a call's PARTIAL frames.

    ``reset`` is invoked by the pool at the start of every attempt so a
    retried call never double-counts chunks delivered before the
    connection died; ``feed`` gets each decoded partial message in
    arrival order, before the final response returns to the caller.
    """

    def reset(self) -> None:
        """Drop everything accumulated so far (fresh retry attempt)."""
        ...

    def feed(self, header: dict, blobs: Sequence[Buffer]) -> None:
        """Accept one decoded PARTIAL message in arrival order.

        ``blobs`` may be zero-copy views of a transport buffer — on a
        shared-memory connection, of a ring slot that is handed back to
        the server the moment ``feed`` returns.  Implementations must
        copy whatever they keep and retain no view past the call.
        """
        ...


class PointRunAccumulator:
    """Incrementally merges Morton-sorted column chunks.

    Nodes emit chunks in Morton order, so each ``extend`` takes
    :func:`merge_sorted_runs`'s concatenation fast path; the stable
    argsort fallback still guarantees correctness if a peer ever
    interleaves runs.
    """

    def __init__(self) -> None:
        self._zindexes = np.empty(0, dtype=np.uint64)
        self._values = np.empty(0, dtype=np.float64)

    def reset(self) -> None:
        """Drop the merged prefix and start over."""
        self._zindexes = np.empty(0, dtype=np.uint64)
        self._values = np.empty(0, dtype=np.float64)

    def extend(self, zindexes: np.ndarray, values: np.ndarray) -> None:
        """Merge one more sorted chunk into the accumulated columns."""
        if not len(zindexes):
            return
        if not len(self._zindexes):
            # Copy on adoption: the chunk's columns are zero-copy views
            # of a transport buffer (possibly a shared-memory ring slot
            # the server rewrites right after this call returns), and
            # the accumulator's prefix outlives that buffer.
            self._zindexes = zindexes.copy()
            self._values = values.copy()
            return
        self._zindexes, self._values = merge_sorted_runs(
            [(self._zindexes, self._values), (zindexes, values)]
        )

    def columns(self) -> tuple[np.ndarray, np.ndarray]:
        """The merged ``(zindexes, values)`` columns so far."""
        return self._zindexes, self._values


class ThresholdStreamSink:
    """:class:`PartialSink` for a streamed threshold response."""

    def __init__(self) -> None:
        self._run = PointRunAccumulator()
        self.partial_frames = 0

    def reset(self) -> None:
        """Drop accumulated chunks (the pool retries the whole call)."""
        self._run.reset()
        self.partial_frames = 0

    def feed(self, header: dict, blobs: Sequence[Buffer]) -> None:
        """Merge one chunk's packed point columns as it arrives."""
        zindexes, values = _point_columns(blobs, 0)
        self._run.extend(zindexes, values)
        self.partial_frames += 1

    def columns(self) -> tuple[np.ndarray, np.ndarray]:
        """The fully merged ``(zindexes, values)`` columns."""
        return self._run.columns()


class BatchStreamSink:
    """:class:`PartialSink` for a streamed batch-threshold response.

    Chunks carry a ``"query"`` index in their header; each query gets
    its own accumulator so per-query results keep their Morton order.
    """

    def __init__(self) -> None:
        self._runs: dict[int, PointRunAccumulator] = {}
        self.partial_frames = 0

    def reset(self) -> None:
        """Drop every query's accumulated chunks."""
        self._runs.clear()
        self.partial_frames = 0

    def feed(self, header: dict, blobs: Sequence[Buffer]) -> None:
        """Route one chunk to its query's accumulator."""
        query = int(header["query"])
        zindexes, values = _point_columns(blobs, 0)
        self._runs.setdefault(query, PointRunAccumulator()).extend(
            zindexes, values
        )
        self.partial_frames += 1

    def runs(self) -> dict[int, tuple[np.ndarray, np.ndarray]]:
        """Merged columns per query index."""
        return {query: run.columns() for query, run in self._runs.items()}


class ByteStreamSink:
    """:class:`PartialSink` that just counts streamed payload bytes.

    Used by the echo/transfer diagnostics and benchmarks, where only
    the raw byte volume matters.
    """

    def __init__(self) -> None:
        self.raw_bytes = 0
        self.partial_frames = 0

    def reset(self) -> None:
        """Zero the byte and frame counters."""
        self.raw_bytes = 0
        self.partial_frames = 0

    def feed(self, header: dict, blobs: Sequence[Buffer]) -> None:
        """Tally one chunk's blob bytes."""
        for blob in blobs:
            self.raw_bytes += len(blob)
        self.partial_frames += 1
