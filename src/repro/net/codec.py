"""Message codec: a JSON control header plus raw column blobs.

A REQUEST/RESPONSE frame payload is one *message*::

    u32   header length
    ...   UTF-8 JSON header (method, query parameters, ledger, flags)
    u16   blob count
    u32   blob i length      } repeated
    ...   blob i bytes       }

The blobs are the columnar point-set encodings of
:mod:`repro.core.pointset` (``pack_u64`` zindexes, ``pack_f64`` values)
carried *verbatim*: a node packs its result columns once and the
mediator unpacks them straight into the gather's ``merge_sorted_runs``
— no per-point re-encoding anywhere on the wire path.

The domain helpers below translate the query/result dataclasses the
in-process engine already uses to and from wire messages, so
``TcpTransport`` and the node server share one vocabulary and the
in-process and TCP clusters return point-for-point identical results.

Encoding is zero-copy on the hot path: :func:`encode_message_parts`
returns the message as a *list* of buffers (length prefixes, header
bytes, blobs) for the frame layer's vectored send, and
:func:`decode_message` hands blobs back as ``memoryview`` slices of the
frame's receive buffer — ``numpy.frombuffer`` reads them directly, so a
16 MiB column crosses the codec without being copied.
"""

from __future__ import annotations

import json
import struct
from typing import Mapping, Sequence

import numpy as np

from repro.core.pdf import NodePdfResult
from repro.core.query import PdfQuery, ThresholdQuery, TopKQuery
from repro.core.threshold import NodeThresholdResult
from repro.core.topk import NodeTopKResult
from repro.core.pointset import pack_f64, pack_i64, pack_u64, unpack_f64, unpack_i64, unpack_u64
from repro.costmodel import Category, CostLedger
from repro.grid import Box
from repro.morton import MortonRange
from repro.net.errors import ProtocolError
from repro.net.frame import Buffer
from repro.obs.tracing import SpanContext

_U32 = struct.Struct("<I")
_U16 = struct.Struct("<H")

#: JSON-header key carrying trace context on requests and the captured
#: remote spans (plus server clock stamps) on responses.
TRACE_HEADER_KEY = "trace"

#: Ceiling on blobs per message (a batch of 64 queries ships 128).
MAX_BLOBS = 4096


# -- message layer ----------------------------------------------------------


def encode_message_parts(
    header: dict, blobs: Sequence[Buffer] = ()
) -> list[Buffer]:
    """Pack a message as a buffer list for the vectored frame sender.

    This is the hot-path encoder: blobs (and the packed prefixes) are
    returned as-is for ``send_frame`` to hand to ``sendmsg`` — nothing
    is joined or copied.
    """
    if len(blobs) > MAX_BLOBS:
        raise ProtocolError(f"{len(blobs)} blobs exceed the {MAX_BLOBS} cap")
    head = json.dumps(header, separators=(",", ":")).encode("utf-8")
    parts: list[Buffer] = [_U32.pack(len(head)), head, _U16.pack(len(blobs))]
    for blob in blobs:
        parts.append(_U32.pack(len(blob)))
        if len(blob):
            parts.append(blob)
    return parts


def encode_message(header: dict, blobs: Sequence[Buffer] = ()) -> bytes:
    """Pack a JSON header and column blobs into one contiguous payload.

    Control-plane convenience (handshakes, tests, the HTTP front door);
    the data plane uses :func:`encode_message_parts` and never joins.
    """
    return b"".join(  # turblint: disable=NET02 - control plane only
        bytes(part) for part in encode_message_parts(header, blobs)
    )


def decode_message(payload: Buffer) -> tuple[dict, list[Buffer]]:
    """Unpack a frame payload into ``(header, blobs)``.

    Blobs are ``memoryview`` slices of ``payload`` — zero-copy; they
    stay valid as long as the payload buffer is alive, which the frame
    layer guarantees by allocating a fresh buffer per frame.

    Raises:
        ProtocolError: on truncated or trailing bytes, or a header that
            is not a JSON object.
    """
    view = memoryview(payload)

    def take(count: int) -> memoryview:
        nonlocal view
        if len(view) < count:
            raise ProtocolError(
                f"message truncated: wanted {count} bytes, {len(view)} left"
            )
        piece, view = view[:count], view[count:]
        return piece

    (head_len,) = _U32.unpack(take(4))
    try:
        header = json.loads(bytes(take(head_len)).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable message header: {error}") from None
    if not isinstance(header, dict):
        raise ProtocolError("message header must be a JSON object")
    (nblobs,) = _U16.unpack(take(2))
    if nblobs > MAX_BLOBS:
        raise ProtocolError(f"{nblobs} blobs exceed the {MAX_BLOBS} cap")
    blobs: list[Buffer] = []
    for _ in range(nblobs):
        (blob_len,) = _U32.unpack(take(4))
        blobs.append(take(blob_len))
    if len(view):
        raise ProtocolError(f"{len(view)} trailing bytes after message")
    return header, blobs


# -- ledgers ----------------------------------------------------------------


def ledger_to_wire(ledger: CostLedger) -> dict:
    """The ledger's category seconds and meters as a JSON-able dict."""
    return {"seconds": ledger.breakdown(), "meters": ledger.meters()}


def ledger_from_wire(record: dict) -> CostLedger:
    """Rebuild a :class:`CostLedger` from :func:`ledger_to_wire` output."""
    ledger = CostLedger(
        {Category(name): float(value)
         for name, value in record.get("seconds", {}).items()}
    )
    for name, amount in record.get("meters", {}).items():
        ledger.count(str(name), float(amount))
    return ledger


# -- geometry and queries ---------------------------------------------------


def box_to_wire(box: Box) -> list[int]:
    """A box as its six corner coordinates."""
    return list(box.as_corners())


def box_from_wire(corners: Sequence[int]) -> Box:
    """Rebuild a :class:`Box` from :func:`box_to_wire` output."""
    return Box.from_corners([int(c) for c in corners])


def threshold_query_to_wire(query: ThresholdQuery) -> dict:
    """A threshold query as a JSON-able record."""
    return {
        "dataset": query.dataset,
        "field": query.field,
        "timestep": query.timestep,
        "threshold": query.threshold,
        "box": None if query.box is None else box_to_wire(query.box),
        "fd_order": query.fd_order,
    }


def threshold_query_from_wire(record: dict) -> ThresholdQuery:
    """Rebuild a :class:`ThresholdQuery` from its wire record."""
    return ThresholdQuery(
        dataset=str(record["dataset"]),
        field=str(record["field"]),
        timestep=int(record["timestep"]),
        threshold=float(record["threshold"]),
        box=None if record.get("box") is None else box_from_wire(record["box"]),
        fd_order=int(record.get("fd_order", 4)),
    )


def pdf_query_to_wire(query: PdfQuery) -> dict:
    """A PDF query as a JSON-able record."""
    return {
        "dataset": query.dataset,
        "field": query.field,
        "timestep": query.timestep,
        "bin_edges": list(query.bin_edges),
        "fd_order": query.fd_order,
    }


def pdf_query_from_wire(record: dict) -> PdfQuery:
    """Rebuild a :class:`PdfQuery` from its wire record."""
    return PdfQuery(
        dataset=str(record["dataset"]),
        field=str(record["field"]),
        timestep=int(record["timestep"]),
        bin_edges=tuple(float(e) for e in record["bin_edges"]),
        fd_order=int(record.get("fd_order", 4)),
    )


def topk_query_to_wire(query: TopKQuery) -> dict:
    """A top-k query as a JSON-able record."""
    return {
        "dataset": query.dataset,
        "field": query.field,
        "timestep": query.timestep,
        "k": query.k,
        "fd_order": query.fd_order,
    }


def topk_query_from_wire(record: dict) -> TopKQuery:
    """Rebuild a :class:`TopKQuery` from its wire record."""
    return TopKQuery(
        dataset=str(record["dataset"]),
        field=str(record["field"]),
        timestep=int(record["timestep"]),
        k=int(record["k"]),
        fd_order=int(record.get("fd_order", 4)),
    )


def boxes_to_wire(boxes: Sequence[Box]) -> list[list[int]]:
    """A node's query pieces as corner-coordinate lists."""
    return [box_to_wire(box) for box in boxes]


def boxes_from_wire(records: Sequence[Sequence[int]]) -> list[Box]:
    """Rebuild the query pieces from :func:`boxes_to_wire` output."""
    return [box_from_wire(corners) for corners in records]


def ranges_to_wire(ranges: Sequence[MortonRange]) -> list[list[int]]:
    """Half-open Morton ranges as ``[start, stop]`` pairs."""
    return [[rng.start, rng.stop] for rng in ranges]


def ranges_from_wire(records: Sequence[Sequence[int]]) -> list[MortonRange]:
    """Rebuild :class:`MortonRange` objects from their wire pairs."""
    return [MortonRange(int(start), int(stop)) for start, stop in records]


# -- node-part results ------------------------------------------------------


def threshold_result_header(result: NodeThresholdResult) -> dict:
    """The control header of a threshold contribution (no columns)."""
    return {
        "ledger": ledger_to_wire(result.ledger),
        "cache_hit": result.cache_hit,
        "boxes_evaluated": result.boxes_evaluated,
        "cache_stored": result.cache_stored,
    }


def threshold_result_to_wire(
    result: NodeThresholdResult,
) -> tuple[dict, list[bytes]]:
    """One node's threshold contribution as ``(header, blobs)``."""
    header = threshold_result_header(result)
    return header, [pack_u64(result.zindexes), pack_f64(result.values)]


def threshold_result_from_wire(
    header: dict, blobs: Sequence[Buffer]
) -> NodeThresholdResult:
    """Rebuild one node's threshold contribution from the wire."""
    zindexes, values = _point_columns(blobs, 0)
    return NodeThresholdResult(
        zindexes,
        values,
        ledger_from_wire(header["ledger"]),
        cache_hit=bool(header["cache_hit"]),
        boxes_evaluated=int(header["boxes_evaluated"]),
        cache_stored=bool(header["cache_stored"]),
    )


def batch_results_header(results: Sequence[NodeThresholdResult]) -> dict:
    """The control header of a batch contribution (no columns)."""
    if not results:
        raise ProtocolError("a batch response needs at least one item")
    return {
        "ledger": ledger_to_wire(results[0].ledger),
        "items": [
            {
                "cache_hit": item.cache_hit,
                "boxes_evaluated": item.boxes_evaluated,
                "cache_stored": item.cache_stored,
            }
            for item in results
        ],
    }


def batch_results_to_wire(
    results: Sequence[NodeThresholdResult],
) -> tuple[dict, list[bytes]]:
    """A node's per-query batch contributions (shared ledger, 2 blobs each)."""
    header = batch_results_header(results)
    blobs: list[bytes] = []
    for item in results:
        blobs.append(pack_u64(item.zindexes))
        blobs.append(pack_f64(item.values))
    return header, blobs


def batch_results_from_wire(
    header: dict, blobs: Sequence[Buffer]
) -> list[NodeThresholdResult]:
    """Rebuild a node's batch contributions (one shared ledger)."""
    items = header["items"]
    if len(blobs) != 2 * len(items):
        raise ProtocolError(
            f"batch response carries {len(blobs)} blobs for {len(items)} items"
        )
    # One shared ledger instance, mirroring get_batch_on_node's contract
    # (the queries were answered by one pass; costs are not separable).
    ledger = ledger_from_wire(header["ledger"])
    results = []
    for i, item in enumerate(items):
        zindexes, values = _point_columns(blobs, 2 * i)
        results.append(
            NodeThresholdResult(
                zindexes,
                values,
                ledger,
                cache_hit=bool(item["cache_hit"]),
                boxes_evaluated=int(item["boxes_evaluated"]),
                cache_stored=bool(item["cache_stored"]),
            )
        )
    return results


def threshold_result_from_stream(
    header: dict, zindexes: np.ndarray, values: np.ndarray
) -> NodeThresholdResult:
    """Rebuild a threshold contribution whose points arrived as PARTIAL
    frames: the final frame's header plus the accumulated columns."""
    return NodeThresholdResult(
        zindexes,
        values,
        ledger_from_wire(header["ledger"]),
        cache_hit=bool(header["cache_hit"]),
        boxes_evaluated=int(header["boxes_evaluated"]),
        cache_stored=bool(header["cache_stored"]),
    )


def batch_results_from_stream(
    header: dict, runs: Mapping[int, tuple[np.ndarray, np.ndarray]]
) -> list[NodeThresholdResult]:
    """Rebuild batch contributions whose points arrived as PARTIAL
    frames keyed by query index (one shared ledger, like the wire form).
    Queries that streamed no points get empty columns."""
    items = header["items"]
    ledger = ledger_from_wire(header["ledger"])
    empty_z = np.empty(0, dtype=np.uint64)
    empty_v = np.empty(0, dtype=np.float64)
    results = []
    for i, item in enumerate(items):
        zindexes, values = runs.get(i, (empty_z, empty_v))
        results.append(
            NodeThresholdResult(
                zindexes,
                values,
                ledger,
                cache_hit=bool(item["cache_hit"]),
                boxes_evaluated=int(item["boxes_evaluated"]),
                cache_stored=bool(item["cache_stored"]),
            )
        )
    return results


def pdf_result_to_wire(result: NodePdfResult) -> tuple[dict, list[bytes]]:
    """One node's histogram contribution as ``(header, blobs)``."""
    header = {
        "ledger": ledger_to_wire(result.ledger),
        "cache_hit": result.cache_hit,
    }
    return header, [pack_i64(np.asarray(result.counts, dtype=np.int64))]


def pdf_result_from_wire(
    header: dict, blobs: Sequence[Buffer]
) -> NodePdfResult:
    """Rebuild one node's histogram contribution from the wire."""
    if len(blobs) != 1:
        raise ProtocolError(f"pdf response carries {len(blobs)} blobs, not 1")
    return NodePdfResult(
        unpack_i64(blobs[0]),
        ledger_from_wire(header["ledger"]),
        cache_hit=bool(header["cache_hit"]),
    )


def topk_result_to_wire(result: NodeTopKResult) -> tuple[dict, list[bytes]]:
    """One node's top-k contribution as ``(header, blobs)``."""
    header = {"ledger": ledger_to_wire(result.ledger)}
    return header, [pack_u64(result.zindexes), pack_f64(result.values)]


def topk_result_from_wire(
    header: dict, blobs: Sequence[Buffer]
) -> NodeTopKResult:
    """Rebuild one node's top-k contribution from the wire."""
    zindexes, values = _point_columns(blobs, 0)
    return NodeTopKResult(zindexes, values, ledger_from_wire(header["ledger"]))


def halo_atoms_to_wire(atoms: dict[int, bytes]) -> tuple[dict, list[bytes]]:
    """A halo read's ``zindex -> blob`` map as two column blobs.

    Atom blobs of one (dataset, field) share a size, so the payload is
    the sorted zindex column plus one concatenation in the same order.
    """
    zindexes = np.array(sorted(atoms), dtype=np.uint64)
    sizes = {len(blob) for blob in atoms.values()}
    if len(sizes) > 1:
        raise ProtocolError("halo atoms have unequal blob sizes")
    atom_bytes = sizes.pop() if sizes else 0
    # Halo atoms are small per-read control traffic, not the pointset
    # data plane; one join beats 2x the iovec bookkeeping here.
    body = b"".join(  # turblint: disable=NET02 - halo atoms, not hot path
        bytes(atoms[int(z)]) for z in zindexes
    )
    header = {"count": int(len(zindexes)), "atom_bytes": atom_bytes}
    return header, [pack_u64(zindexes), body]


def halo_atoms_from_wire(
    header: dict, blobs: Sequence[Buffer]
) -> dict[int, bytes]:
    """Rebuild the ``zindex -> blob`` halo map from the wire."""
    if len(blobs) != 2:
        raise ProtocolError(f"halo response carries {len(blobs)} blobs, not 2")
    zindexes = unpack_u64(blobs[0])
    count = int(header["count"])
    atom_bytes = int(header["atom_bytes"])
    body = blobs[1]
    if len(zindexes) != count or len(body) != count * atom_bytes:
        raise ProtocolError("halo response columns disagree with its header")
    return {
        int(z): body[i * atom_bytes : (i + 1) * atom_bytes]
        for i, z in enumerate(zindexes)
    }


def _point_columns(
    blobs: Sequence[Buffer], start: int
) -> tuple[np.ndarray, np.ndarray]:
    """Decode the ``(zindexes, values)`` column pair at ``blobs[start]``."""
    if len(blobs) < start + 2:
        raise ProtocolError("point-set response is missing its column blobs")
    zindexes = unpack_u64(blobs[start])
    values = unpack_f64(blobs[start + 1])
    if len(zindexes) != len(values):
        raise ProtocolError(
            f"column blobs misaligned: {len(zindexes)} zindexes vs "
            f"{len(values)} values"
        )
    return zindexes, values


# -- trace context -----------------------------------------------------------


def trace_context_to_wire(context: SpanContext) -> dict:
    """A span context as the request-header record under ``"trace"``."""
    return context.to_wire()


def trace_context_from_wire(header: Mapping) -> SpanContext | None:
    """The request's span context, or ``None`` when the caller sent
    none (untraced callers inject nothing, and malformed records are
    ignored rather than failing the request)."""
    return SpanContext.from_wire(header.get(TRACE_HEADER_KEY))


def trace_payload_to_wire(
    node_id: int, recv: float, send: float, spans: list[dict]
) -> dict:
    """The response-header record shipping captured spans back.

    ``recv``/``send`` are the server's own ``clock.now()`` stamps
    bracketing the request — the far side feeds them to the midpoint
    skew model to place these spans on its own timeline.
    """
    return {"node": node_id, "recv": recv, "send": send, "spans": spans}
