"""Command-line entry points for running a real multi-process cluster.

Three subcommands cover the whole zero-to-cluster path::

    python -m repro.net init --db /tmp/cluster --dataset mhd \\
        --side 16 --timesteps 2 --nodes 2
    python -m repro.net serve-node --db /tmp/cluster --node-id 0 \\
        --port 9000 --peers 127.0.0.1:9000,127.0.0.1:9001
    python -m repro.net serve-http --nodes 127.0.0.1:9000,127.0.0.1:9001 \\
        --port 8080

``init`` writes the shared ``cluster.json`` description; each
``serve-node`` process regenerates the deterministic dataset, ingests
only its own Morton shard, and serves the wire protocol; ``serve-http``
runs a mediator over :class:`~repro.net.transport.TcpTransport` and
puts the web service on an HTTP port.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.net.server import ClusterConfig, NodeServer
from repro.obs.report import report


def _split_addresses(raw: str) -> list[str]:
    """Parse a comma-separated ``host:port`` list."""
    addresses = [part.strip() for part in raw.split(",") if part.strip()]
    if not addresses:
        raise ValueError("expected a comma-separated host:port list")
    return addresses


def _cmd_init(args: argparse.Namespace) -> int:
    """Write ``cluster.json`` describing a new cluster."""
    config = ClusterConfig(
        dataset=args.dataset,
        side=args.side,
        timesteps=args.timesteps,
        seed=args.seed,
        nodes=args.nodes,
        buffer_pages=args.buffer_pages,
        replication_factor=args.replication_factor,
    )
    path = config.save(args.db)
    report(f"wrote {path}: {args.dataset} side={args.side} "
           f"timesteps={args.timesteps} over {args.nodes} node(s), "
           f"replication factor {args.replication_factor}")
    return 0


def _cmd_serve_node(args: argparse.Namespace) -> int:
    """Load this node's shard and serve the wire protocol until ^C."""
    config = ClusterConfig.load(args.db)
    peers = _split_addresses(args.peers) if args.peers else None
    server = NodeServer(
        args.node_id,
        config,
        host=args.host,
        port=args.port,
        peer_addresses=peers,
    )
    profiler = None
    if args.profile:
        from repro.obs.profile import SamplingProfiler

        profiler = SamplingProfiler(interval=args.profile_interval).start()
        report(f"node {args.node_id}: continuous profiler on "
               f"({args.profile_interval * 1000.0:.1f} ms sampling) "
               f"-> {args.profile}")
    shards = server.placement.shards_of(args.node_id)
    report(f"node {args.node_id}/{config.nodes}: loading "
           f"{config.dataset} shard(s) {list(shards)} (side={config.side}, "
           f"timesteps={config.timesteps})...")
    stored = server.load()
    report(f"node {args.node_id}: {stored} atoms stored; "
           f"serving on {server.host}:{server.port}")
    if args.catch_up:
        from repro.ha.anti_entropy import catch_up

        if peers is None:
            report("--catch-up needs --peers to reach a replica", error=True)
            server.shutdown()
            return 1
        caught = catch_up(server)
        report(f"node {args.node_id}: anti-entropy over shards "
               f"{list(caught.shards)}: {caught.atoms_checked} atoms "
               f"checked, {caught.chunks_fetched} chunks "
               f"({caught.bytes_fetched} bytes) fetched")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        report(f"node {args.node_id}: shutting down")
    finally:
        server.shutdown()
        if profiler is not None:
            profiler.stop()
            path = profiler.write(args.profile, by_span=True)
            report(f"node {args.node_id}: {profiler.samples} profile "
                   f"samples -> {path}")
    return 0


def _cmd_serve_http(args: argparse.Namespace) -> int:
    """Run a TCP-transport mediator plus the HTTP front door until ^C."""
    from repro.cluster.mediator import Mediator
    from repro.cluster.partition import MortonPartitioner
    from repro.cluster.webservice import WebService
    from repro.net.http import HttpFrontend
    from repro.net.transport import TcpTransport
    from repro.obs import tracing

    addresses = _split_addresses(args.nodes)
    if args.replication_factor > 1:
        from repro.ha import HaTcpTransport, PlacementMap

        placement = PlacementMap(
            len(addresses), len(addresses), args.replication_factor
        )
        transport: TcpTransport = HaTcpTransport(
            addresses,
            placement=placement,
            heartbeat_interval=args.heartbeat_interval,
            timeout=args.rpc_timeout,
        )
    else:
        transport = TcpTransport(addresses, timeout=args.rpc_timeout)
    names = transport.dataset_names()
    if not names:
        report("node servers expose no datasets; run init + serve-node first",
               error=True)
        transport.close()
        return 1
    side = transport.dataset_side(names[0])
    partitioner = MortonPartitioner(side, len(addresses))
    tracing.install()
    mediator = Mediator(
        nodes=[], partitioner=partitioner, transport=transport
    )
    service = WebService(mediator)
    frontend: "HttpFrontend | AsyncHttpFrontend"
    if args.asyncio:
        from repro.cluster.admission import AdmissionController
        from repro.net.aio import AsyncHttpFrontend

        admission = AdmissionController(
            service.metrics,
            tenant_rate=args.tenant_quota,
            tenant_burst=args.tenant_quota * 2.0,
            max_queue_depth=args.max_queue_depth,
            max_queue_wait=args.max_queue_wait,
            workers=args.max_inflight,
        )
        frontend = AsyncHttpFrontend(
            service,
            host=args.host,
            port=args.port,
            admission=admission,
            max_inflight=args.max_inflight,
        )
        flavour = (f"asyncio door, {args.max_inflight} bridge slots, "
                   f"{args.tenant_quota:g} req/s/tenant")
    else:
        frontend = HttpFrontend(service, host=args.host, port=args.port)
        flavour = "threaded door"
    report(f"mediator over {len(addresses)} node(s) "
           f"({', '.join(addresses)}); datasets: {', '.join(names)}")
    report(f"HTTP ({flavour}) on http://{frontend.host}:{args.port} — "
           "POST / for queries, GET /stats, GET /trace/<query_id>")
    try:
        frontend.serve_forever()
    except KeyboardInterrupt:
        report("shutting down")
    finally:
        frontend.shutdown()
        mediator.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.net`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.net",
        description="Run a real multi-process threshold-query cluster.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    init = sub.add_parser("init", help="write a cluster.json description")
    init.add_argument("--db", required=True, help="cluster directory")
    init.add_argument("--dataset", default="mhd",
                      choices=("mhd", "isotropic", "channel"))
    init.add_argument("--side", type=int, default=16)
    init.add_argument("--timesteps", type=int, default=2)
    init.add_argument("--seed", type=int, default=11)
    init.add_argument("--nodes", type=int, default=2)
    init.add_argument("--buffer-pages", type=int, default=256)
    init.add_argument(
        "--replication-factor", type=int, default=1,
        help="copies of each Morton shard (2+ lets queries survive a "
             "node failure; default 1, the unreplicated layout)",
    )
    init.set_defaults(run=_cmd_init)

    serve_node = sub.add_parser(
        "serve-node", help="serve one node's shard on a TCP port"
    )
    serve_node.add_argument("--db", required=True, help="cluster directory")
    serve_node.add_argument("--node-id", type=int, required=True)
    serve_node.add_argument("--host", default="127.0.0.1")
    serve_node.add_argument("--port", type=int, required=True)
    serve_node.add_argument(
        "--peers",
        help="comma-separated host:port of ALL nodes in node-id order "
             "(required when the cluster has more than one node)",
    )
    serve_node.add_argument(
        "--profile",
        help="continuously profile this node and write collapsed stacks "
             "(span-keyed) to this path on shutdown",
    )
    serve_node.add_argument(
        "--profile-interval", type=float, default=0.005,
        help="profiler sampling period in seconds (default 5 ms)",
    )
    serve_node.add_argument(
        "--catch-up", action="store_true",
        help="after loading, run digest anti-entropy against a peer "
             "replica of each owned shard (rejoin after downtime)",
    )
    serve_node.set_defaults(run=_cmd_serve_node)

    serve_http = sub.add_parser(
        "serve-http", help="run the mediator + web service over TCP nodes"
    )
    serve_http.add_argument(
        "--nodes", required=True,
        help="comma-separated host:port of the node servers, node-id order",
    )
    serve_http.add_argument("--host", default="127.0.0.1")
    serve_http.add_argument("--port", type=int, default=8080)
    serve_http.add_argument("--rpc-timeout", type=float, default=60.0)
    serve_http.add_argument(
        "--replication-factor", type=int, default=1,
        help="the cluster's replication factor; 2+ routes each shard "
             "over its replicas with health checks and mid-query failover",
    )
    serve_http.add_argument(
        "--heartbeat-interval", type=float, default=5.0,
        help="seconds between replica health probes (replicated mode)",
    )
    serve_http.add_argument(
        "--async", dest="asyncio", action="store_true",
        help="serve on the asyncio front door (repro.net.aio): keep-alive "
             "at thousands-of-clients scale with admission control and "
             "typed 429/503 load shedding",
    )
    serve_http.add_argument(
        "--max-inflight", type=int, default=8,
        help="async door: bridge threads into the mediator — the "
             "dispatch concurrency bound (default 8)",
    )
    serve_http.add_argument(
        "--tenant-quota", type=float, default=100.0,
        help="async door: per-tenant sustained requests/second (burst is "
             "2x; tenants come from the X-Tenant header, default 100)",
    )
    serve_http.add_argument(
        "--max-queue-depth", type=int, default=512,
        help="async door: admitted requests that may queue before the "
             "door sheds with 503 queue_full (default 512)",
    )
    serve_http.add_argument(
        "--max-queue-wait", type=float, default=2.0,
        help="async door: seconds a request may wait for a bridge slot "
             "before being shed (default 2.0)",
    )
    serve_http.set_defaults(run=_cmd_serve_http)
    return parser


def main(argv: "Sequence[str] | None" = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return int(args.run(args))


if __name__ == "__main__":
    sys.exit(main())
