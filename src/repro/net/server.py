"""The node server: one DatabaseNode behind the wire protocol.

``python -m repro.net serve-node`` turns one :class:`DatabaseNode` into
an OS process answering the mediator's per-node query parts — threshold,
batched threshold, PDF and top-k evaluation over its Morton shard — plus
the internal ``halo`` reads its peer node servers issue for boundary
bands.  Every node of a multi-process cluster regenerates the cluster's
deterministic synthetic dataset from the shared :class:`ClusterConfig`
and ingests only its own shard, so no bulk data ever crosses the wire
at start-up.

Peer halo reads go through :class:`RemoteHaloPeer`, an RPC proxy with
the same signature and cost-charging contract as
:meth:`~repro.cluster.node.DatabaseNode.serve_halo`: the *server* side
reads with no ledger bound, and the *requesting* side charges the
interconnect transfer to the query's ledger — identical accounting to
the in-process cluster.

Each connection negotiates a frame codec in its HELLO exchange and then
runs a small worker pool: the reader thread only parses frames, REQUEST
frames are answered concurrently (pipelined clients keep several in
flight), and responses — including the PARTIAL chunk streams of large
threshold/batch results — are written through a per-connection send
lock on a duplicated socket handle, so a slow response never blocks the
reader and frames never interleave mid-frame.
"""

from __future__ import annotations

import json
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.cluster.node import DatabaseNode
from repro.cluster.partition import MortonPartitioner
from repro.core.cache import SemanticCache
from repro.core.executor import HaloPeer, NodeExecutor
from repro.core.pdf import get_pdf_on_node
from repro.core.pdfcache import PdfCache
from repro.core.pointset import pack_f64, pack_u64
from repro.core.threshold import get_threshold_on_node
from repro.core.topk import get_topk_on_node
from repro.costmodel import Category, ClusterSpec, CostLedger, paper_cluster
from repro.costmodel.ledger import METER_HALO_BYTES, METER_HALO_SECONDS
from repro.fields.derived import FieldRegistry, UnknownFieldError, default_registry
from repro.morton import MortonRange
from repro.net import codec
from repro.net.compress import (
    CompressionConfig,
    DEFAULT_COMPRESSION,
    FrameCodec,
    negotiate,
    shared_codecs,
)
from repro.ha.placement import PlacementMap
from repro.net.errors import (
    ConnectionLostError,
    DeadlineExceededError,
    NetError,
    NodeUnavailableError,
    ProtocolError,
)
from repro.net.frame import (
    Buffer,
    Deadline,
    FrameType,
    PROTOCOL_VERSION,
    recv_frame,
    send_frame,
    send_shm_frame,
)
from repro.net.pool import ConnectionPool
from repro.net.shm import ShmWriter, host_token
from repro.net.stream import STREAM_CHUNK_POINTS, iter_point_chunks
from repro.net.transport import field_description, parse_address
from repro.obs import clock, tracing
from repro.simulation.datasets import (
    SyntheticDataset,
    channel_dataset,
    isotropic_dataset,
    mhd_dataset,
)
from repro.simulation.ingest import atomize
from repro.storage.errors import StorageError

#: Name of the cluster description file inside ``--db`` directories.
CONFIG_FILENAME = "cluster.json"

#: Seconds a connection may sit idle between frames before the server
#: drops it (pooled clients ping well inside this).
IDLE_TIMEOUT = 300.0

#: Budget for writing one response back to a (possibly slow) client.
RESPONSE_TIMEOUT = 60.0

#: Concurrent REQUEST handlers per connection; matches the useful
#: depth of a pipelined client's in-flight queue per socket.
REQUEST_WORKERS = 4

#: Methods answered inline on the connection's reader thread.  These
#: are sub-millisecond memory reads; under compute load every executor
#: handoff costs a GIL wait (up to the 5 ms switch interval), which for
#: halo exchange dominates the RPC itself.
INLINE_METHODS = frozenset({"halo", "describe"})

_DATASET_FACTORIES = {
    "mhd": mhd_dataset,
    "isotropic": isotropic_dataset,
    "channel": channel_dataset,
}

def _column_view(chunk: np.ndarray, dtype: str) -> memoryview:
    """A byte view of a column chunk, copy-free when already native.

    Chunk slices of contiguous little-endian columns (the only kind the
    stream producers make) need no conversion, so the view aliases the
    result array directly; anything else is converted first.
    """
    return memoryview(np.ascontiguousarray(chunk, dtype=dtype)).cast("B")


#: Failures a request may raise that are answered with an ERROR frame
#: instead of killing the connection (the ERR01 taxonomy boundary).
#: The connection-level types cover a node's *outgoing* halo RPCs: when
#: a peer replica dies mid-query, the requesting node must answer its
#: client with a typed ERROR (which the HA transport treats as
#: failover-worthy) instead of going silent until the client's deadline.
_REQUEST_ERRORS = (
    ProtocolError,
    UnknownFieldError,
    StorageError,
    ValueError,
    KeyError,
    TypeError,
    NodeUnavailableError,
    ConnectionLostError,
    DeadlineExceededError,
)


@dataclass
class StreamedResponse:
    """A response delivered as PARTIAL chunk frames plus a final frame.

    ``partials`` yields ``(header, blobs)`` messages, each becoming one
    PARTIAL frame; ``header``/``blobs`` form the terminating RESPONSE
    (which carries the ledger and flags, is marked ``"streamed": true``
    and ships no blobs).
    """

    partials: Iterable[tuple[dict, list[Buffer]]]
    header: dict
    blobs: list[Buffer]


class _ConnectionState:
    """One client connection's write side.

    The reader thread owns the original socket; responses are written
    through a duplicated handle under a lock, so worker threads never
    race the reader's ``settimeout`` calls and concurrently-answered
    requests never interleave mid-frame.  ``codec`` is ``None`` until
    the HELLO exchange negotiates one.
    """

    __slots__ = ("wsock", "lock", "codec", "shm")

    def __init__(self, conn: socket.socket) -> None:
        self.wsock = conn.dup()
        self.lock = threading.Lock()
        self.codec: FrameCodec | None = None
        self.shm: ShmWriter | None = None

    def send(
        self,
        frame_type: FrameType,
        request_id: int,
        payload: "Buffer | Sequence[Buffer]",
    ) -> None:
        # Holding the per-connection lock across the write is the point:
        # responses from the worker pool must not interleave on the
        # wire, and the send is bounded by the response deadline.
        with self.lock:
            send_frame(  # turblint: disable=LOCK02
                self.wsock,
                frame_type,
                request_id,
                payload,
                Deadline.after(RESPONSE_TIMEOUT),
                codec=self.codec,
            )

    def send_partial(
        self, request_id: int, payload: "Buffer | Sequence[Buffer]"
    ) -> None:
        """One PARTIAL chunk, via the shared-memory ring when possible.

        A granted ring carries the chunk as a slot copy plus a locator
        frame; no free slot (the client is still consuming) or an
        oversized chunk falls back to the inline TCP frame, so progress
        never depends on the ring.
        """
        if self.shm is not None:
            with self.lock:
                shipped = send_shm_frame(  # turblint: disable=LOCK02
                    self.wsock,
                    FrameType.PARTIAL,
                    request_id,
                    payload,
                    Deadline.after(RESPONSE_TIMEOUT),
                    writer=self.shm,
                )
            if shipped is not None:
                return
        self.send(FrameType.PARTIAL, request_id, payload)

    def close(self) -> None:
        try:
            self.wsock.close()
        except OSError:  # pragma: no cover - close owes us nothing
            pass
        if self.shm is not None:
            self.shm.close()
            self.shm = None


@dataclass(frozen=True)
class ClusterConfig:
    """The shared description every node of one cluster starts from.

    Stored as ``cluster.json`` in each node's ``--db`` directory; the
    dataset is deterministic in ``(kind, side, timesteps, seed)``, so
    each node process regenerates it locally and ingests only its own
    Morton shard.
    """

    dataset: str
    side: int
    timesteps: int
    seed: int
    nodes: int
    buffer_pages: int = 256
    cache_capacity_bytes: int | None = 256 * 1024 * 1024
    replication_factor: int = 1

    def __post_init__(self) -> None:
        if self.dataset not in _DATASET_FACTORIES:
            raise ValueError(
                f"unknown dataset kind {self.dataset!r}; "
                f"known: {sorted(_DATASET_FACTORIES)}"
            )
        if not 1 <= self.replication_factor <= self.nodes:
            raise ValueError(
                f"replication factor {self.replication_factor} outside "
                f"[1, {self.nodes}] for a {self.nodes}-node cluster"
            )

    def build_dataset(self) -> SyntheticDataset:
        """Regenerate the cluster's synthetic dataset."""
        factory = _DATASET_FACTORIES[self.dataset]
        return factory(
            side=self.side, timesteps=self.timesteps, seed=self.seed
        )

    def save(self, directory: "Path | str") -> Path:
        """Write ``cluster.json`` into ``directory``; returns its path."""
        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        target = path / CONFIG_FILENAME
        record = {
            "dataset": self.dataset,
            "side": self.side,
            "timesteps": self.timesteps,
            "seed": self.seed,
            "nodes": self.nodes,
            "buffer_pages": self.buffer_pages,
            "cache_capacity_bytes": self.cache_capacity_bytes,
            "replication_factor": self.replication_factor,
        }
        target.write_text(json.dumps(record, indent=2) + "\n")
        return target

    @classmethod
    def load(cls, directory: "Path | str") -> "ClusterConfig":
        """Read ``cluster.json`` from a ``--db`` directory."""
        target = Path(directory) / CONFIG_FILENAME
        record = json.loads(target.read_text())
        return cls(
            dataset=str(record["dataset"]),
            side=int(record["side"]),
            timesteps=int(record["timesteps"]),
            seed=int(record["seed"]),
            nodes=int(record["nodes"]),
            buffer_pages=int(record.get("buffer_pages", 256)),
            cache_capacity_bytes=(
                None
                if record.get("cache_capacity_bytes") is None
                else int(record["cache_capacity_bytes"])
            ),
            replication_factor=int(record.get("replication_factor", 1)),
        )


class RemoteHaloPeer:
    """RPC proxy for a peer node's boundary reads.

    Satisfies :class:`repro.core.executor.HaloPeer`: the remote server
    reads its atoms with no ledger bound (charging nothing there), and
    this proxy charges the interconnect transfer to the requesting
    query's ledger — exactly what
    :meth:`~repro.cluster.node.DatabaseNode.serve_halo` does in-process.
    """

    def __init__(
        self,
        pool: ConnectionPool,
        dataset_spec_source: ClusterSpec,
        timeout: float,
    ) -> None:
        self._pool = pool
        self._spec = dataset_spec_source
        self._timeout = timeout

    def serve_halo(
        self,
        dataset: str,
        field: str,
        timestep: int,
        ranges: list[MortonRange],
        ledger: CostLedger | None,
    ) -> dict[int, bytes]:
        """Fetch boundary atoms from the peer over one RPC."""
        call = self._pool.call(
            "halo",
            {
                "dataset": dataset,
                "field": field,
                "timestep": timestep,
                "ranges": codec.ranges_to_wire(ranges),
            },
            (),
            timeout=self._timeout,
            idempotent=True,
        )
        atoms = codec.halo_atoms_from_wire(call.header, call.blobs)
        if ledger is not None:
            nbytes = sum(len(blob) for blob in atoms.values())
            seconds = self._spec.interconnect.transfer_time(nbytes)
            ledger.charge(Category.IO, seconds)
            ledger.count(METER_HALO_SECONDS, seconds)
            ledger.count(METER_HALO_BYTES, nbytes)
        return atoms


class ReplicatedHaloPeer:
    """Halo reads for a shard held by several replicas, with failover.

    Tries each replica's :class:`RemoteHaloPeer` in placement order and
    falls through to the next on connection-level failures, so a node's
    boundary reads survive the death of one peer exactly like the
    mediator's shard parts do.  A non-transport failure (bad request,
    storage error) propagates immediately — every replica would answer
    it the same way.
    """

    def __init__(self, peers: "Sequence[RemoteHaloPeer]") -> None:
        if not peers:
            raise ValueError("a replicated halo peer needs at least one replica")
        self._peers = list(peers)

    def serve_halo(
        self,
        dataset: str,
        field: str,
        timestep: int,
        ranges: list[MortonRange],
        ledger: CostLedger | None,
    ) -> dict[int, bytes]:
        """Fetch boundary atoms from the first replica that answers."""
        last_error: NetError | None = None
        for peer in self._peers:
            try:
                return peer.serve_halo(dataset, field, timestep, ranges, ledger)
            except (
                NodeUnavailableError,
                ConnectionLostError,
                DeadlineExceededError,
            ) as error:
                last_error = error
        raise NodeUnavailableError(
            "replica-set",
            attempts=len(self._peers),
            message=(
                f"halo read failed on all {len(self._peers)} replicas: "
                f"{last_error}"
            ),
        ) from last_error


class NodeServer:
    """One database node listening on a TCP port.

    Args:
        node_id: this node's position in the cluster.
        config: the cluster description shared by every node.
        host: bind address.
        port: bind port (0 picks a free one; see :attr:`port`).
        peer_addresses: every node's ``host:port`` in node-id order (the
            entry at ``node_id`` is ignored).  Multi-node clusters that
            bind ephemeral ports (tests) can pass ``None`` here and call
            :meth:`connect_peers` once every node's port is known.
        spec: hardware spec (defaults to the paper-calibrated cluster).
        rpc_timeout: deadline for outgoing peer halo RPCs.
        registry: derived-field registry (defaults to the stock one).
        compression: frame codecs this server offers during HELLO
            negotiation (defaults to the stock zlib configuration).
        stream_chunk_points: threshold/batch responses with more points
            than this are streamed as PARTIAL chunk frames of at most
            this many points each.
        shm: accept clients' shared-memory ring grants (same-host fast
            path).  Grants from another host, or rings this process
            cannot attach, are declined per connection regardless.
    """

    def __init__(
        self,
        node_id: int,
        config: ClusterConfig,
        host: str = "127.0.0.1",
        port: int = 0,
        peer_addresses: "Sequence[str | tuple[str, int]] | None" = None,
        spec: ClusterSpec | None = None,
        rpc_timeout: float = 60.0,
        registry: FieldRegistry | None = None,
        compression: CompressionConfig | None = None,
        stream_chunk_points: int = STREAM_CHUNK_POINTS,
        shm: bool = True,
    ) -> None:
        if not 0 <= node_id < config.nodes:
            raise ValueError(
                f"node id {node_id} outside cluster of {config.nodes}"
            )
        if stream_chunk_points < 1:
            raise ValueError("stream_chunk_points must be positive")
        self.node_id = node_id
        self.config = config
        self.spec = spec or paper_cluster()
        self.registry = registry or default_registry()
        self.rpc_timeout = rpc_timeout
        self.compression = (
            compression if compression is not None else DEFAULT_COMPRESSION
        )
        self.stream_chunk_points = stream_chunk_points
        self.shm = shm
        self.partitioner = MortonPartitioner(config.side, config.nodes)
        self.placement = PlacementMap.from_partitioner(
            self.partitioner, config.replication_factor
        )
        self.node = DatabaseNode(
            node_id, self.spec, buffer_pages=config.buffer_pages
        )
        self.peer_addresses: "list[str | tuple[str, int]] | None" = None
        self._peer_pools: list[ConnectionPool | None] = [None] * config.nodes
        self.executor: NodeExecutor | None = None
        if config.nodes == 1:
            self.connect_peers([])
        elif peer_addresses is not None:
            self.connect_peers(peer_addresses)
        self.cache: SemanticCache | None = None
        self.pdf_cache: PdfCache | None = None
        if config.cache_capacity_bytes is not None:
            self.cache = SemanticCache(
                self.node.db,
                capacity_bytes=config.cache_capacity_bytes,
                point_record_bytes=self.spec.point_record_bytes,
            )
            self.pdf_cache = PdfCache(self.node.db)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(32)
        self.host = host
        self.port = int(self._listener.getsockname()[1])
        self._running = False
        self._accept_thread: threading.Thread | None = None
        self._conn_threads: list[threading.Thread] = []
        self._open_conns: set[socket.socket] = set()
        self._lock = threading.Lock()
        self._echo_columns: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def connect_peers(
        self, peer_addresses: "Sequence[str | tuple[str, int]]"
    ) -> None:
        """Wire up the peer halo proxies and build the node's executor.

        ``peer_addresses`` lists every node's ``host:port`` in node-id
        order (a single-node cluster passes an empty list; this node's
        own entry is ignored).  Must run before the server answers
        queries; pools connect lazily, so peers need not be up yet.
        """
        if self.executor is not None:
            raise ValueError(f"node {self.node_id} already has peers")
        if self.config.nodes > 1 and len(peer_addresses) != self.config.nodes:
            raise ValueError(
                f"{len(peer_addresses)} peer addresses for "
                f"{self.config.nodes} nodes"
            )
        self.peer_addresses = list(peer_addresses) if peer_addresses else None

        def pool_for(peer_id: int) -> ConnectionPool:
            pool = self._peer_pools[peer_id]
            if pool is None:
                peer_host, peer_port = parse_address(peer_addresses[peer_id])
                # Halo exchange is a synchronous call-and-wait pattern
                # from a compute thread: a serial connection answers it
                # with one thread wake-up fewer than the multiplexed
                # mode, which matters when the interpreter is busy
                # running kernels.
                pool = ConnectionPool(
                    peer_host, peer_port, max_connections=2, pipeline=False
                )
                self._peer_pools[peer_id] = pool
            return pool

        peers: list[HaloPeer] = []
        for shard in range(self.config.nodes):
            if self.placement.owns(self.node_id, shard):
                # A replicated shard this node ingested is served from
                # local storage — including halo bands "belonging" to a
                # peer's primary shard, which is what lets a query keep
                # its boundary reads when that peer dies.
                peers.append(self.node)
                continue
            replicas = [
                RemoteHaloPeer(pool_for(peer_id), self.spec, self.rpc_timeout)
                for peer_id in self.placement.replicas_of(shard)
            ]
            # One replica (the unreplicated layout) keeps the seed's
            # direct proxy; more get placement-order failover.
            peers.append(
                replicas[0]
                if len(replicas) == 1
                else ReplicatedHaloPeer(replicas)
            )
        self.executor = NodeExecutor(self.node, peers, self.partitioner)

    def _require_executor(self) -> NodeExecutor:
        """The executor, or a typed error if peers were never connected."""
        if self.executor is None:
            raise ValueError(
                f"node {self.node_id} has no peers; call connect_peers()"
            )
        return self.executor

    # -- data --------------------------------------------------------------------

    def load(self) -> int:
        """Regenerate the dataset and ingest this node's Morton shards.

        With replication the node ingests the union of every shard the
        placement assigns it (its primary shard plus the replica copies
        it holds for peers); at replication factor 1 that union is
        exactly the seed's single-shard ingest.  Returns the number of
        atoms stored.
        """
        dataset = self.config.build_dataset()
        if dataset.spec.name not in self.node.dataset_names:
            self.node.register_dataset(dataset.spec)
        owned = set(self.placement.shards_of(self.node_id))
        stored = 0
        for field in dataset.spec.fields:
            for timestep in range(dataset.spec.timesteps):
                array = dataset.field_array(field, timestep)
                shard = [
                    (zindex, blob)
                    for zindex, blob in atomize(array)
                    if self.partitioner.node_of_atom(zindex) in owned
                ]
                with self.node.db.transaction() as txn:
                    stored += self.node.store_atoms(
                        txn, dataset.spec.name, field, timestep, shard
                    )
        self.node.db.drop_page_cache()
        return stored

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Serve in a background thread (tests, benchmarks)."""
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"node{self.node_id}-accept",
            daemon=True,
        )
        self._accept_thread.start()

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self._running = True
        self._accept_loop()

    def shutdown(self) -> None:
        """Stop accepting, close peer pools and the node (idempotent).

        Live connections are shut down at the socket level so their
        reader threads wake immediately instead of riding out the idle
        timeout; every per-connection thread is then joined and the
        thread list emptied (:meth:`_accept_loop` already reaps
        finished threads as connections come and go).
        """
        self._running = False
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - close owes us nothing
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None
        with self._lock:
            conns = list(self._open_conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        with self._lock:
            threads, self._conn_threads = self._conn_threads, []
        for thread in threads:
            thread.join(timeout=5.0)
        for pool in self._peer_pools:
            if pool is not None:
                pool.close()
        self.node.close()

    def __enter__(self) -> "NodeServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()

    # -- the serve loop ----------------------------------------------------------

    def _accept_loop(self) -> None:
        # A short poll keeps shutdown() responsive without a wake pipe.
        self._listener.settimeout(0.2)
        while self._running:
            try:
                conn, _address = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed by shutdown()
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name=f"node{self.node_id}-conn",
                daemon=True,
            )
            with self._lock:
                self._conn_threads = [
                    t for t in self._conn_threads if t.is_alive()
                ]
                self._conn_threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        """One client connection: frames in, frames out, until EOF.

        This thread only reads and parses frames; REQUEST frames are
        answered by a small per-connection worker pool so a pipelined
        client's in-flight requests are served concurrently.  Responses
        go through the connection state's locked write handle.
        """
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        state = _ConnectionState(conn)
        workers = ThreadPoolExecutor(
            max_workers=REQUEST_WORKERS,
            thread_name_prefix=f"node{self.node_id}-rpc",
        )
        with self._lock:
            self._open_conns.add(conn)
        try:
            while self._running:
                frame = recv_frame(
                    conn,
                    Deadline.after(IDLE_TIMEOUT),
                    eof_ok=True,
                    codec=state.codec,
                )
                if frame is None:
                    break
                if frame.frame_type == FrameType.HELLO:
                    self._answer_hello(state, frame.request_id, frame.payload)
                elif frame.frame_type == FrameType.PING:
                    state.send(FrameType.PONG, frame.request_id, b"")
                elif frame.frame_type == FrameType.REQUEST:
                    self._route_request(
                        state, workers, frame.request_id, frame.payload
                    )
                else:
                    raise ProtocolError(
                        f"client may not send {frame.frame_type.name} frames"
                    )
        except (NetError, OSError):
            # The connection is broken or misbehaving; there is no one
            # to answer — drop it and let the client's deadline fire.
            pass
        finally:
            with self._lock:
                self._open_conns.discard(conn)
            # Let in-flight answers finish (their sends fail fast if the
            # client is gone) before the write handle goes away.
            workers.shutdown(wait=True)
            state.close()
            try:
                conn.close()
            except OSError:  # pragma: no cover - close owes us nothing
                pass

    def _answer_hello(
        self, state: _ConnectionState, request_id: int, payload: Buffer
    ) -> None:
        header, _ = codec.decode_message(payload)
        if header.get("protocol") != PROTOCOL_VERSION:
            raise ProtocolError(
                f"client speaks protocol {header.get('protocol')}, "
                f"this server speaks {PROTOCOL_VERSION}"
            )
        advertised = [str(name) for name in header.get("codecs", [])]
        chosen = negotiate(self.compression.codecs, advertised)
        writer = self._attach_ring(header.get("shm"))
        body = codec.encode_message(
            {
                "protocol": PROTOCOL_VERSION,
                "node_id": self.node_id,
                "codecs": list(self.compression.codecs),
                "codec": chosen,
                "shm": writer is not None,
            }
        )
        # The ack itself is always raw; the negotiated codec applies
        # from the next frame in both directions.
        state.send(FrameType.HELLO_ACK, request_id, body)
        state.codec = FrameCodec(
            self.compression,
            chosen,
            allowed=shared_codecs(self.compression.codecs, advertised),
        )
        state.shm = writer

    def _attach_ring(self, grant: object) -> ShmWriter | None:
        """Attach the client's advertised payload ring, or decline.

        Declines (returns ``None``) when shm is disabled on this server,
        the grant is absent/malformed, the client's host token differs
        from ours, or the segment cannot be attached (which is how a
        lying host token actually surfaces) — the client then simply
        stays on TCP.
        """
        if not self.shm or not isinstance(grant, dict):
            return None
        try:
            if str(grant.get("host")) != host_token():
                return None
            return ShmWriter(
                str(grant["name"]),
                int(grant["slots"]),
                int(grant["slot_bytes"]),
            )
        except (OSError, KeyError, ValueError, TypeError):
            return None

    def _route_request(
        self,
        state: _ConnectionState,
        workers: ThreadPoolExecutor,
        request_id: int,
        payload: Buffer,
    ) -> None:
        """Decode one REQUEST and pick its execution lane.

        Messages are decoded here on the reader thread (a JSON header
        parse plus zero-copy blob slices — cheap next to the socket
        read).  :data:`INLINE_METHODS` are then answered in place;
        everything else goes to the per-connection worker pool so a
        pipelined client's queries still run concurrently.
        """
        try:
            header, blobs = codec.decode_message(payload)
            method = str(header.get("method", ""))
        except _REQUEST_ERRORS as error:
            self._send_error(state, request_id, error)
            return
        if method in INLINE_METHODS:
            self._answer_request(state, request_id, method, header, blobs)
        else:
            workers.submit(
                self._answer_request, state, request_id, method, header, blobs
            )

    @staticmethod
    def _send_error(
        state: _ConnectionState, request_id: int, error: Exception
    ) -> None:
        """Answer a failed request with a typed ERROR frame."""
        state.send(
            FrameType.ERROR,
            request_id,
            codec.encode_message(
                {
                    "error": {
                        "type": type(error).__name__,
                        "code": "remote_error",
                        "message": str(error),
                    }
                }
            ),
        )

    def _answer_request(
        self,
        state: _ConnectionState,
        request_id: int,
        method: str,
        header: dict,
        blobs: "list[Buffer]",
    ) -> None:
        # A traced request installs the caller's span context *on this
        # thread* (the worker pool does not propagate contextvars from
        # the reader thread, so the install must happen here): every
        # span the dispatch opens — executor, cache, storage, halo —
        # parents under the remote caller's span and lands in the
        # capture buffer instead of any local collector.
        context = codec.trace_context_from_wire(header)
        received = clock.now()
        try:
            with tracing.remote_request(context) as capture:
                try:
                    response = self._dispatch(method, header, blobs)
                except _REQUEST_ERRORS as error:
                    self._send_error(state, request_id, error)
                    return
                if isinstance(response, StreamedResponse):
                    for part_header, part_blobs in response.partials:
                        state.send_partial(
                            request_id,
                            codec.encode_message_parts(part_header, part_blobs),
                        )
                    final_header, final_blobs = response.header, response.blobs
                else:
                    final_header, final_blobs = response
            if capture is not None:
                # Piggyback the captured spans (with this server's own
                # recv/send clock stamps for the caller's skew estimate)
                # on the final RESPONSE header — no extra round trip.
                final_header = {
                    **final_header,
                    codec.TRACE_HEADER_KEY: codec.trace_payload_to_wire(
                        self.node_id, received, clock.now(), capture.to_wire()
                    ),
                }
            state.send(
                FrameType.RESPONSE,
                request_id,
                codec.encode_message_parts(final_header, final_blobs),
            )
        except (NetError, OSError):
            # The client went away mid-answer; the reader loop notices
            # the broken socket and retires the connection.
            pass

    # -- request dispatch --------------------------------------------------------

    def _dispatch(
        self, method: str, header: dict, blobs: list[Buffer]
    ) -> "tuple[dict, list[Buffer]] | StreamedResponse":
        """Run one RPC; returns ``(header, blobs)`` or a chunk stream."""
        with tracing.span("server.request", method=method, node=self.node_id):
            if method == "threshold":
                return self._serve_threshold(header)
            if method == "batch_threshold":
                return self._serve_batch(header)
            if method == "pdf":
                return self._serve_pdf(header)
            if method == "topk":
                return self._serve_topk(header)
            if method == "halo":
                return self._serve_halo(header)
            if method == "digest":
                return self._serve_digest(header)
            if method == "describe":
                return self._serve_describe()
            if method == "register_field":
                return self._serve_register_field(header)
            if method == "echo":
                return self._serve_echo(header, blobs)
            raise ValueError(f"unknown RPC method {method!r}")

    def _point_stream(
        self, items: "Sequence[tuple[dict, np.ndarray, np.ndarray]]"
    ) -> Iterable[tuple[dict, list[Buffer]]]:
        """PARTIAL messages for column pairs, chunked and tagged.

        Columns travel as zero-copy views of the (little-endian,
        contiguous) chunk slices — the only copies left between the
        result arrays and the socket or shared-memory slot are the ones
        the transport itself must make.
        """
        for tag, zindexes, values in items:
            for seq, z_chunk, v_chunk in iter_point_chunks(
                zindexes, values, self.stream_chunk_points
            ):
                yield (
                    {**tag, "seq": seq},
                    [_column_view(z_chunk, "<u8"), _column_view(v_chunk, "<f8")],
                )

    def _serve_threshold(
        self, header: dict
    ) -> "tuple[dict, list[Buffer]] | StreamedResponse":
        query = codec.threshold_query_from_wire(header["query"])
        result = get_threshold_on_node(
            self.node,
            self._require_executor(),
            self.cache if header.get("use_cache", True) else None,
            self.registry,
            query,
            codec.boxes_from_wire(header["boxes"]),
            processes=int(header.get("processes", 1)),
            io_only=bool(header.get("io_only", False)),
        )
        if len(result.zindexes) > self.stream_chunk_points:
            return StreamedResponse(
                self._point_stream([({}, result.zindexes, result.values)]),
                {**codec.threshold_result_header(result), "streamed": True},
                [],
            )
        return codec.threshold_result_to_wire(result)

    def _serve_batch(
        self, header: dict
    ) -> "tuple[dict, list[Buffer]] | StreamedResponse":
        from repro.core.batch import get_batch_on_node

        queries = [
            codec.threshold_query_from_wire(record)
            for record in header["queries"]
        ]
        results = get_batch_on_node(
            self.node,
            self._require_executor(),
            self.cache if header.get("use_cache", True) else None,
            self.registry,
            queries,
            codec.boxes_from_wire(header["boxes"]),
            processes=int(header.get("processes", 1)),
        )
        total_points = sum(len(item.zindexes) for item in results)
        if total_points > self.stream_chunk_points:
            return StreamedResponse(
                self._point_stream(
                    [
                        ({"query": index}, item.zindexes, item.values)
                        for index, item in enumerate(results)
                    ]
                ),
                {**codec.batch_results_header(results), "streamed": True},
                [],
            )
        return codec.batch_results_to_wire(results)

    def _serve_pdf(self, header: dict) -> tuple[dict, list[bytes]]:
        query = codec.pdf_query_from_wire(header["query"])
        result = get_pdf_on_node(
            self.node,
            self._require_executor(),
            self.registry,
            query,
            codec.boxes_from_wire(header["boxes"]),
            processes=int(header.get("processes", 1)),
            pdf_cache=(
                self.pdf_cache if header.get("use_cache", True) else None
            ),
        )
        return codec.pdf_result_to_wire(result)

    def _serve_topk(self, header: dict) -> tuple[dict, list[bytes]]:
        query = codec.topk_query_from_wire(header["query"])
        result = get_topk_on_node(
            self.node,
            self._require_executor(),
            self.registry,
            query,
            codec.boxes_from_wire(header["boxes"]),
            processes=int(header.get("processes", 1)),
            cache=self.cache if header.get("use_cache", True) else None,
        )
        return codec.topk_result_to_wire(result)

    def _serve_halo(self, header: dict) -> tuple[dict, list[bytes]]:
        # ledger=None: the requesting side charges the transfer (see
        # RemoteHaloPeer), mirroring the in-process charging split.
        atoms = self.node.serve_halo(
            str(header["dataset"]),
            str(header["field"]),
            int(header["timestep"]),
            codec.ranges_from_wire(header["ranges"]),
            None,
        )
        return codec.halo_atoms_to_wire(atoms)

    def _serve_digest(self, header: dict) -> tuple[dict, list[bytes]]:
        """Per-atom content digests over Morton ranges (anti-entropy).

        A rejoining replica compares this map against its own copy and
        fetches only the divergent atoms via ``halo``; like a halo read,
        the scan charges nothing locally — serving catch-up must not
        perturb this node's buffer pool.
        """
        from repro.ha.anti_entropy import chunk_digests

        with self.node.db.transaction(None) as txn:
            atoms = self.node.read_atoms(
                txn,
                str(header["dataset"]),
                str(header["field"]),
                int(header["timestep"]),
                codec.ranges_from_wire(header["ranges"]),
                charge=False,
            )
        return (
            {
                "digests": {
                    str(zindex): digest
                    for zindex, digest in chunk_digests(atoms).items()
                }
            },
            [],
        )

    def _serve_describe(self) -> tuple[dict, list[bytes]]:
        datasets = []
        for name in self.node.dataset_names:
            spec = self.node.dataset(name)
            datasets.append(
                {
                    "name": spec.name,
                    "side": spec.side,
                    "timesteps": spec.timesteps,
                    "fields": sorted(spec.fields),
                }
            )
        return (
            {
                "node_id": self.node_id,
                "nodes": self.config.nodes,
                "datasets": datasets,
            },
            [],
        )

    def _serve_register_field(self, header: dict) -> tuple[dict, list[bytes]]:
        derived = self.registry.register_expression(
            str(header["name"]), str(header["text"])
        )
        return {"field": field_description(derived)}, []

    def _serve_echo(
        self, header: dict, blobs: list[Buffer]
    ) -> "tuple[dict, list[Buffer]] | StreamedResponse":
        """Diagnostic transfer RPC for benchmarks and wire tests.

        With ``{"points": n}`` the server synthesizes a deterministic
        n-point column pair and returns it exactly like a threshold
        result would travel — streamed as PARTIAL chunks when large —
        so transfer benchmarks measure the real data plane without a
        query attached.  The columns mimic a real result: sorted Morton
        keys with varying gaps and smooth field values with full
        float64 mantissa entropy (a constant-period ramp would hand the
        plain-zlib leg LZ77 matches no turbulence field exhibits).
        They are memoized per point count (repeated transfers of one
        size time the transport, not numpy).  Otherwise the request
        blobs are echoed back.
        """
        if header.get("points") is not None:
            points = int(header["points"])
            if points < 0:
                raise ValueError("points must be non-negative")
            cached = self._echo_columns.get(points)
            if cached is None:
                ramp = np.arange(points, dtype=np.float64)
                gaps = (
                    1.0 + 7.0 * (0.5 + 0.5 * np.sin(ramp * 0.003))
                ).astype(np.uint64)
                zindexes = np.cumsum(gaps, dtype=np.uint64)
                values = (
                    np.sin(ramp * 0.0021) * 2.0
                    + np.sin(ramp * 0.093) * 0.25
                )
                if len(self._echo_columns) >= 8:
                    self._echo_columns.clear()
                self._echo_columns[points] = (zindexes, values)
            else:
                zindexes, values = cached
            if points > self.stream_chunk_points:
                return StreamedResponse(
                    self._point_stream([({}, zindexes, values)]),
                    {"points": points, "streamed": True},
                    [],
                )
            return (
                {"points": points},
                [pack_u64(zindexes), pack_f64(values)],
            )
        return {"count": len(blobs)}, list(blobs)
