"""Client connections to a node server, plus the retry policy.

Two connection flavours share one wire dialect:

* :class:`NodeClient` — the serial connection: handshake on connect
  (HELLO/HELLO_ACK with protocol version, node id and codec
  negotiation), then one REQUEST at a time, reading PARTIAL frames and
  the final RESPONSE inline.
* :class:`PipelinedConnection` — the multiplexed connection the pool
  uses by default: a background reader loop dispatches incoming frames
  by ``request_id`` to per-request queues, so many calls are in flight
  on one socket and the Mediator's scatter no longer serializes
  send→recv per call.  If the socket dies, *every* outstanding request
  fails with :class:`ConnectionLostError` and the connection reports
  itself unusable.

Every public operation takes an explicit deadline — there is no "no
timeout" mode anywhere in this tier (lint rule NET01 enforces the
discipline statically).

:class:`RetryPolicy` describes exponential backoff with jitter for
*idempotent reads*; the decision of what is idempotent and the retry
loop itself live in :class:`~repro.net.pool.ConnectionPool`, which can
swap the broken connection a retry needs.
"""

from __future__ import annotations

import queue
import random
import socket
import threading
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.fields.derived import UnknownFieldError
from repro.fields.expressions import ExpressionError
from repro.net import codec, compress
from repro.net.compress import CompressionConfig, DEFAULT_COMPRESSION, FrameCodec
from repro.net.errors import (
    ConnectionLostError,
    DeadlineExceededError,
    NetError,
    NodeUnavailableError,
    ProtocolError,
    RemoteCallError,
)
from repro.net.frame import (
    Buffer,
    Deadline,
    Frame,
    FrameType,
    PROTOCOL_VERSION,
    poll_frame,
    recv_frame,
    send_frame,
)
from repro.net.shm import ShmRing
from repro.net.stream import PartialSink
from repro.obs import clock

#: Remote exception types rebuilt as their local classes, so the web
#: service's error mapping behaves identically on both transports.
_REMOTE_TYPES: Mapping[str, type[Exception]] = {
    "UnknownFieldError": UnknownFieldError,
    "ExpressionError": ExpressionError,
    "ValueError": ValueError,
    "KeyError": KeyError,
    "TypeError": TypeError,
}

#: How long the pipelined reader blocks per poll before re-checking
#: for shutdown; short enough that close() feels immediate.
READ_POLL_SECONDS = 0.25
#: Budget for completing a frame once its first byte has arrived.  This
#: is a liveness backstop, not a request deadline (those are enforced
#: per call on the waiter queue) — it only has to distinguish "a large
#: frame is flowing" from "the peer wedged mid-frame".
READER_FRAME_TIMEOUT = 600.0


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter for idempotent reads.

    ``delay(attempt)`` for attempt 0, 1, 2... is
    ``base * multiplier^attempt`` capped at ``max_delay``, widened by a
    uniform jitter of ``+-jitter`` (fractional) so a restarted node is
    not hit by every client in lockstep.
    """

    attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("a retry policy needs at least one attempt")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be a fraction in [0, 1]")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        raw = min(self.base_delay * self.multiplier**attempt, self.max_delay)
        return raw * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


@dataclass(frozen=True)
class CallResult:
    """A successful RPC: decoded message plus its wire-byte footprint.

    ``bytes_sent``/``bytes_received`` count what actually crossed the
    wire (headers included, compression applied), which is what the
    ledger's ``wire_bytes`` meter charges.  ``partial_frames`` is how
    many PARTIAL chunks preceded the final response.
    """

    header: dict
    blobs: list[Buffer]
    bytes_sent: int
    bytes_received: int
    partial_frames: int = 0
    #: Payload bytes that travelled via the shared-memory ring instead
    #: of the socket (their locators are already in ``bytes_received``).
    shm_bytes: int = 0


def remote_error(header: dict) -> Exception:
    """Rebuild the exception an ERROR frame describes."""
    record = header.get("error")
    if not isinstance(record, dict):
        return ProtocolError("ERROR frame without an error record")
    remote_type = str(record.get("type", "Exception"))
    message = str(record.get("message", ""))
    local = _REMOTE_TYPES.get(remote_type)
    if local is not None:
        return local(message)
    return RemoteCallError(
        remote_type, str(record.get("code", "remote_error")), message
    )


def _connect(host: str, port: int, address: str, deadline: Deadline) -> socket.socket:
    """Open the TCP connection (or raise :class:`NodeUnavailableError`)."""
    try:
        sock = socket.create_connection(
            (host, port), timeout=deadline.remaining()
        )
    except OSError as error:
        raise NodeUnavailableError(
            address, attempts=1,
            message=f"connect to {address} failed: {error}",
        ) from error
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


def _make_ring(shm: bool) -> ShmRing | None:
    """A fresh payload ring, or ``None`` when shm is off or unusable."""
    if not shm:
        return None
    try:
        return ShmRing()
    except (OSError, ValueError):  # pragma: no cover - no usable /dev/shm
        return None


def perform_handshake(
    sock: socket.socket,
    address: str,
    deadline: Deadline,
    config: CompressionConfig,
    on_ratio: Callable[[float], None] | None = None,
    ring: ShmRing | None = None,
) -> tuple[int | None, FrameCodec, bool]:
    """HELLO/HELLO_ACK: agree on protocol version, codecs and shm.

    The client advertises the codec names it supports (and, with a
    ``ring``, its shared-memory grant: host token + segment geometry);
    the server picks a primary codec (or ``"none"``), echoes its own
    codec list so both sides know the shared set the per-frame probe
    may use, and accepts or declines the ring.  Returns the server's
    node id, the negotiated :class:`FrameCodec`, and whether the server
    attached to the ring.

    Raises:
        ProtocolError: version mismatch, or the server chose a codec
            this client never advertised.
    """
    hello: dict = {"protocol": PROTOCOL_VERSION, "codecs": list(config.codecs)}
    if ring is not None:
        hello["shm"] = ring.grant()
    payload = codec.encode_message(hello)
    send_frame(sock, FrameType.HELLO, 0, payload, deadline)
    frame = recv_frame(sock, deadline)
    assert frame is not None
    if frame.frame_type != FrameType.HELLO_ACK:
        raise ProtocolError(
            f"expected HELLO_ACK, got {frame.frame_type.name} from {address}"
        )
    header, _ = codec.decode_message(frame.payload)
    if header.get("protocol") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"{address} speaks protocol {header.get('protocol')}, "
            f"this build speaks {PROTOCOL_VERSION}"
        )
    chosen = str(header.get("codec", "none"))
    if chosen != "none" and chosen not in config.codecs:
        raise ProtocolError(
            f"{address} chose frame codec {chosen!r} this client "
            f"never advertised"
        )
    remote_names = header.get("codecs")
    if isinstance(remote_names, list):
        allowed = compress.shared_codecs(
            config.codecs, [str(name) for name in remote_names]
        )
    else:  # a peer that omits its codec list: trust only its pick
        allowed = (chosen,) if chosen != "none" else ()
    if chosen != "none" and chosen not in allowed:
        allowed = (chosen, *allowed)
    node_id = int(header["node_id"]) if "node_id" in header else None
    shm_granted = ring is not None and bool(header.get("shm"))
    return (
        node_id,
        FrameCodec(config, chosen, on_ratio=on_ratio, allowed=allowed),
        shm_granted,
    )


class NodeClient:
    """One serial framed connection to a node server.

    Args:
        host: server host.
        port: server port.
        connect_deadline: budget for TCP connect plus the handshake.
        compression: codecs to advertise (defaults to the stock zlib
            configuration; pass ``NO_COMPRESSION`` to force raw frames).
        on_ratio: callback fed each frame's achieved compression ratio.
        shm: offer the server a shared-memory payload ring (used only
            when both ends share a host; declined grants fall back to
            plain TCP transparently).

    Raises:
        NodeUnavailableError: the TCP connection could not be opened.
        ProtocolError: the handshake failed.
    """

    def __init__(
        self,
        host: str,
        port: int,
        connect_deadline: Deadline,
        *,
        compression: CompressionConfig | None = None,
        on_ratio: Callable[[float], None] | None = None,
        shm: bool = False,
    ) -> None:
        self.address = f"{host}:{port}"
        config = compression if compression is not None else DEFAULT_COMPRESSION
        self._sock = _connect(host, port, self.address, connect_deadline)
        self._next_request_id = 1
        self._closed = False
        self.node_id: int | None = None
        self._ring = _make_ring(shm)
        try:
            self.node_id, self._codec, granted = perform_handshake(
                self._sock, self.address, connect_deadline, config, on_ratio,
                ring=self._ring,
            )
            if not granted and self._ring is not None:
                self._ring.close()
                self._ring = None
        except Exception:
            self.close()
            raise

    # -- calls -----------------------------------------------------------------

    def call(
        self,
        method: str,
        header: dict,
        blobs: Sequence[Buffer],
        deadline: Deadline,
        *,
        sink: PartialSink | None = None,
    ) -> CallResult:
        """One RPC round trip.

        A streamed response (PARTIAL frames before the final RESPONSE)
        is fed chunk-by-chunk into ``sink``; a server that streams at a
        caller that supplied no sink is a protocol violation.

        Raises:
            DeadlineExceededError: budget spent before the response landed.
            ConnectionLostError: the socket broke mid-call.
            ProtocolError: the response violated the protocol; the
                connection must be discarded.
            RemoteCallError: the server answered with a typed error (or
                a rebuilt local exception class for the allowlisted
                types, e.g. ``UnknownFieldError``).
        """
        self._ensure_open()
        request_id = self._next_request_id
        self._next_request_id += 1
        parts = codec.encode_message_parts({"method": method, **header}, blobs)
        sent = send_frame(
            self._sock, FrameType.REQUEST, request_id, parts, deadline,
            codec=self._codec,
        )
        received = 0
        partials = 0
        via_shm = 0
        while True:
            frame = recv_frame(
                self._sock, deadline, codec=self._codec, shm=self._ring
            )
            assert frame is not None
            if frame.request_id != request_id:
                raise ProtocolError(
                    f"response id {frame.request_id} does not match "
                    f"request {request_id}"
                )
            received += frame.wire_bytes
            via_shm += frame.shm_bytes
            response_header, response_blobs = codec.decode_message(frame.payload)
            if frame.frame_type == FrameType.PARTIAL:
                try:
                    if sink is None:
                        raise ProtocolError(
                            f"{self.address} streamed PARTIAL frames for a "
                            f"call without a sink"
                        )
                    sink.feed(response_header, response_blobs)
                finally:
                    if frame.release is not None:
                        frame.release()
                partials += 1
                continue
            if frame.frame_type == FrameType.ERROR:
                raise remote_error(response_header)
            if frame.frame_type != FrameType.RESPONSE:
                raise ProtocolError(
                    f"expected RESPONSE, got {frame.frame_type.name} "
                    f"from {self.address}"
                )
            return CallResult(
                response_header, response_blobs, sent, received, partials,
                via_shm,
            )

    def ping(self, deadline: Deadline) -> float:
        """Health check; returns the round-trip wall seconds.

        Raises the same family of errors as :meth:`call`.
        """
        self._ensure_open()
        start = clock.now()
        send_frame(self._sock, FrameType.PING, 0, b"", deadline)
        frame = recv_frame(self._sock, deadline)
        assert frame is not None
        if frame.frame_type != FrameType.PONG:
            raise ProtocolError(f"expected PONG, got {frame.frame_type.name}")
        return clock.now() - start

    # -- lifecycle -------------------------------------------------------------

    def _ensure_open(self) -> None:
        if self._closed:
            raise ConnectionLostError(f"client to {self.address} is closed")

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def shm_active(self) -> bool:
        """Whether the server attached to this connection's ring."""
        return self._ring is not None

    def close(self) -> None:
        """Close the socket and the payload ring (idempotent)."""
        if not self._closed:
            self._closed = True
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close never owes us anything
                pass
            if self._ring is not None:
                self._ring.close()
                self._ring = None

    def __enter__(self) -> "NodeClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


@dataclass
class _Waiter:
    """Per-request mailbox the reader loop posts frames into."""

    frames: "queue.SimpleQueue[tuple]" = field(default_factory=queue.SimpleQueue)


def _drain_releases(waiter: _Waiter) -> None:
    """Ack ring slots of frames a finished/abandoned caller never took."""
    while True:
        try:
            entry = waiter.frames.get_nowait()
        except queue.Empty:
            return
        if entry[0] in ("partial", "final") and callable(entry[-1]):
            entry[-1]()


class PipelinedConnection:
    """One multiplexed framed connection with many in-flight requests.

    A daemon reader thread owns a duplicate of the socket's file
    descriptor (``sock.dup()``), so receive timeouts never race the
    sender's ``settimeout`` calls.  Sends are serialized by a lock;
    responses are matched to callers by the ``request_id`` the frame
    header already carries.  Any transport failure — EOF, reset, a
    malformed frame — fails *all* outstanding requests with
    :class:`ConnectionLostError` and permanently marks the connection
    unusable; the pool then discards it.
    """

    def __init__(
        self,
        host: str,
        port: int,
        connect_deadline: Deadline,
        *,
        compression: CompressionConfig | None = None,
        on_ratio: Callable[[float], None] | None = None,
        shm: bool = False,
    ) -> None:
        self.address = f"{host}:{port}"
        config = compression if compression is not None else DEFAULT_COMPRESSION
        self._sock = _connect(host, port, self.address, connect_deadline)
        self._send_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._waiters: dict[int, _Waiter] = {}
        self._next_request_id = 1
        self._dead: Exception | None = None
        self._closed = False
        #: When a request was last issued here; the pool's idle-TTL
        #: eviction compares against this stamp.
        self.last_used = clock.now()
        self.node_id: int | None = None
        self._ring = _make_ring(shm)
        try:
            self.node_id, self._codec, granted = perform_handshake(
                self._sock, self.address, connect_deadline, config, on_ratio,
                ring=self._ring,
            )
            if not granted and self._ring is not None:
                self._ring.close()
                self._ring = None
            self._rsock = self._sock.dup()
        except Exception:
            self._sock.close()
            if self._ring is not None:
                self._ring.close()
                self._ring = None
            raise
        self._reader = threading.Thread(
            target=self._read_loop,
            name=f"net-mux-{self.address}",
            daemon=True,
        )
        self._reader.start()

    # -- state -----------------------------------------------------------------

    @property
    def usable(self) -> bool:
        """Whether new calls may be issued on this connection."""
        with self._state_lock:
            return not self._closed and self._dead is None

    @property
    def in_flight(self) -> int:
        """Outstanding requests (the pool's load-balancing signal)."""
        with self._state_lock:
            return len(self._waiters)

    @property
    def shm_active(self) -> bool:
        """Whether the server attached to this connection's ring."""
        return self._ring is not None

    # -- calls -----------------------------------------------------------------

    def call(
        self,
        method: str,
        header: dict,
        blobs: Sequence[Buffer],
        deadline: Deadline,
        *,
        sink: PartialSink | None = None,
    ) -> CallResult:
        """One multiplexed RPC; safe to invoke from many threads at once.

        Raises the same family of errors as :meth:`NodeClient.call`; in
        addition, a request that times out merely abandons its mailbox
        (the connection stays healthy and a late response is dropped).
        """
        request_id, waiter = self._register()
        parts = codec.encode_message_parts({"method": method, **header}, blobs)
        sent = self._send(FrameType.REQUEST, request_id, parts, deadline)
        return self._await_response(
            request_id, waiter, deadline, sent, sink=sink
        )

    def ping(self, deadline: Deadline) -> float:
        """Health check; returns the round-trip wall seconds."""
        request_id, waiter = self._register()
        start = clock.now()
        self._send(FrameType.PING, request_id, b"", deadline)
        result = self._await_response(request_id, waiter, deadline, 0,
                                      sink=None, expect=FrameType.PONG)
        del result
        return clock.now() - start

    def _register(self) -> tuple[int, _Waiter]:
        with self._state_lock:
            if self._closed:
                raise ConnectionLostError(
                    f"client to {self.address} is closed"
                )
            if self._dead is not None:
                raise ConnectionLostError(
                    f"connection to {self.address} is dead: {self._dead}"
                )
            request_id = self._next_request_id
            self._next_request_id += 1
            self.last_used = clock.now()
            waiter = _Waiter()
            self._waiters[request_id] = waiter
            return request_id, waiter

    def _unregister(self, request_id: int) -> None:
        with self._state_lock:
            self._waiters.pop(request_id, None)

    def _send(
        self,
        frame_type: FrameType,
        request_id: int,
        payload: Buffer | Sequence[Buffer],
        deadline: Deadline,
    ) -> int:
        try:
            # Holding _send_lock across the write is the point: frames
            # from concurrent callers must not interleave on the wire,
            # and the send is bounded by the request deadline.
            with self._send_lock:
                return send_frame(  # turblint: disable=LOCK02
                    self._sock, frame_type, request_id, payload, deadline,
                    codec=self._codec,
                )
        except (DeadlineExceededError, ConnectionLostError, OSError) as error:
            # A partially-written frame desyncs the stream for everyone:
            # poison the connection, not just this call.
            self._unregister(request_id)
            self._fail_all(
                ConnectionLostError(
                    f"send to {self.address} failed mid-frame: {error}"
                )
            )
            raise
        except BaseException:
            self._unregister(request_id)
            raise

    def _await_response(
        self,
        request_id: int,
        waiter: _Waiter,
        deadline: Deadline,
        sent: int,
        *,
        sink: PartialSink | None,
        expect: FrameType = FrameType.RESPONSE,
    ) -> CallResult:
        received = 0
        partials = 0
        via_shm = 0
        try:
            while True:
                try:
                    entry = waiter.frames.get(timeout=deadline.remaining())
                except queue.Empty:
                    raise DeadlineExceededError(
                        f"no response from {self.address} within the deadline"
                    ) from None
                kind = entry[0]
                if kind == "partial":
                    _, part_header, part_blobs, wire, shm_span, release = entry
                    received += wire
                    via_shm += shm_span
                    partials += 1
                    try:
                        if sink is None:
                            raise ProtocolError(
                                f"{self.address} streamed PARTIAL frames for "
                                f"a call without a sink"
                            )
                        sink.feed(part_header, part_blobs)
                    finally:
                        if release is not None:
                            del part_blobs
                            release()
                    continue
                if kind == "failed":
                    raise entry[1]
                _, frame_type, resp_header, resp_blobs, wire, shm_span, _rel = (
                    entry
                )
                received += wire
                via_shm += shm_span
                if frame_type == FrameType.ERROR:
                    raise remote_error(resp_header)
                if frame_type != expect:
                    raise ProtocolError(
                        f"expected {expect.name}, got {frame_type.name} "
                        f"from {self.address}"
                    )
                return CallResult(
                    resp_header, resp_blobs, sent, received, partials, via_shm
                )
        finally:
            self._unregister(request_id)
            _drain_releases(waiter)

    # -- reader loop -----------------------------------------------------------

    def _read_loop(self) -> None:
        while True:
            with self._state_lock:
                if self._closed or self._dead is not None:
                    return
            try:
                frame = poll_frame(
                    self._rsock,
                    poll=READ_POLL_SECONDS,
                    frame_timeout=READER_FRAME_TIMEOUT,
                    codec=self._codec,
                    shm=self._ring,
                )
            except (NetError, OSError) as error:
                self._fail_all(
                    ConnectionLostError(
                        f"connection to {self.address} lost: {error}"
                    )
                )
                return
            if frame is None:
                continue
            try:
                self._dispatch(frame)
            except NetError as error:
                self._fail_all(
                    ConnectionLostError(
                        f"undecodable frame from {self.address}: {error}"
                    )
                )
                return

    def _dispatch(self, frame: Frame) -> None:
        frame_type = frame.frame_type
        if frame_type == FrameType.PARTIAL:
            header, blobs = codec.decode_message(frame.payload)
            with self._state_lock:
                waiter = self._waiters.get(frame.request_id)
            if waiter is None:
                # The caller already timed out: nobody will consume this
                # chunk, so hand its ring slot straight back.
                if frame.release is not None:
                    frame.release()
                return
            waiter.frames.put(
                (
                    "partial", header, blobs, frame.wire_bytes,
                    frame.shm_bytes, frame.release,
                )
            )
            return
        if frame_type in (FrameType.RESPONSE, FrameType.ERROR, FrameType.PONG):
            if frame_type == FrameType.PONG:
                header, blobs = {}, []
            else:
                header, blobs = codec.decode_message(frame.payload)
            with self._state_lock:
                waiter = self._waiters.pop(frame.request_id, None)
            # A missing waiter is a caller that already timed out; the
            # late response is dropped and the connection stays healthy.
            if waiter is None:
                if frame.release is not None:
                    frame.release()
                return
            waiter.frames.put(
                (
                    "final", frame_type, header, blobs, frame.wire_bytes,
                    frame.shm_bytes, frame.release,
                )
            )
            return
        raise ProtocolError(
            f"unexpected {frame_type.name} frame on a pipelined connection"
        )

    def _fail_all(self, error: ConnectionLostError) -> None:
        with self._state_lock:
            if self._dead is None and not self._closed:
                self._dead = error
            waiters = list(self._waiters.values())
            self._waiters.clear()
        for waiter in waiters:
            waiter.frames.put(("failed", error))

    # -- lifecycle -------------------------------------------------------------

    @property
    def closed(self) -> bool:
        with self._state_lock:
            return self._closed

    def close(self) -> None:
        """Close both socket handles and fail any outstanding requests."""
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        self._fail_all(
            ConnectionLostError(f"client to {self.address} was closed")
        )
        for sock in (self._sock, self._rsock):
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:  # pragma: no cover - close never owes us anything
                pass
        self._reader.join(timeout=2.0)
        if self._ring is not None:
            self._ring.close()
            self._ring = None

    def __enter__(self) -> "PipelinedConnection":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
