"""One TCP connection to a node server, plus the retry policy.

A :class:`NodeClient` owns a single socket: it handshakes on connect
(HELLO/HELLO_ACK with protocol version and node id), then exchanges
REQUEST/RESPONSE frames one call at a time.  Every public operation
takes an explicit deadline — there is no "no timeout" mode anywhere in
this tier (lint rule NET01 enforces the discipline statically).

:class:`RetryPolicy` describes exponential backoff with jitter for
*idempotent reads*; the decision of what is idempotent and the retry
loop itself live in :class:`~repro.net.pool.ConnectionPool`, which can
swap the broken connection a retry needs.
"""

from __future__ import annotations

import random
import socket
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.fields.derived import UnknownFieldError
from repro.fields.expressions import ExpressionError
from repro.net import codec
from repro.net.errors import (
    ConnectionLostError,
    NodeUnavailableError,
    ProtocolError,
    RemoteCallError,
)
from repro.net.frame import (
    Deadline,
    FrameType,
    HEADER,
    PROTOCOL_VERSION,
    recv_frame,
    send_frame,
)
from repro.obs import clock

#: Remote exception types rebuilt as their local classes, so the web
#: service's error mapping behaves identically on both transports.
_REMOTE_TYPES: Mapping[str, type[Exception]] = {
    "UnknownFieldError": UnknownFieldError,
    "ExpressionError": ExpressionError,
    "ValueError": ValueError,
    "KeyError": KeyError,
    "TypeError": TypeError,
}


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter for idempotent reads.

    ``delay(attempt)`` for attempt 0, 1, 2... is
    ``base * multiplier^attempt`` capped at ``max_delay``, widened by a
    uniform jitter of ``+-jitter`` (fractional) so a restarted node is
    not hit by every client in lockstep.
    """

    attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("a retry policy needs at least one attempt")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be a fraction in [0, 1]")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        raw = min(self.base_delay * self.multiplier**attempt, self.max_delay)
        return raw * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


@dataclass(frozen=True)
class CallResult:
    """A successful RPC: decoded message plus its wire-byte footprint."""

    header: dict
    blobs: list[bytes]
    bytes_sent: int
    bytes_received: int


class NodeClient:
    """One framed connection to a node server.

    Args:
        host: server host.
        port: server port.
        connect_deadline: budget for TCP connect plus the handshake.

    Raises:
        NodeUnavailableError: the TCP connection could not be opened.
        ProtocolError: the handshake failed.
    """

    def __init__(
        self, host: str, port: int, connect_deadline: Deadline
    ) -> None:
        self.address = f"{host}:{port}"
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=connect_deadline.remaining()
            )
        except OSError as error:
            raise NodeUnavailableError(
                self.address, attempts=1,
                message=f"connect to {self.address} failed: {error}",
            ) from error
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._next_request_id = 1
        self._closed = False
        self.node_id: int | None = None
        try:
            self._handshake(connect_deadline)
        except Exception:
            self.close()
            raise

    def _handshake(self, deadline: Deadline) -> None:
        payload = codec.encode_message({"protocol": PROTOCOL_VERSION})
        send_frame(self._sock, FrameType.HELLO, 0, payload, deadline)
        frame = recv_frame(self._sock, deadline)
        assert frame is not None
        frame_type, _, body = frame
        if frame_type != FrameType.HELLO_ACK:
            raise ProtocolError(
                f"expected HELLO_ACK, got {frame_type.name} from {self.address}"
            )
        header, _ = codec.decode_message(body)
        if header.get("protocol") != PROTOCOL_VERSION:
            raise ProtocolError(
                f"{self.address} speaks protocol {header.get('protocol')}, "
                f"this build speaks {PROTOCOL_VERSION}"
            )
        self.node_id = int(header["node_id"]) if "node_id" in header else None

    # -- calls -----------------------------------------------------------------

    def call(
        self,
        method: str,
        header: dict,
        blobs: Sequence[bytes],
        deadline: Deadline,
    ) -> CallResult:
        """One RPC round trip.

        Raises:
            DeadlineExceededError: budget spent before the response landed.
            ConnectionLostError: the socket broke mid-call.
            ProtocolError: the response violated the protocol; the
                connection must be discarded.
            RemoteCallError: the server answered with a typed error (or
                a rebuilt local exception class for the allowlisted
                types, e.g. ``UnknownFieldError``).
        """
        self._ensure_open()
        request_id = self._next_request_id
        self._next_request_id += 1
        payload = codec.encode_message({"method": method, **header}, blobs)
        sent = send_frame(
            self._sock, FrameType.REQUEST, request_id, payload, deadline
        )
        frame = recv_frame(self._sock, deadline)
        assert frame is not None
        frame_type, echoed_id, body = frame
        if echoed_id != request_id:
            raise ProtocolError(
                f"response id {echoed_id} does not match request {request_id}"
            )
        received = HEADER.size + len(body)
        response_header, response_blobs = codec.decode_message(body)
        if frame_type == FrameType.ERROR:
            raise self._remote_error(response_header)
        if frame_type != FrameType.RESPONSE:
            raise ProtocolError(
                f"expected RESPONSE, got {frame_type.name} from {self.address}"
            )
        return CallResult(response_header, response_blobs, sent, received)

    def ping(self, deadline: Deadline) -> float:
        """Health check; returns the round-trip wall seconds.

        Raises the same family of errors as :meth:`call`.
        """
        self._ensure_open()
        start = clock.now()
        send_frame(self._sock, FrameType.PING, 0, b"", deadline)
        frame = recv_frame(self._sock, deadline)
        assert frame is not None
        frame_type, _, _ = frame
        if frame_type != FrameType.PONG:
            raise ProtocolError(f"expected PONG, got {frame_type.name}")
        return clock.now() - start

    @staticmethod
    def _remote_error(header: dict) -> Exception:
        record = header.get("error")
        if not isinstance(record, dict):
            return ProtocolError("ERROR frame without an error record")
        remote_type = str(record.get("type", "Exception"))
        message = str(record.get("message", ""))
        local = _REMOTE_TYPES.get(remote_type)
        if local is not None:
            return local(message)
        return RemoteCallError(
            remote_type, str(record.get("code", "remote_error")), message
        )

    # -- lifecycle -------------------------------------------------------------

    def _ensure_open(self) -> None:
        if self._closed:
            raise ConnectionLostError(f"client to {self.address} is closed")

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close the socket (idempotent)."""
        if not self._closed:
            self._closed = True
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close never owes us anything
                pass

    def __enter__(self) -> "NodeClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
