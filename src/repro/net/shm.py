"""Shared-memory payload ring for same-host peers.

When a client and a node server share a host, large streamed payloads
do not need to squeeze through the loopback TCP stack at all: the
client creates one :class:`ShmRing` per connection — a
``multiprocessing.shared_memory`` segment holding a small ack table
plus a few payload slots — and advertises it in the HELLO handshake
together with a :func:`host_token`.  A server on the same host attaches
an :class:`ShmWriter` to the ring and, for each PARTIAL frame whose
payload fits a free slot, copies the payload into the slot and sends
only a 20-byte *locator* over TCP (``FLAG_SHM`` in the frame flags);
the receiver maps the locator back to a zero-copy view of the slot.
Anything else — host mismatch, attach failure, no free slot, payload
too big — transparently falls back to the inline TCP path, so shared
memory is purely an optimisation and never a correctness dependency.

Slot reclamation is lock-free through a generation/ack protocol:

* the writer keeps a private generation counter per slot and bumps it
  when it claims the slot; the locator carries ``(slot, gen, length)``;
* the reader, once it has fully consumed a payload, writes ``gen`` into
  the slot's ack word *inside the segment*;
* the writer treats a slot as free exactly when its ack word equals the
  slot's current generation.

A torn ack write (the word is not written atomically on every
platform) can only ever produce a value *unequal* to the new
generation, so the writer may see a stale "busy" slot — and fall back
to TCP for one frame — but can never reuse a slot the reader still
reads.  The TCP locator frame itself is the happens-before edge for the
payload bytes: the writer finishes the slot copy before sending the
locator, and both sides cross a syscall in between.

Lifecycle (RES01): the *client* owns the segment — it creates it,
advertises it, and ``close()`` both unmaps and unlinks it when the
connection goes away.  The *server* only attaches; its ``close()``
unmaps without unlinking.  Unlinking while the server still holds a
mapping is safe (POSIX keeps the mapping alive), so neither side ever
waits on the other to tear down.
"""

from __future__ import annotations

import socket
import struct
import uuid
from multiprocessing import resource_tracker, shared_memory
from typing import TYPE_CHECKING

import numpy as np

from repro.net.errors import FrameError

if TYPE_CHECKING:
    from repro.net.frame import Buffer

#: Wire layout of a payload locator: slot index, slot generation,
#: payload byte length.
LOCATOR = struct.Struct("<IQQ")

#: Default slots per ring.  Streams release each slot as soon as the
#: chunk is merged, so a handful of slots keeps the writer ahead of the
#: reader without reserving much memory; enough of them that a 16 MiB
#: stream (four 4 MiB chunks) never stalls on slot reclamation even
#: when reader and writer threads interleave badly on few cores.
DEFAULT_SLOTS = 8

#: Default slot capacity: one stream chunk's packed columns (256Ki
#: points x 16 bytes) plus generous headroom for the message header and
#: blob length prefixes.
DEFAULT_SLOT_BYTES = 256 * 1024 * 16 + 64 * 1024

#: Bytes per ack word in the segment's ack table.
_ACK_BYTES = 8

#: Segment names created by rings in *this* process.  When a writer in
#: the same process attaches one (in-thread test clusters), it must not
#: untrack it: the tracker deduplicates the double registration, so a
#: second unregister would make the owner's unlink complain.
_OWNED_NAMES: set[str] = set()


def host_token() -> str:
    """An identity string two endpoints compare to detect a shared host.

    Hostname alone collides across containers; the MAC-derived node id
    alone collides across network namespaces.  The pair is a practical
    same-host witness, and an attach that fails anyway (say, separate
    ``/dev/shm`` mounts behind identical tokens) is reported to the
    client as a declined grant, falling back to TCP.
    """
    return f"{socket.gethostname()}:{uuid.getnode():012x}"


def _untrack(name: str) -> None:
    """Detach a segment from this process's resource tracker.

    ``SharedMemory(name=...)`` registers the segment with the resource
    tracker even when merely *attaching* (bpo-39959 on this Python), so
    an attaching process's exit would unlink a segment it never owned.
    """
    if name in _OWNED_NAMES:
        return
    try:
        resource_tracker.unregister(f"/{name.lstrip('/')}", "shared_memory")
    except (KeyError, ValueError, OSError):  # pragma: no cover - platform
        pass  # tracker registries differ across platforms/Pythons


class ShmRing:
    """The reader/owner side of a payload ring (one per connection).

    Args:
        slots: payload slots in the ring.
        slot_bytes: capacity of each slot.

    Raises:
        ValueError: non-positive geometry.
        OSError: the segment could not be created (no shared memory on
            this platform / mount) — callers treat this as "no shm".
    """

    def __init__(
        self,
        slots: int = DEFAULT_SLOTS,
        slot_bytes: int = DEFAULT_SLOT_BYTES,
    ) -> None:
        if slots < 1 or slot_bytes < 1:
            raise ValueError("ring geometry must be positive")
        self.slots = slots
        self.slot_bytes = slot_bytes
        self._segment = shared_memory.SharedMemory(
            create=True, size=slots * _ACK_BYTES + slots * slot_bytes
        )
        self._acks = np.frombuffer(
            self._segment.buf, dtype=np.uint64, count=slots
        )
        self._acks[:] = 0
        _OWNED_NAMES.add(self._segment.name)
        self._closed = False
        #: Payload bytes served out of the ring (metrics, not the wire).
        self.bytes_via_ring = 0
        self.frames_via_ring = 0

    @property
    def name(self) -> str:
        """The segment name the HELLO advertisement carries."""
        return self._segment.name

    def grant(self) -> dict:
        """The ring's wire description for the HELLO ``"shm"`` record."""
        return {
            "host": host_token(),
            "name": self.name,
            "slots": self.slots,
            "slot_bytes": self.slot_bytes,
        }

    def view(self, slot: int, gen: int, length: int) -> "Buffer":
        """A zero-copy view of a located payload.

        Raises:
            FrameError: locator outside the ring's geometry.
        """
        if self._closed:
            raise FrameError("shared-memory ring is closed")
        if not 0 <= slot < self.slots or not 0 <= length <= self.slot_bytes:
            raise FrameError(
                f"shm locator (slot {slot}, {length} bytes) outside ring "
                f"of {self.slots} x {self.slot_bytes} bytes"
            )
        start = self.slots * _ACK_BYTES + slot * self.slot_bytes
        self.bytes_via_ring += length
        self.frames_via_ring += 1
        return self._segment.buf[start : start + length]

    def release(self, slot: int, gen: int) -> None:
        """Hand a consumed slot back to the writer (ack = generation)."""
        if self._closed or not 0 <= slot < self.slots:
            return
        self._acks[slot] = np.uint64(gen & 0xFFFFFFFFFFFFFFFF)

    def close(self) -> None:
        """Unmap and unlink the segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        # Drop the numpy view first: SharedMemory.close() refuses to
        # unmap while exported buffer views are alive.
        self._acks = np.empty(0, dtype=np.uint64)
        try:
            self._segment.close()
        except (OSError, BufferError):  # pragma: no cover - straggling view
            pass  # the mapping falls with the last view at GC
        try:
            self._segment.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover - races
            pass
        _OWNED_NAMES.discard(self._segment.name)

    def __enter__(self) -> "ShmRing":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class ShmWriter:
    """The writer side of a peer's ring (the node server's half).

    Attaches to a client-owned segment by name.  ``claim`` hands out a
    writable slot view or ``None`` when every slot is still unacked —
    the caller then ships that one frame inline over TCP.

    Raises:
        ValueError: geometry disagrees with the advertised segment size.
        OSError / FileNotFoundError: the segment cannot be attached
            (not actually the same host) — callers decline the grant.
    """

    def __init__(self, name: str, slots: int, slot_bytes: int) -> None:
        if slots < 1 or slot_bytes < 1:
            raise ValueError("ring geometry must be positive")
        self._segment = shared_memory.SharedMemory(name=name)
        _untrack(name)
        needed = slots * _ACK_BYTES + slots * slot_bytes
        if self._segment.size < needed:
            self._segment.close()
            raise ValueError(
                f"segment {name!r} holds {self._segment.size} bytes, "
                f"ring geometry needs {needed}"
            )
        self.slots = slots
        self.slot_bytes = slot_bytes
        self._acks = np.frombuffer(
            self._segment.buf, dtype=np.uint64, count=slots
        )
        self._gens = [0] * slots
        self._closed = False

    def claim(self, nbytes: int) -> "tuple[int, int, Buffer] | None":
        """A free slot as ``(slot, gen, writable view)``, else ``None``.

        ``None`` means the payload does not fit a slot or the reader
        has not released one yet; the caller falls back to inline TCP.
        """
        if self._closed or nbytes > self.slot_bytes:
            return None
        for slot in range(self.slots):
            if int(self._acks[slot]) == self._gens[slot]:
                gen = (self._gens[slot] + 1) & 0xFFFFFFFFFFFFFFFF
                self._gens[slot] = gen
                start = self.slots * _ACK_BYTES + slot * self.slot_bytes
                return slot, gen, self._segment.buf[start : start + nbytes]
        return None

    def close(self) -> None:
        """Unmap the segment without unlinking it (the reader owns it)."""
        if self._closed:
            return
        self._closed = True
        self._acks = np.empty(0, dtype=np.uint64)
        try:
            self._segment.close()
        except (OSError, BufferError):  # pragma: no cover - straggling view
            pass

    def __enter__(self) -> "ShmWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
