"""Negotiated per-frame compression for the wire data plane.

The 20-byte frame header carries a 16-bit flags field whose low byte is
the *codec id* of the payload.  Which codecs a connection may use is
agreed during the HELLO handshake — each side advertises the codec
names it supports, the server picks the first common preference, and
both ends build a :class:`FrameCodec` from the outcome (the primary
pick plus the full common set, so the per-frame probe may choose any
*shared* codec frame by frame).  A peer that advertises nothing (or an
empty list) simply gets uncompressed frames; the protocol never
*requires* compression.

Codec id table (the flags byte):

===  =============  ====================================================
id   name           payload encoding
===  =============  ====================================================
0    ``none``       raw bytes
1    ``zlib``       zlib stream (level from the config, default 1)
2    ``shuffle-zlib``  blocked byte-shuffle of 8-byte lanes, then zlib
3    ``delta-zlib``  per-blob u64 wraparound delta + byte-shuffle
                     inside a tiny length container, then zlib
===  =============  ====================================================

The two pre-transforms exploit the shape of simulation columns.
Pointset payloads are dominated by little-endian ``uint64`` Morton keys
and ``float64`` values; byte-shuffle groups the k-th byte of every word
together, turning slowly-varying high-order bytes into long runs that
zlib's LZ77 window actually catches.  Morton keys are additionally
*sorted*, so their word-wise wraparound deltas are tiny integers whose
shuffled high lanes are almost all zero — that is the ``delta-zlib``
transform, applied per column blob (the message container records blob
lengths so the inverse is exact).

Compression is applied per frame by :func:`repro.net.frame.send_frame`:
payloads below the configured threshold ship raw (small control frames
are latency-, not bandwidth-bound), a ~4 KiB probe picks the candidate
that shrinks the sample best (or none), and a compressed payload that
comes out *larger* than the input is discarded in favour of the raw
parts, so the flags field always describes what is actually on the
wire.  The bytes the ledger's ``wire_bytes`` meter sees are therefore
the compressed footprint, and the achieved ``raw/wire`` ratio is
reported through ``on_ratio`` into the ``net_compression_ratio``
histogram.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.net.errors import FrameError

#: Codec ids as they appear in the frame header's flags byte.
CODEC_NONE = 0
CODEC_ZLIB = 1
CODEC_SHUFFLE_ZLIB = 2
CODEC_DELTA_ZLIB = 3

#: Wire codec name -> flags byte value.
CODEC_IDS = {
    "none": CODEC_NONE,
    "zlib": CODEC_ZLIB,
    "shuffle-zlib": CODEC_SHUFFLE_ZLIB,
    "delta-zlib": CODEC_DELTA_ZLIB,
}
#: Flags byte value -> wire codec name.
CODEC_NAMES = {value: name for name, value in CODEC_IDS.items()}

#: Ceiling on a decompressed payload, mirrored from the frame layer's
#: raw-payload ceiling (kept local to avoid a runtime import cycle).
MAX_DECOMPRESSED = 256 * 1024 * 1024

#: Bytes sampled from the largest payload part to decide whether the
#: frame is worth compressing at all, and with which candidate.
PROBE_BYTES = 4096
#: The sample must shrink below this fraction of its size, or the whole
#: frame ships raw without paying for a full compression pass.
PROBE_KEEP = 0.9

#: A blob must be 8-aligned and at least this long for the u64 delta
#: transform; shorter or ragged blobs pass through the delta container
#: untransformed.
_DELTA_MIN_BYTES = 64
#: Sanity cap on the blob count a delta container may declare.
_DELTA_MAX_PARTS = 1 << 20

_U32 = struct.Struct("<I")


@dataclass(frozen=True)
class CompressionConfig:
    """What one endpoint supports and when it bothers compressing.

    Args:
        codecs: codec names this endpoint advertises, in preference
            order (the first name both peers share becomes the
            connection's *primary* codec; every shared name remains
            eligible for the per-frame probe).  ``()`` disables
            compression entirely.
        level: zlib effort; 1 favours throughput, which is the right
            trade for LAN-bound pointset columns.
        min_payload_bytes: frames smaller than this are never
            compressed — control messages are latency-bound and zlib
            headers would often *grow* them.
    """

    codecs: tuple[str, ...] = ("zlib", "shuffle-zlib", "delta-zlib")
    level: int = 1
    min_payload_bytes: int = 4096

    def __post_init__(self) -> None:
        for name in self.codecs:
            if name not in CODEC_IDS or name == "none":
                raise ValueError(f"unknown wire codec {name!r}")
        if not 0 <= self.level <= 9:
            raise ValueError(f"zlib level must be in [0, 9], got {self.level}")
        if self.min_payload_bytes < 0:
            raise ValueError("min_payload_bytes must be non-negative")


#: The stock configuration: zlib primary (wire-compatible with older
#: peers) plus the shuffle/delta pre-transforms for peers that know them.
DEFAULT_COMPRESSION = CompressionConfig()

#: A configuration that advertises nothing and never compresses.
NO_COMPRESSION = CompressionConfig(codecs=())


def negotiate(local: Sequence[str], remote: Sequence[str]) -> str:
    """The connection's primary codec: first local preference the
    remote side also advertised, or ``"none"`` when the sets are
    disjoint (including a peer that advertised no codecs at all)."""
    remote_set = set(remote)
    for name in local:
        if name in remote_set:
            return name
    return "none"


def shared_codecs(
    local: Sequence[str], remote: Sequence[str]
) -> tuple[str, ...]:
    """Every codec both peers advertised, in local preference order."""
    remote_set = set(remote)
    return tuple(name for name in local if name in remote_set)


#: Byte-shuffle block size.  Lanes are grouped *within* fixed blocks —
#: Blosc-style — so the transpose's working set stays cache-resident;
#: a whole-payload transpose costs over twice as much in strided
#: traffic and the per-block runs already exceed deflate's 32 KiB
#: window.  Part of the codec id 2/3 wire format: both peers must
#: agree on it, so changing it means a new codec id.
_SHUFFLE_BLOCK = 1 << 16


def _shuffle_lanes(flat: np.ndarray) -> np.ndarray:
    """Byte-shuffle: byte k of every 8-byte word becomes contiguous.

    Full :data:`_SHUFFLE_BLOCK` blocks are transposed lane-major per
    block; the remaining 8-aligned words are transposed as one final
    short block, and a ragged tail (there is none on pointset payloads,
    whose columns are all 8-byte words) rides along untouched.
    Invertible from the length alone.
    """
    nblocks, head = divmod(len(flat), _SHUFFLE_BLOCK)
    blocked = nblocks * _SHUFFLE_BLOCK
    head = blocked + (head // 8) * 8
    if head == 0:
        return flat
    out = np.empty_like(flat)
    if nblocks:
        out[:blocked] = (
            flat[:blocked]
            .reshape(nblocks, _SHUFFLE_BLOCK // 8, 8)
            .transpose(0, 2, 1)
            .reshape(blocked)
        )
    out[blocked:head] = flat[blocked:head].reshape(-1, 8).T.ravel()
    out[head:] = flat[head:]
    return out


def _unshuffle_lanes(flat: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_shuffle_lanes`."""
    nblocks, head = divmod(len(flat), _SHUFFLE_BLOCK)
    blocked = nblocks * _SHUFFLE_BLOCK
    head = blocked + (head // 8) * 8
    if head == 0:
        return flat
    out = np.empty_like(flat)
    if nblocks:
        out[:blocked] = (
            flat[:blocked]
            .reshape(nblocks, 8, _SHUFFLE_BLOCK // 8)
            .transpose(0, 2, 1)
            .reshape(blocked)
        )
    out[blocked:head] = flat[blocked:head].reshape(8, -1).T.ravel()
    out[head:] = flat[head:]
    return out


def _delta_eligible(nbytes: int) -> bool:
    return nbytes >= _DELTA_MIN_BYTES and nbytes % 8 == 0


def _delta_forward_span(src: np.ndarray) -> np.ndarray:
    """u64 wraparound delta of one blob, byte-shuffled."""
    words = np.ascontiguousarray(src).view(np.uint64)
    deltas = np.empty_like(words)
    deltas[0] = words[0]
    np.subtract(words[1:], words[:-1], out=deltas[1:])
    return _shuffle_lanes(deltas.view(np.uint8))


def _delta_inverse_span(src: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_delta_forward_span`."""
    deltas = np.ascontiguousarray(_unshuffle_lanes(src)).view(np.uint64)
    return np.cumsum(deltas, dtype=np.uint64).view(np.uint8)


def _as_flat_u8(part: "bytes | bytearray | memoryview") -> np.ndarray:
    source = memoryview(part)
    if source.itemsize != 1:
        source = source.cast("B")
    return np.frombuffer(source, dtype=np.uint8)


def _stack_parts(
    parts: "Sequence[bytes | bytearray | memoryview]", total: int
) -> np.ndarray:
    """Gather payload parts into one contiguous scratch array.

    This is the one deliberate copy a pre-transform codec pays; it is a
    straight memcpy and the transform needs contiguous words anyway.
    """
    stacked = np.empty(total, dtype=np.uint8)
    offset = 0
    for part in parts:
        span = len(part)
        if span:
            stacked[offset : offset + span] = _as_flat_u8(part)
        offset += span
    return stacked


def _delta_forward(
    parts: "Sequence[bytes | bytearray | memoryview]", total: int
) -> np.ndarray:
    """Container + per-blob delta/shuffle transform of a whole payload."""
    meta = np.empty(1 + len(parts), dtype=np.uint32)
    meta[0] = len(parts)
    scratch = np.empty(meta.nbytes + total, dtype=np.uint8)
    offset = meta.nbytes
    for index, part in enumerate(parts):
        span = len(part)
        meta[1 + index] = span
        if not span:
            continue
        src = _as_flat_u8(part)
        if _delta_eligible(span):
            scratch[offset : offset + span] = _delta_forward_span(src)
        else:
            scratch[offset : offset + span] = src
        offset += span
    scratch[: meta.nbytes] = meta.view(np.uint8)
    return scratch


def _delta_inverse(container: np.ndarray) -> np.ndarray:
    """Undo :func:`_delta_forward`; returns the original flat payload.

    Raises:
        FrameError: malformed container (bad counts or lengths).
    """
    if len(container) < 4:
        raise FrameError("delta-compressed frame shorter than its header")
    nparts = int(_U32.unpack_from(container)[0])
    if not 0 <= nparts <= _DELTA_MAX_PARTS:
        raise FrameError(f"delta container declares {nparts} blobs")
    meta_bytes = 4 * (1 + nparts)
    if len(container) < meta_bytes:
        raise FrameError("delta container truncated in its length table")
    lens = (
        np.ascontiguousarray(container[4:meta_bytes])
        .view(np.uint32)
        .astype(np.int64)
    )
    total = int(lens.sum())
    if meta_bytes + total != len(container):
        raise FrameError(
            f"delta container declares {total} payload bytes but "
            f"carries {len(container) - meta_bytes}"
        )
    out = np.empty(total, dtype=np.uint8)
    offset_in = meta_bytes
    offset_out = 0
    for span in lens.tolist():
        src = container[offset_in : offset_in + span]
        if _delta_eligible(span):
            out[offset_out : offset_out + span] = _delta_inverse_span(src)
        else:
            out[offset_out : offset_out + span] = src
        offset_in += span
        offset_out += span
    return out


class FrameCodec:
    """One connection's negotiated compressor/decompressor.

    Built after the handshake and handed to every
    :func:`~repro.net.frame.send_frame` / ``recv_frame`` on that
    connection.  ``codec`` is the primary negotiated name; ``allowed``
    is the full set both peers share, from which the per-frame probe
    may pick whichever candidate shrinks the sample best.  Thread-safe
    by construction: encoding and decoding allocate per-call state, and
    the counters are only advanced under the GIL with plain integer
    adds.
    """

    def __init__(
        self,
        config: CompressionConfig,
        codec: str = "none",
        on_ratio: Callable[[float], None] | None = None,
        allowed: Sequence[str] | None = None,
    ) -> None:
        if codec != "none" and codec not in config.codecs:
            raise ValueError(
                f"negotiated codec {codec!r} is not among the supported "
                f"codecs {config.codecs!r}"
            )
        if allowed is None:
            allowed = (codec,) if codec != "none" else ()
        for name in allowed:
            if name not in config.codecs:
                raise ValueError(
                    f"allowed codec {name!r} is not among the supported "
                    f"codecs {config.codecs!r}"
                )
        self.config = config
        self.codec = codec
        self.allowed = tuple(allowed)
        self.on_ratio = on_ratio
        self.frames_compressed = 0
        self.raw_bytes = 0
        self.wire_bytes = 0

    def encode(
        self, parts: "Sequence[bytes | bytearray | memoryview]", total: int
    ) -> "tuple[int, Sequence[bytes | bytearray | memoryview], int]":
        """Maybe-compress a payload given as parts.

        Returns ``(codec_id, wire_parts, wire_length)``; the id is what
        the sender puts in the frame flags.  Payloads under the
        threshold, or that no allowed candidate manages to shrink, ship
        raw with id 0.
        """
        if self.codec == "none" or total < self.config.min_payload_bytes:
            return CODEC_NONE, parts, total
        winner = self._probe(parts)
        if winner is None:
            return CODEC_NONE, parts, total
        squeezed = self._squeeze(winner, parts, total)
        if len(squeezed) >= total:
            return CODEC_NONE, parts, total
        self.frames_compressed += 1
        self.raw_bytes += total
        self.wire_bytes += len(squeezed)
        if self.on_ratio is not None and len(squeezed):
            self.on_ratio(total / len(squeezed))
        return CODEC_IDS[winner], [squeezed], len(squeezed)

    def _squeeze(
        self,
        name: str,
        parts: "Sequence[bytes | bytearray | memoryview]",
        total: int,
    ) -> "bytes | bytearray":
        """The full encoding pass for one codec candidate."""
        if name == "zlib":
            compressor = zlib.compressobj(self.config.level)
            squeezed = bytearray()
            for part in parts:
                squeezed += compressor.compress(part)
            squeezed += compressor.flush()
            return squeezed
        if name == "shuffle-zlib":
            lanes = _shuffle_lanes(_stack_parts(parts, total))
            return zlib.compress(lanes, self.config.level)
        if name == "delta-zlib":
            return zlib.compress(
                _delta_forward(parts, total), self.config.level
            )
        raise FrameError(f"unknown wire codec {name!r}")  # pragma: no cover

    def _probe(
        self, parts: "Sequence[bytes | bytearray | memoryview]"
    ) -> "str | None":
        """The allowed candidate that best shrinks a cheap sample.

        Compressing incompressible data (random-looking float columns,
        already-compressed blobs) costs a full zlib pass only to ship
        the raw parts anyway.  Each candidate's pre-transform is applied
        to a ``PROBE_BYTES`` sample of the *largest* part — the data
        blob dominates every large frame — and a candidate only stays
        in the running if the transformed sample compresses below
        ``PROBE_KEEP`` of its size; the best sample ratio wins the full
        pass.  Tens of microseconds instead of a wasted full encode.
        """
        largest = max(parts, key=len, default=b"")
        view = memoryview(largest)
        if view.itemsize != 1:
            view = view.cast("B")
        sample = bytes(view[:PROBE_BYTES])
        if not sample:
            return None
        flat = np.frombuffer(sample, dtype=np.uint8)
        best: str | None = None
        best_size = PROBE_KEEP * len(sample)
        for name in self.allowed:
            if name == "shuffle-zlib":
                trial: "bytes | np.ndarray" = _shuffle_lanes(flat)
            elif name == "delta-zlib" and _delta_eligible(len(sample)):
                trial = _delta_forward_span(flat)
            elif name == "delta-zlib":
                trial = flat
            else:
                trial = sample
            size = len(zlib.compress(trial, 1))
            if size < best_size:
                best, best_size = name, size
        return best

    def decode(
        self, codec_id: int, payload: "bytes | memoryview"
    ) -> "bytes | memoryview":
        """Undo a frame's codec according to its flags byte.

        Raises:
            FrameError: unknown codec id, a codec this endpoint never
                advertised, corrupt compressed bytes, or a malformed
                delta container.
        """
        if codec_id == CODEC_NONE:
            return payload
        name = CODEC_NAMES.get(codec_id)
        if name is None:
            raise FrameError(f"unknown frame codec id {codec_id}")
        if name not in self.config.codecs:
            raise FrameError(
                f"peer sent a {name}-compressed frame this endpoint "
                f"never advertised"
            )
        try:
            plain = zlib.decompress(
                payload, bufsize=max(len(payload), 1 << 16)
            )
        except zlib.error as error:
            raise FrameError(
                f"corrupt {name}-compressed frame payload: {error}"
            ) from None
        if len(plain) > MAX_DECOMPRESSED:
            raise FrameError(
                f"frame decompressed to {len(plain)} bytes, over the "
                f"{MAX_DECOMPRESSED}-byte ceiling"
            )
        raw: "bytes | memoryview"
        if name == "shuffle-zlib":
            raw = memoryview(
                _unshuffle_lanes(np.frombuffer(plain, dtype=np.uint8))
            ).cast("B")
        elif name == "delta-zlib":
            raw = memoryview(
                _delta_inverse(np.frombuffer(plain, dtype=np.uint8))
            ).cast("B")
        else:
            raw = plain
        self.raw_bytes += len(raw)
        self.wire_bytes += len(payload)
        if self.on_ratio is not None and len(payload):
            self.on_ratio(len(raw) / len(payload))
        return raw
