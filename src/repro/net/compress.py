"""Negotiated per-frame compression for the wire data plane.

The 20-byte frame header carries a 16-bit flags field whose low byte is
the *codec id* of the payload: ``0`` means raw bytes, ``1`` means zlib.
Which codecs a connection may use is agreed during the HELLO handshake —
each side advertises the codec names it supports, the server picks the
first common preference, and both ends build a :class:`FrameCodec` from
the outcome.  A peer that advertises nothing (or an empty list) simply
gets uncompressed frames; the protocol never *requires* compression.

Compression is applied per frame by :func:`repro.net.frame.send_frame`:
payloads below the configured threshold ship raw (small control frames
are latency-, not bandwidth-bound), and a compressed payload that comes
out *larger* than the input is discarded in favour of the raw parts, so
the flags field always describes what is actually on the wire.  The
bytes the ledger's ``wire_bytes`` meter sees are therefore the
compressed footprint, and the achieved ``raw/wire`` ratio is reported
through ``on_ratio`` into the ``net_compression_ratio`` histogram.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.net.errors import FrameError

#: Codec ids as they appear in the frame header's flags byte.
CODEC_NONE = 0
CODEC_ZLIB = 1

#: Wire codec name -> flags byte value.
CODEC_IDS = {"none": CODEC_NONE, "zlib": CODEC_ZLIB}
#: Flags byte value -> wire codec name.
CODEC_NAMES = {value: name for name, value in CODEC_IDS.items()}

#: Ceiling on a decompressed payload, mirrored from the frame layer's
#: raw-payload ceiling (kept local to avoid a runtime import cycle).
MAX_DECOMPRESSED = 256 * 1024 * 1024

#: Bytes sampled from the largest payload part to decide whether the
#: frame is worth compressing at all.
PROBE_BYTES = 4096
#: The sample must shrink below this fraction of its size, or the whole
#: frame ships raw without paying for a full compression pass.
PROBE_KEEP = 0.9


@dataclass(frozen=True)
class CompressionConfig:
    """What one endpoint supports and when it bothers compressing.

    Args:
        codecs: codec names this endpoint advertises, in preference
            order.  ``()`` disables compression entirely (the handshake
            then advertises nothing and every frame ships raw).
        level: zlib effort; 1 favours throughput, which is the right
            trade for LAN-bound pointset columns.
        min_payload_bytes: frames smaller than this are never
            compressed — control messages are latency-bound and zlib
            headers would often *grow* them.
    """

    codecs: tuple[str, ...] = ("zlib",)
    level: int = 1
    min_payload_bytes: int = 4096

    def __post_init__(self) -> None:
        for name in self.codecs:
            if name not in CODEC_IDS or name == "none":
                raise ValueError(f"unknown wire codec {name!r}")
        if not 0 <= self.level <= 9:
            raise ValueError(f"zlib level must be in [0, 9], got {self.level}")
        if self.min_payload_bytes < 0:
            raise ValueError("min_payload_bytes must be non-negative")


#: The stock configuration: zlib at a throughput-friendly level.
DEFAULT_COMPRESSION = CompressionConfig()

#: A configuration that advertises nothing and never compresses.
NO_COMPRESSION = CompressionConfig(codecs=())


def negotiate(local: Sequence[str], remote: Sequence[str]) -> str:
    """The codec a connection will use: first local preference the
    remote side also advertised, or ``"none"`` when the sets are
    disjoint (including a peer that advertised no codecs at all)."""
    remote_set = set(remote)
    for name in local:
        if name in remote_set:
            return name
    return "none"


class FrameCodec:
    """One connection's negotiated compressor/decompressor.

    Built after the handshake and handed to every
    :func:`~repro.net.frame.send_frame` / ``recv_frame`` on that
    connection.  Thread-safe by construction: encoding and decoding
    allocate per-call state, and the counters are only advanced under
    the GIL with plain integer adds.
    """

    def __init__(
        self,
        config: CompressionConfig,
        codec: str = "none",
        on_ratio: Callable[[float], None] | None = None,
    ) -> None:
        if codec != "none" and codec not in config.codecs:
            raise ValueError(
                f"negotiated codec {codec!r} is not among the supported "
                f"codecs {config.codecs!r}"
            )
        self.config = config
        self.codec = codec
        self.on_ratio = on_ratio
        self.frames_compressed = 0
        self.raw_bytes = 0
        self.wire_bytes = 0

    def encode(
        self, parts: "Sequence[bytes | bytearray | memoryview]", total: int
    ) -> "tuple[int, Sequence[bytes | bytearray | memoryview], int]":
        """Maybe-compress a payload given as parts.

        Returns ``(codec_id, wire_parts, wire_length)``; the id is what
        the sender puts in the frame flags.  Payloads under the
        threshold, or that zlib fails to shrink, ship raw with id 0.
        """
        if self.codec == "none" or total < self.config.min_payload_bytes:
            return CODEC_NONE, parts, total
        if not self._probe(parts):
            return CODEC_NONE, parts, total
        compressor = zlib.compressobj(self.config.level)
        squeezed = bytearray()
        for part in parts:
            squeezed += compressor.compress(part)
        squeezed += compressor.flush()
        if len(squeezed) >= total:
            return CODEC_NONE, parts, total
        self.frames_compressed += 1
        self.raw_bytes += total
        self.wire_bytes += len(squeezed)
        if self.on_ratio is not None and squeezed:
            self.on_ratio(total / len(squeezed))
        return CODEC_IDS[self.codec], [squeezed], len(squeezed)

    @staticmethod
    def _probe(parts: "Sequence[bytes | bytearray | memoryview]") -> bool:
        """Whether a cheap sample suggests the payload will shrink.

        Compressing incompressible data (random-looking float columns,
        already-compressed blobs) costs a full zlib pass only to ship
        the raw parts anyway.  Sampling ``PROBE_BYTES`` from the
        *largest* part — the data blob dominates every large frame —
        catches those payloads for tens of microseconds instead.
        """
        largest = max(parts, key=len, default=b"")
        view = memoryview(largest)
        if view.itemsize != 1:
            view = view.cast("B")
        sample = bytes(view[:PROBE_BYTES])
        if not sample:
            return False
        return len(zlib.compress(sample, 1)) < PROBE_KEEP * len(sample)

    def decode(
        self, codec_id: int, payload: "bytes | memoryview"
    ) -> "bytes | memoryview":
        """Undo a frame's codec according to its flags byte.

        Raises:
            FrameError: unknown codec id, a codec this endpoint never
                advertised, or corrupt compressed bytes.
        """
        if codec_id == CODEC_NONE:
            return payload
        name = CODEC_NAMES.get(codec_id)
        if name is None:
            raise FrameError(f"unknown frame codec id {codec_id}")
        if name not in self.config.codecs:
            raise FrameError(
                f"peer sent a {name}-compressed frame this endpoint "
                f"never advertised"
            )
        try:
            raw = zlib.decompress(payload, bufsize=max(len(payload), 1 << 16))
        except zlib.error as error:
            raise FrameError(
                f"corrupt {name}-compressed frame payload: {error}"
            ) from None
        if len(raw) > MAX_DECOMPRESSED:
            raise FrameError(
                f"frame decompressed to {len(raw)} bytes, over the "
                f"{MAX_DECOMPRESSED}-byte ceiling"
            )
        self.raw_bytes += len(raw)
        self.wire_bytes += len(payload)
        if self.on_ratio is not None and payload:
            self.on_ratio(len(raw) / len(payload))
        return raw
