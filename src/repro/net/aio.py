"""Asyncio front door: the event-loop request tier.

The threaded door (:mod:`repro.net.http`) spends one OS thread per
connection, so concurrent-client capacity caps at thread-pool scale and
overload simply piles threads up.  This module rebuilds the request
tier on one ``asyncio`` event loop:

* **zero threads per idle connection** — thousands of keep-alive
  clients cost one file descriptor each, parsed by a small HTTP/1.1
  reader with explicit deadlines on every awaited socket operation;
* **admission control** at the door — per-tenant token buckets and
  queue-depth / projected-wait backpressure from
  :class:`~repro.cluster.admission.AdmissionController`, with typed
  ``429``/``503`` shed responses carrying ``Retry-After``;
* a **prioritized request queue** — light introspection traffic
  (``ListFields``, ``GetStats``…) overtakes heavy query traffic, so
  dashboards stay live during overload;
* a **bounded bridge** into the existing threaded tier — admitted
  requests run ``WebService.handle`` on a fixed-size executor
  (``max_inflight`` threads doubling as the dispatch semaphore), so
  mediator and node-side semantics stay byte-identical to the threaded
  door and the in-process path: the JSON body answered for a request
  is exactly ``json.dumps(service.handle(request))`` on all three.

The split keeps each tier doing what it is good at: the event loop
multiplexes sockets and sheds load; the mediator's scatter pool and the
TCP transport below it remain threaded, deadline-bounded code that is
already proven correct.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.cluster.admission import AdmissionController, ShedError, Ticket
from repro.cluster.webservice import WebService
from repro.net.http import MAX_BODY_BYTES
from repro.obs import clock

#: Longest a connection may sit idle between requests before the door
#: closes it; bounds the fd cost of abandoned keep-alive clients.
IDLE_TIMEOUT_S = 30.0

#: Budget for any single socket read/write once a request has started
#: arriving; a peer that stalls mid-request is cut off, not waited on.
IO_TIMEOUT_S = 10.0

#: End-to-end budget for one admitted request (queue wait + dispatch).
REQUEST_TIMEOUT_S = 60.0

#: Header-count cap per request; a client streaming headers forever is
#: an attack on the parser, not a request.
_MAX_HEADERS = 100

#: Reason phrases for the statuses the door actually emits.
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass(order=True)
class _Queued:
    """One admitted request parked in the priority queue."""

    priority: int
    seq: int
    ticket: Ticket = field(compare=False)
    request: dict = field(compare=False)
    future: "asyncio.Future[dict]" = field(compare=False)


class AsyncHttpFrontend:
    """An event-loop HTTP server wrapping one :class:`WebService`.

    Drop-in peer of :class:`~repro.net.http.HttpFrontend`: same
    constructor shape, same ``start``/``serve_forever``/``shutdown``
    lifecycle, same dictionary protocol on ``POST /`` and introspection
    on ``GET /stats`` / ``GET /trace/<id>`` — plus admission control
    and keep-alive at thousands-of-clients scale.

    Args:
        service: the web service to expose.
        host: bind address.
        port: bind port (0 picks a free one; see :attr:`port`).
        admission: the admission controller; a default-configured one
            is built against the service's metrics registry if omitted.
        max_inflight: bridge threads into the blocking service tier —
            the dispatch concurrency bound.
        request_timeout: seconds an admitted request may take end to
            end before the client gets a typed 503.
        idle_timeout: keep-alive idle budget per connection.
    """

    def __init__(
        self,
        service: WebService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        admission: AdmissionController | None = None,
        max_inflight: int = 8,
        request_timeout: float = REQUEST_TIMEOUT_S,
        idle_timeout: float = IDLE_TIMEOUT_S,
        io_timeout: float = IO_TIMEOUT_S,
    ) -> None:
        self.service = service
        self.host = host
        self.port = int(port)
        self._max_inflight = max(1, int(max_inflight))
        self._request_timeout = float(request_timeout)
        self._idle_timeout = float(idle_timeout)
        self._io_timeout = float(io_timeout)
        self.admission = admission or AdmissionController(
            service.metrics, workers=self._max_inflight
        )
        self._ready = threading.Event()
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stopping: asyncio.Event | None = None
        self._queue: "asyncio.PriorityQueue[_Queued]" | None = None
        self._startup_error: BaseException | None = None
        metrics = service.metrics
        self._connections = metrics.gauge(
            "aio_connections_open", "Keep-alive connections currently held"
        )
        self._requests = metrics.counter(
            "aio_http_requests_total", "HTTP requests parsed, by outcome",
            labelnames=["outcome"],
        )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Serve on a background thread; returns once the port is bound."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="aio-frontend", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise RuntimeError("async front door failed to start in 10s")
        if self._startup_error is not None:
            raise RuntimeError(
                "async front door failed to bind"
            ) from self._startup_error

    def serve_forever(self) -> None:
        """Run the event loop on the calling thread until :meth:`shutdown`."""
        try:
            asyncio.run(self._main())
        finally:
            self._ready.set()  # unblock start() even on bind failure
        if (
            self._startup_error is not None
            and threading.current_thread() is not self._thread
        ):
            # Direct callers (the CLI) get the bind failure loudly;
            # start() surfaces it for the background-thread case.
            raise RuntimeError(
                "async front door failed to bind"
            ) from self._startup_error

    def shutdown(self) -> None:
        """Stop serving, drain workers, release the port (idempotent)."""
        loop, stopping = self._loop, self._stopping
        if loop is not None and stopping is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(stopping.set)
            except RuntimeError:
                pass  # loop already torn down between the check and the call
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    #: RES01 alias — the door is a closeable like every other server.
    close = shutdown

    def __enter__(self) -> "AsyncHttpFrontend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()

    async def _main(self) -> None:
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._stopping = asyncio.Event()
        self._queue = asyncio.PriorityQueue()
        bridge = ThreadPoolExecutor(
            max_workers=self._max_inflight, thread_name_prefix="aio-bridge"
        )
        try:
            server = await asyncio.start_server(
                self._serve_connection, self.host, self.port
            )
        except OSError as error:
            self._startup_error = error
            self._ready.set()
            bridge.shutdown(wait=False)
            return
        self.port = int(server.sockets[0].getsockname()[1])
        workers = [
            loop.create_task(self._worker(bridge), name=f"aio-worker-{i}")
            for i in range(self._max_inflight)
        ]
        self._ready.set()
        try:
            async with server:
                await self._stopping.wait()
        finally:
            for worker in workers:
                worker.cancel()
            await asyncio.gather(*workers, return_exceptions=True)
            bridge.shutdown(wait=False)

    # -- connection handling -----------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One keep-alive session; never raises into the event loop."""
        self._connections.inc()
        try:
            await self._session(reader, writer)
        except (OSError, TimeoutError, asyncio.TimeoutError):
            # Covers BrokenPipeError/ConnectionResetError plus a peer
            # stalling past an I/O deadline mid-request.
            self.service.note_client_disconnect("async")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            self.service.note_client_disconnect("async")
        finally:
            self._connections.dec()
            writer.close()
            try:
                await asyncio.wait_for(writer.wait_closed(), self._io_timeout)
            except (OSError, asyncio.TimeoutError):
                pass  # peer already gone; the fd is released either way

    async def _session(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        stopping = self._stopping
        assert stopping is not None
        while not stopping.is_set():
            try:
                head = await asyncio.wait_for(
                    reader.readline(), self._idle_timeout
                )
            except asyncio.TimeoutError:
                return  # idle keep-alive client; close quietly
            if not head:
                return  # clean EOF between requests
            parts = head.decode("latin-1").rstrip("\r\n").split()
            if len(parts) != 3 or not parts[2].startswith("HTTP/"):
                self._requests.labels(outcome="malformed").inc()
                await self._reply_json(
                    writer,
                    400,
                    {"status": "error", "code": "bad_request",
                     "message": "malformed request line"},
                    keep_alive=False,
                )
                return
            method, path, version = parts
            headers = await self._read_headers(reader)
            if headers is None:
                self._requests.labels(outcome="malformed").inc()
                return
            default_keep_alive = version != "HTTP/1.0"
            keep_alive = (
                headers.get("connection", "").lower() != "close"
                and default_keep_alive
            )
            if not await self._serve_request(
                method, path, headers, reader, writer, keep_alive
            ):
                return
            if not keep_alive:
                return

    async def _read_headers(
        self, reader: asyncio.StreamReader
    ) -> dict[str, str] | None:
        """Parse the header block; ``None`` on a truncated request."""
        headers: dict[str, str] = {}
        for _ in range(_MAX_HEADERS):
            line = await asyncio.wait_for(reader.readline(), self._io_timeout)
            if line in (b"\r\n", b"\n"):
                return headers
            if not line:
                return None
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return None  # header flood; drop the connection

    async def _serve_request(
        self,
        method: str,
        path: str,
        headers: dict[str, str],
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        keep_alive: bool,
    ) -> bool:
        """Answer one parsed request; False when the session must end."""
        if method == "GET":
            # Introspection bypasses the queue entirely: /stats must
            # answer precisely when the door is too loaded to serve
            # queries, and both handlers are memory-bound.
            status, content_type, body = self.service.handle_http(
                method, path
            )
            self._requests.labels(outcome="introspection").inc()
            await self._reply(
                writer, status, content_type, body.encode("utf-8"),
                keep_alive=keep_alive,
            )
            return True
        if method != "POST":
            self._requests.labels(outcome="rejected").inc()
            await self._reply_json(
                writer, 405,
                {"status": "error", "code": "bad_request",
                 "message": f"method {method} not allowed"},
                keep_alive=keep_alive,
            )
            return True
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            length = -1
        if length <= 0 or length > MAX_BODY_BYTES:
            # Without a believable length the connection cannot be
            # re-framed, so the session ends after the error reply.
            self._requests.labels(outcome="rejected").inc()
            await self._reply_json(
                writer, 400,
                {"status": "error", "code": "bad_request",
                 "message": "missing or oversized body"},
                keep_alive=False,
            )
            return False
        body = await asyncio.wait_for(
            reader.readexactly(length), self._io_timeout
        )
        if path not in ("/", ""):
            self._requests.labels(outcome="rejected").inc()
            await self._reply_json(
                writer, 404,
                {"status": "error", "code": "not_found",
                 "message": f"POST only to /, not {path!r}"},
                keep_alive=keep_alive,
            )
            return True
        try:
            request = json.loads(body)
        except json.JSONDecodeError as error:
            self._requests.labels(outcome="rejected").inc()
            await self._reply_json(
                writer, 400,
                {"status": "error", "code": "bad_request",
                 "message": f"body is not JSON: {error}"},
                keep_alive=keep_alive,
            )
            return True
        if not isinstance(request, dict):
            self._requests.labels(outcome="rejected").inc()
            await self._reply_json(
                writer, 400,
                {"status": "error", "code": "bad_request",
                 "message": "body must be a JSON object"},
                keep_alive=keep_alive,
            )
            return True
        tenant = headers.get("x-tenant", "public")
        status, response, retry_after = await self._dispatch(tenant, request)
        await self._reply_json(
            writer, status, response,
            keep_alive=keep_alive, retry_after=retry_after,
        )
        return True

    # -- admission + dispatch ----------------------------------------------

    async def _dispatch(
        self, tenant: str, request: dict
    ) -> tuple[int, dict, float | None]:
        """Admission-controlled dispatch of one dictionary request.

        Returns ``(http status, response dict, retry-after hint)``.
        Every path answers — sheds become typed 429/503 bodies, and an
        admitted request that outlives the end-to-end budget gets a
        typed 503 rather than a hang.
        """
        queue = self._queue
        loop = self._loop
        assert queue is not None and loop is not None
        method = request.get("method")
        try:
            ticket = self.admission.admit(
                tenant, method if isinstance(method, str) else "<unknown>"
            )
        except ShedError as shed:
            self._requests.labels(outcome="shed").inc()
            return shed.http_status, shed.to_response(), shed.retry_after_s
        item = _Queued(
            priority=ticket.priority,
            seq=ticket.seq,
            ticket=ticket,
            request=request,
            future=loop.create_future(),
        )
        queue.put_nowait(item)
        try:
            response = await asyncio.wait_for(
                item.future, self._request_timeout
            )
        except asyncio.TimeoutError:
            # The worker (or bridge) is still grinding; the depth slot
            # is released by whichever side touches the ticket last.
            shed = ShedError(
                f"request exceeded the door's {self._request_timeout:g}s "
                "budget",
                retry_after_s=self.admission.max_queue_wait,
            )
            self._requests.labels(outcome="timeout").inc()
            return shed.http_status, shed.to_response(), shed.retry_after_s
        outcome = "ok" if response.get("status") == "ok" else "error"
        if response.get("code") in ("queue_timeout", "overloaded"):
            outcome = "shed"
        self._requests.labels(outcome=outcome).inc()
        retry = response.get("retry_after_s")
        status = 200 if response.get("status") == "ok" else 400
        if isinstance(retry, (int, float)):
            status = 503
            return status, response, float(retry)
        return status, response, None

    async def _worker(self, bridge: ThreadPoolExecutor) -> None:
        """One dispatch slot: dequeue, age-check, bridge, resolve."""
        queue = self._queue
        loop = self._loop
        assert queue is not None and loop is not None
        while True:
            item = await queue.get()
            if item.future.done():
                # Client timed out (or vanished) while queued; the
                # ticket still holds a depth slot.
                self.admission.abandon(item.ticket)
                continue
            try:
                waited = self.admission.start(item.ticket)
            except ShedError as shed:
                self._resolve(item, shed.to_response())
                continue
            started = clock.now()
            response = await loop.run_in_executor(
                bridge, self.service.handle, item.request
            )
            exemplar = response.get("query_id")
            self.admission.finish(
                item.ticket,
                waited,
                clock.now() - started,
                exemplar=exemplar if isinstance(exemplar, str) else None,
            )
            self._resolve(item, response)

    def _resolve(self, item: _Queued, response: dict) -> None:
        if not item.future.done():
            item.future.set_result(response)

    # -- response writing --------------------------------------------------

    async def _reply_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        *,
        keep_alive: bool,
        retry_after: float | None = None,
    ) -> None:
        await self._reply(
            writer,
            status,
            "application/json",
            json.dumps(payload).encode("utf-8"),
            keep_alive=keep_alive,
            retry_after=retry_after,
        )

    async def _reply(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        content_type: str,
        body: bytes,
        *,
        keep_alive: bool,
        retry_after: float | None = None,
    ) -> None:
        reason = _REASONS.get(status, "Unknown")
        head = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        if retry_after is not None:
            head.append(f"Retry-After: {max(1, round(retry_after))}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await asyncio.wait_for(writer.drain(), self._io_timeout)
