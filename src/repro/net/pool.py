"""Per-host connection pooling with retries for idempotent reads.

A :class:`ConnectionPool` keeps a small set of warm
:class:`~repro.net.client.NodeClient` connections to one node server.
``call`` checks a connection out, runs the RPC, and returns it —
discarding it instead whenever the call poisoned the socket (protocol
violation, deadline mid-frame, reset).  Connections idle past the
health-check interval are pinged before reuse, so a node restart is
noticed at the pool instead of mid-query.

Retries: connection-level failures (:class:`NodeUnavailableError`,
:class:`ConnectionLostError`) are retried with the pool's
:class:`~repro.net.client.RetryPolicy` **only when the caller marks the
call idempotent** — all query reads are; field registration is not.
Every attempt draws from the one per-request deadline, so retrying can
never extend a request past its budget.
"""

from __future__ import annotations

import random
import threading
from typing import Callable, Sequence

from repro.net.client import CallResult, NodeClient, RetryPolicy
from repro.net.errors import (
    ConnectionLostError,
    DeadlineExceededError,
    NodeUnavailableError,
)
from repro.net.frame import Deadline
from repro.obs import clock

#: Idle seconds after which a pooled connection is pinged before reuse.
HEALTH_CHECK_IDLE_SECONDS = 30.0


class _PooledConnection:
    """A client plus the bookkeeping the pool needs."""

    __slots__ = ("client", "last_used")

    def __init__(self, client: NodeClient) -> None:
        self.client = client
        self.last_used = clock.now()


class ConnectionPool:
    """A bounded pool of connections to one ``host:port``.

    Args:
        host: node server host.
        port: node server port.
        max_connections: checkout ceiling; further callers wait (within
            their deadline) for a connection to come back.
        connect_timeout: per-attempt budget for TCP connect + handshake
            (always additionally capped by the request deadline).
        retry: backoff policy for idempotent calls.
        rng: jitter source (seedable for deterministic tests).
        on_retry: called once per retry, for the transport's metrics.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        max_connections: int = 4,
        connect_timeout: float = 2.0,
        retry: RetryPolicy | None = None,
        rng: random.Random | None = None,
        on_retry: Callable[[], None] | None = None,
    ) -> None:
        if max_connections < 1:
            raise ValueError("a pool needs at least one connection")
        self.host = host
        self.port = port
        self.address = f"{host}:{port}"
        self.max_connections = max_connections
        self.connect_timeout = connect_timeout
        self.retry = retry or RetryPolicy()
        self._rng = rng or random.Random()
        self._on_retry = on_retry
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._idle: list[_PooledConnection] = []
        self._checked_out = 0
        self._closed = False
        self.connections_created = 0
        self.retries = 0

    # -- public API ------------------------------------------------------------

    def call(
        self,
        method: str,
        header: dict,
        blobs: Sequence[bytes],
        *,
        timeout: float,
        idempotent: bool,
    ) -> CallResult:
        """One RPC with pooling, deadline and (if idempotent) retries.

        Raises:
            DeadlineExceededError: the budget ran out (never retried).
            NodeUnavailableError: connection-level failure; for
                idempotent calls, only after the retry policy's attempts
                are exhausted.
            RemoteCallError: typed failure reported by the server.
        """
        deadline = Deadline.after(timeout)
        attempts_allowed = self.retry.attempts if idempotent else 1
        attempt = 0
        while True:
            try:
                return self._call_once(method, header, blobs, deadline)
            except (NodeUnavailableError, ConnectionLostError) as error:
                attempt += 1
                if attempt >= attempts_allowed:
                    raise NodeUnavailableError(
                        self.address,
                        attempts=attempt,
                        message=(
                            f"node {self.address} unavailable after "
                            f"{attempt} attempt(s): {error}"
                        ),
                    ) from error
                self.retries += 1
                if self._on_retry is not None:
                    self._on_retry()
                # Back off inside the request budget; if the sleep eats
                # the rest of it the next attempt raises DeadlineExceeded.
                pause = min(
                    self.retry.delay(attempt - 1, self._rng),
                    deadline.remaining(),
                )
                if pause > 0:
                    clock.sleep(pause)

    def ping(self, timeout: float) -> float:
        """Round-trip a health-check frame; returns wall seconds."""
        deadline = Deadline.after(timeout)
        conn = self._acquire(deadline)
        try:
            rtt = conn.client.ping(deadline)
        except BaseException:
            self._discard(conn)
            raise
        self._release(conn)
        return rtt

    def close(self) -> None:
        """Close every idle connection and refuse new checkouts."""
        with self._available:
            self._closed = True
            idle, self._idle = self._idle, []
            self._available.notify_all()
        for conn in idle:
            conn.client.close()

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- internals -------------------------------------------------------------

    def _call_once(
        self,
        method: str,
        header: dict,
        blobs: Sequence[bytes],
        deadline: Deadline,
    ) -> CallResult:
        conn = self._acquire(deadline)
        try:
            result = conn.client.call(method, header, blobs, deadline)
        except BaseException:
            # Any in-flight failure leaves request/response framing in an
            # unknown state; the connection is poisoned either way.
            self._discard(conn)
            raise
        self._release(conn)
        return result

    def _acquire(self, deadline: Deadline) -> _PooledConnection:
        while True:
            with self._available:
                if self._closed:
                    raise ConnectionLostError(
                        f"pool for {self.address} is closed"
                    )
                if self._idle:
                    conn = self._idle.pop()
                    self._checked_out += 1
                elif self._checked_out < self.max_connections:
                    self._checked_out += 1
                    conn = None
                else:
                    self._available.wait(timeout=deadline.remaining())
                    continue
            if conn is None:
                try:
                    conn = _PooledConnection(self._connect(deadline))
                except BaseException:
                    self._return_slot()
                    raise
                with self._lock:
                    self.connections_created += 1
                return conn
            if not self._healthy(conn, deadline):
                self._return_slot()
                continue
            return conn

    def _connect(self, deadline: Deadline) -> NodeClient:
        budget = min(self.connect_timeout, deadline.remaining())
        connect_deadline = Deadline(clock.now() + budget)
        return NodeClient(self.host, self.port, connect_deadline)

    def _healthy(self, conn: _PooledConnection, deadline: Deadline) -> bool:
        """Ping a connection that sat idle too long; close it if stale."""
        if clock.now() - conn.last_used < HEALTH_CHECK_IDLE_SECONDS:
            return True
        try:
            conn.client.ping(deadline)
        except DeadlineExceededError:
            conn.client.close()
            raise
        except (ConnectionLostError, NodeUnavailableError, OSError):
            conn.client.close()
            return False
        conn.last_used = clock.now()
        return True

    def _release(self, conn: _PooledConnection) -> None:
        conn.last_used = clock.now()
        with self._available:
            self._checked_out -= 1
            if self._closed or conn.client.closed:
                conn.client.close()
            else:
                self._idle.append(conn)
            self._available.notify()

    def _discard(self, conn: _PooledConnection) -> None:
        conn.client.close()
        self._return_slot()

    def _return_slot(self) -> None:
        with self._available:
            self._checked_out -= 1
            self._available.notify()
