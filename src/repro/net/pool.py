"""Per-host connection pooling with retries for idempotent reads.

A :class:`ConnectionPool` fronts one node server in one of two modes:

* **Pipelined (the default).**  The pool keeps one or two
  :class:`~repro.net.client.PipelinedConnection` objects and lets many
  requests share each socket concurrently — the scatter's per-node
  fan-out rides a couple of connections with deep in-flight queues
  instead of a connection per outstanding call.  New connections are
  only dialled when every live one is busy and the ceiling allows; a
  connection whose socket dies fails all of its outstanding requests
  and is discarded here.
* **Serial (``pipeline=False``).**  The original checkout model: a
  :class:`~repro.net.client.NodeClient` is exclusively owned for the
  duration of a call, with idle connections health-checked by ping
  before reuse.

Retries: connection-level failures (:class:`NodeUnavailableError`,
:class:`ConnectionLostError`) are retried with the pool's
:class:`~repro.net.client.RetryPolicy` **only when the caller marks the
call idempotent** — all query reads are; field registration is not.
Every attempt draws from the one per-request deadline, so retrying can
never extend a request past its budget.  A streamed call's sink is
reset at the start of every attempt, so chunks delivered before a
mid-flight failure are never double-counted.
"""

from __future__ import annotations

import random
import threading
from typing import Callable, Sequence

from repro.net.client import (
    CallResult,
    NodeClient,
    PipelinedConnection,
    RetryPolicy,
)
from repro.net.codec import TRACE_HEADER_KEY, trace_context_to_wire
from repro.net.compress import CompressionConfig, DEFAULT_COMPRESSION
from repro.net.errors import (
    ConnectionLostError,
    DeadlineExceededError,
    NetError,
    NodeUnavailableError,
    ProtocolError,
)
from repro.net.frame import Buffer, Deadline
from repro.net.stream import PartialSink
from repro.obs import clock, tracing

#: Idle seconds after which a serial pooled connection is pinged before
#: reuse (pipelined connections detect death via their reader loop).
HEALTH_CHECK_IDLE_SECONDS = 30.0


class _PooledConnection:
    """A serial client plus the bookkeeping the pool needs."""

    __slots__ = ("client", "last_used")

    def __init__(self, client: NodeClient) -> None:
        self.client = client
        self.last_used = clock.now()


class ConnectionPool:
    """A bounded pool of connections to one ``host:port``.

    Args:
        host: node server host.
        port: node server port.
        max_connections: connection ceiling.  Pipelined mode dials a new
            connection only when all live ones have requests in flight;
            serial mode makes further callers wait (within their
            deadline) for a checkout.
        connect_timeout: per-attempt budget for TCP connect + handshake
            (always additionally capped by the request deadline).
        retry: backoff policy for idempotent calls.
        rng: jitter source (seedable for deterministic tests).
        on_retry: called once per retry, for the transport's metrics.
        pipeline: multiplex requests over shared connections (default)
            or check connections out serially.
        compression: codecs to advertise on new connections; defaults
            to the stock zlib configuration.
        on_ratio: callback fed each frame's achieved compression ratio.
        shm: offer servers a shared-memory payload ring on each new
            connection (same-host fast path; declined grants fall back
            to TCP transparently).
        idle_ttl: seconds a connection may sit with nothing in flight
            before the pool evicts it instead of handing it out again
            (``None``, the default, keeps connections forever).  Long-
            lived mediators pointed at a replicated cluster use this so
            sockets to a demoted replica do not linger for hours.
        max_probe_failures: consecutive :meth:`ping` failures after
            which every pooled connection is evicted — a node that
            stops answering health probes gets a clean slate of dials
            rather than a pile of half-dead sockets.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        max_connections: int = 4,
        connect_timeout: float = 2.0,
        retry: RetryPolicy | None = None,
        rng: random.Random | None = None,
        on_retry: Callable[[], None] | None = None,
        pipeline: bool = True,
        compression: CompressionConfig | None = None,
        on_ratio: Callable[[float], None] | None = None,
        shm: bool = False,
        idle_ttl: float | None = None,
        max_probe_failures: int = 3,
    ) -> None:
        if max_connections < 1:
            raise ValueError("a pool needs at least one connection")
        if idle_ttl is not None and idle_ttl <= 0:
            raise ValueError("idle_ttl must be positive when set")
        if max_probe_failures < 1:
            raise ValueError("max_probe_failures must be positive")
        self.host = host
        self.port = port
        self.address = f"{host}:{port}"
        self.max_connections = max_connections
        self.connect_timeout = connect_timeout
        self.retry = retry or RetryPolicy()
        self.pipeline = pipeline
        self.compression = (
            compression if compression is not None else DEFAULT_COMPRESSION
        )
        self._on_ratio = on_ratio
        self.shm = shm
        self.idle_ttl = idle_ttl
        self.max_probe_failures = max_probe_failures
        self.probe_failures = 0
        self._rng = rng or random.Random()
        self._on_retry = on_retry
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._idle: list[_PooledConnection] = []
        self._pipes: list[PipelinedConnection] = []
        self._checked_out = 0
        self._closed = False
        self.connections_created = 0
        self.retries = 0

    # -- public API ------------------------------------------------------------

    def call(
        self,
        method: str,
        header: dict,
        blobs: Sequence[Buffer],
        *,
        timeout: float,
        idempotent: bool,
        sink: PartialSink | None = None,
    ) -> CallResult:
        """One RPC with pooling, deadline and (if idempotent) retries.

        Raises:
            DeadlineExceededError: the budget ran out (never retried).
            NodeUnavailableError: connection-level failure; for
                idempotent calls, only after the retry policy's attempts
                are exhausted.
            RemoteCallError: typed failure reported by the server.
        """
        deadline = Deadline.after(timeout)
        # Propagate the caller's trace context on the wire.  This is the
        # one choke point every outbound RPC passes through — the
        # transport's scatter calls and a node's own halo fetches to its
        # peers alike — so a mediator-rooted trace follows the request
        # graph transitively.
        context = tracing.current_context()
        if context is not None:
            header = {**header, TRACE_HEADER_KEY: trace_context_to_wire(context)}
        attempts_allowed = self.retry.attempts if idempotent else 1
        attempt = 0
        while True:
            attempt_started = clock.now()
            try:
                result = self._call_once(method, header, blobs, deadline, sink)
            except (NodeUnavailableError, ConnectionLostError) as error:
                attempt += 1
                if attempt >= attempts_allowed:
                    raise NodeUnavailableError(
                        self.address,
                        attempts=attempt,
                        message=(
                            f"node {self.address} unavailable after "
                            f"{attempt} attempt(s): {error}"
                        ),
                    ) from error
                self.retries += 1
                if self._on_retry is not None:
                    self._on_retry()
                # Back off inside the request budget; if the sleep eats
                # the rest of it the next attempt raises DeadlineExceeded.
                pause = min(
                    self.retry.delay(attempt - 1, self._rng),
                    deadline.remaining(),
                )
                if pause > 0:
                    clock.sleep(pause)
            else:
                # The server piggybacks its captured spans (plus its own
                # clock stamps) on the final response header; graft them
                # under the current span using this attempt's send/recv
                # stamps for the midpoint skew estimate.  Per-attempt
                # stamps matter: a retried call's first attempt never
                # produced a response, so only the winning attempt's
                # round trip brackets the server's processing window.
                shipped = result.header.pop(TRACE_HEADER_KEY, None)
                if context is not None and shipped is not None:
                    tracing.absorb_remote(
                        shipped,
                        client_send=attempt_started,
                        client_recv=clock.now(),
                    )
                return result

    def ping(self, timeout: float) -> float:
        """Round-trip a health-check frame; returns wall seconds.

        Consecutive failures are counted; at ``max_probe_failures`` the
        pool evicts every connection it holds (see :meth:`__init__`).
        One success resets the count.
        """
        try:
            rtt = self._ping_once(timeout)
        except (NetError, OSError):
            self._record_probe_failure()
            raise
        with self._lock:
            self.probe_failures = 0
        return rtt

    def _ping_once(self, timeout: float) -> float:
        deadline = Deadline.after(timeout)
        if self.pipeline:
            pipe = self._pipe(deadline)
            try:
                return pipe.ping(deadline)
            except (ConnectionLostError, ProtocolError):
                self._discard_pipe(pipe)
                raise
        conn = self._acquire(deadline)
        try:
            rtt = conn.client.ping(deadline)
        except BaseException:
            self._discard(conn)
            raise
        self._release(conn)
        return rtt

    def _record_probe_failure(self) -> None:
        """Count one failed probe; evict everything at the threshold."""
        with self._available:
            self.probe_failures += 1
            if self.probe_failures < self.max_probe_failures:
                return
            self.probe_failures = 0
            idle, self._idle = self._idle, []
            pipes, self._pipes = self._pipes, []
        for conn in idle:
            conn.client.close()
        for pipe in pipes:
            pipe.close()

    @property
    def open_connections(self) -> int:
        """Live connections the pool would hand out right now."""
        with self._lock:
            if self.pipeline:
                return sum(1 for pipe in self._pipes if pipe.usable)
            return len(self._idle) + self._checked_out

    def close(self) -> None:
        """Close every connection and refuse new calls."""
        with self._available:
            self._closed = True
            idle, self._idle = self._idle, []
            pipes, self._pipes = self._pipes, []
            self._available.notify_all()
        for conn in idle:
            conn.client.close()
        for pipe in pipes:
            pipe.close()

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- internals -------------------------------------------------------------

    def _call_once(
        self,
        method: str,
        header: dict,
        blobs: Sequence[Buffer],
        deadline: Deadline,
        sink: PartialSink | None,
    ) -> CallResult:
        if sink is not None:
            # Fresh attempt, fresh sink: chunks streamed before a
            # mid-flight failure must not survive into the retry.
            sink.reset()
        if self.pipeline:
            pipe = self._pipe(deadline)
            try:
                return pipe.call(method, header, blobs, deadline, sink=sink)
            except (ConnectionLostError, ProtocolError):
                # Dead socket or desynced framing: nothing else may use
                # this connection again.
                self._discard_pipe(pipe)
                raise
        conn = self._acquire(deadline)
        try:
            result = conn.client.call(
                method, header, blobs, deadline, sink=sink
            )
        except BaseException:
            # Any in-flight failure leaves request/response framing in an
            # unknown state; the connection is poisoned either way.
            self._discard(conn)
            raise
        self._release(conn)
        return result

    # -- pipelined mode --------------------------------------------------------

    def _pipe(self, deadline: Deadline) -> PipelinedConnection:
        """The least-loaded live connection, growing up to the ceiling.

        A new connection is dialled only when every live one already has
        requests in flight — the scatter's whole fan-out to one node
        typically rides one or two sockets.  With ``idle_ttl`` set,
        connections idle past it are evicted here instead of reused.
        """
        evicted: list[PipelinedConnection] = []
        chosen: PipelinedConnection | None = None
        with self._lock:
            if self._closed:
                raise ConnectionLostError(f"pool for {self.address} is closed")
            live: list[PipelinedConnection] = []
            now = clock.now()
            for pipe in self._pipes:
                if not pipe.usable:
                    continue
                if (
                    self.idle_ttl is not None
                    and pipe.in_flight == 0
                    and now - pipe.last_used > self.idle_ttl
                ):
                    evicted.append(pipe)
                    continue
                live.append(pipe)
            self._pipes = live
            if self._pipes:
                best = min(self._pipes, key=lambda pipe: pipe.in_flight)
                if (
                    best.in_flight == 0
                    or len(self._pipes) >= self.max_connections
                ):
                    chosen = best
            budget = min(self.connect_timeout, deadline.remaining())
        # close() joins the evicted connection's reader thread; never
        # do that while holding the pool lock.
        for pipe in evicted:
            pipe.close()
        if chosen is not None:
            return chosen
        # Dial with the pool unlocked: the TCP connect plus handshake can
        # take the whole connect budget, and holding the lock meanwhile
        # would stall every other caller fanning out to this node.
        pipe = PipelinedConnection(
            self.host,
            self.port,
            Deadline(clock.now() + budget),
            compression=self.compression,
            on_ratio=self._on_ratio,
            shm=self.shm,
        )
        stale: PipelinedConnection | None = None
        with self._lock:
            if self._closed:
                stale = pipe
            elif len(self._pipes) >= self.max_connections:
                # Another caller grew the pool while we dialled; keep the
                # ceiling and ride an existing connection instead.
                stale = pipe
                pipe = min(self._pipes, key=lambda p: p.in_flight)
            else:
                self._pipes.append(pipe)
                self.connections_created += 1
        if stale is not None:
            stale.close()
            if self._closed:
                raise ConnectionLostError(
                    f"pool for {self.address} is closed"
                )
        return pipe

    def _discard_pipe(self, pipe: PipelinedConnection) -> None:
        with self._lock:
            if pipe in self._pipes:
                self._pipes.remove(pipe)
        pipe.close()

    # -- serial mode -----------------------------------------------------------

    def _acquire(self, deadline: Deadline) -> _PooledConnection:
        while True:
            with self._available:
                if self._closed:
                    raise ConnectionLostError(
                        f"pool for {self.address} is closed"
                    )
                if self.idle_ttl is not None and self._idle:
                    now = clock.now()
                    keep: list[_PooledConnection] = []
                    for pooled in self._idle:
                        if now - pooled.last_used > self.idle_ttl:
                            # A serial client's close is a plain fd
                            # close — safe under the pool lock.
                            pooled.client.close()
                        else:
                            keep.append(pooled)
                    self._idle = keep
                if self._idle:
                    conn = self._idle.pop()
                    self._checked_out += 1
                elif self._checked_out < self.max_connections:
                    self._checked_out += 1
                    conn = None
                else:
                    self._available.wait(timeout=deadline.remaining())
                    continue
            if conn is None:
                try:
                    conn = _PooledConnection(self._connect(deadline))
                except BaseException:
                    self._return_slot()
                    raise
                with self._lock:
                    self.connections_created += 1
                return conn
            if not self._healthy(conn, deadline):
                self._return_slot()
                continue
            return conn

    def _connect(self, deadline: Deadline) -> NodeClient:
        budget = min(self.connect_timeout, deadline.remaining())
        connect_deadline = Deadline(clock.now() + budget)
        return NodeClient(
            self.host,
            self.port,
            connect_deadline,
            compression=self.compression,
            on_ratio=self._on_ratio,
            shm=self.shm,
        )

    def _healthy(self, conn: _PooledConnection, deadline: Deadline) -> bool:
        """Ping a connection that sat idle too long; close it if stale."""
        if clock.now() - conn.last_used < HEALTH_CHECK_IDLE_SECONDS:
            return True
        try:
            conn.client.ping(deadline)
        except DeadlineExceededError:
            conn.client.close()
            raise
        except (ConnectionLostError, NodeUnavailableError, OSError):
            conn.client.close()
            return False
        conn.last_used = clock.now()
        return True

    def _release(self, conn: _PooledConnection) -> None:
        conn.last_used = clock.now()
        with self._available:
            self._checked_out -= 1
            if self._closed or conn.client.closed:
                conn.client.close()
            else:
                self._idle.append(conn)
            self._available.notify()

    def _discard(self, conn: _PooledConnection) -> None:
        conn.client.close()
        self._return_slot()

    def _return_slot(self) -> None:
        with self._available:
            self._checked_out -= 1
            self._available.notify()
