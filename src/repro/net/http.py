"""HTTP front door for the web-service tier.

A thin stdlib adapter that puts :class:`~repro.cluster.webservice
.WebService` on a real port: ``POST /`` takes one JSON request body and
answers with the service's JSON response, and the two live-introspection
endpoints — ``GET /stats`` (Prometheus text) and ``GET /trace/<id>``
(a query's span tree) — are routed through
:meth:`~repro.cluster.webservice.WebService.handle_http`.

The adapter adds no semantics of its own: every request body goes
through the same dictionary protocol the tests drive directly, so HTTP
clients and in-process callers observe identical behaviour.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.cluster.webservice import WebService

#: Largest accepted request body; queries are small dictionaries, so
#: anything bigger is a client error, not a bigger buffer.
MAX_BODY_BYTES = 4 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    """Routes one HTTP exchange onto the owning server's WebService."""

    # Set by HttpFrontend on the handler subclass it builds.
    service: WebService

    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 - http.server's fixed name
        """Serve the introspection endpoints (``/stats``, ``/trace/<id>``)."""
        status, content_type, body = self.service.handle_http("GET", self.path)
        self._reply(status, content_type, body.encode("utf-8"))

    def do_POST(self) -> None:  # noqa: N802 - http.server's fixed name
        """Serve one dictionary-protocol request from a JSON body."""
        if self.path not in ("/", ""):
            self._reply_json(404, {"status": "error", "code": "not_found",
                                   "message": f"POST only to /, not {self.path!r}"})
            return
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0 or length > MAX_BODY_BYTES:
            self._reply_json(400, {"status": "error", "code": "bad_request",
                                   "message": "missing or oversized body"})
            return
        body = self.rfile.read(length)
        try:
            request = json.loads(body)
        except json.JSONDecodeError as error:
            self._reply_json(400, {"status": "error", "code": "bad_request",
                                   "message": f"body is not JSON: {error}"})
            return
        if not isinstance(request, dict):
            self._reply_json(400, {"status": "error", "code": "bad_request",
                                   "message": "body must be a JSON object"})
            return
        response = self.service.handle(request)
        self._reply_json(200 if response.get("status") == "ok" else 400, response)

    def _reply_json(self, status: int, payload: dict) -> None:
        self._reply(status, "application/json", json.dumps(payload).encode("utf-8"))

    def _reply(self, status: int, content_type: str, body: bytes) -> None:
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            # The client hung up mid-reply.  Swallow it — a vanished
            # client is traffic weather, not a server error — count it,
            # and mark the connection unusable so the handler loop
            # stops instead of writing into a dead socket.
            self.service.note_client_disconnect("threaded")
            self.close_connection = True

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        """Silence the default per-request stderr chatter."""


class HttpFrontend:
    """A threaded HTTP server wrapping one :class:`WebService`.

    Args:
        service: the web service to expose.
        host: bind address.
        port: bind port (0 picks a free one; see :attr:`port`).
    """

    def __init__(
        self, service: WebService, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        handler = type("BoundHandler", (_Handler,), {"service": service})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self.host = host
        self.port = int(self._httpd.server_address[1])
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        """Serve in a background thread (tests, benchmarks)."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.2},
            name="http-frontend",
            daemon=True,
        )
        self._thread.start()

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self._httpd.serve_forever(poll_interval=0.2)

    def shutdown(self) -> None:
        """Stop serving and release the port (idempotent)."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "HttpFrontend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()
