"""Length-prefixed binary framing with mandatory deadlines.

One frame is a fixed 20-byte header followed by an opaque payload::

    magic    4s   b"RNET"
    version  B    protocol version (1)
    type     B    frame type (FrameType)
    flags    H    reserved, must be zero
    request  Q    request id, echoed by the matching response
    length   I    payload byte count

The payload of :data:`FrameType.REQUEST` / ``RESPONSE`` frames is a
:mod:`repro.net.codec` message whose column blobs are the PR-3 pointset
blobs *verbatim* — query results cross the wire without re-encoding.

Every read and write on a socket goes through :func:`send_frame` /
:func:`recv_frame`, which take a :class:`Deadline` and re-arm the socket
timeout around each OS call — the NET01 lint rule pins all raw
``recv``/``sendall`` usage to this module and checks the timeout
discipline statically.
"""

from __future__ import annotations

import enum
import socket
import struct
from dataclasses import dataclass

from repro.net.errors import (
    ConnectionLostError,
    DeadlineExceededError,
    FrameError,
)
from repro.obs import clock

#: First bytes of every frame.
MAGIC = b"RNET"
#: Wire protocol version; bumped on incompatible frame/codec changes.
PROTOCOL_VERSION = 1
#: Frame header layout (little-endian, 20 bytes).
HEADER = struct.Struct("<4sBBHQI")
#: Ceiling on a single frame's payload (a full 1024^3 timestep's result
#: ships as many frames well below this; anything bigger is garbage).
MAX_PAYLOAD = 256 * 1024 * 1024
#: Chunk size for socket reads.
RECV_CHUNK = 1 << 20


class FrameType(enum.IntEnum):
    """Kinds of frames the protocol exchanges."""

    HELLO = 1  #: client -> server: version handshake
    HELLO_ACK = 2  #: server -> client: handshake accepted
    PING = 3  #: client -> server: health check
    PONG = 4  #: server -> client: health response
    REQUEST = 5  #: client -> server: one RPC call
    RESPONSE = 6  #: server -> client: successful RPC result
    ERROR = 7  #: server -> client: typed RPC failure


@dataclass(frozen=True)
class Deadline:
    """An absolute point on the monotonic clock a request must beat.

    Deadlines are mandatory on every socket operation: a
    :class:`Deadline` is created once per request from a relative
    timeout and passed down the stack, so retries and multi-frame
    exchanges share one budget instead of resetting it per read.
    """

    expires_at: float

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline ``seconds`` of wall time from now.

        Raises:
            ValueError: on a non-positive budget.
        """
        if seconds <= 0:
            raise ValueError(f"deadline budget must be positive, got {seconds}")
        return cls(clock.now() + seconds)

    def remaining(self) -> float:
        """Seconds left on the budget.

        Raises:
            DeadlineExceededError: when the budget is already spent.
        """
        left = self.expires_at - clock.now()
        if left <= 0:
            raise DeadlineExceededError("request deadline exceeded")
        return left


def send_frame(
    sock: socket.socket,
    frame_type: FrameType,
    request_id: int,
    payload: bytes,
    deadline: Deadline,
) -> int:
    """Write one frame; returns the number of bytes put on the wire.

    Raises:
        FrameError: payload over :data:`MAX_PAYLOAD`.
        DeadlineExceededError: the send did not finish in time.
        ConnectionLostError: the peer closed or reset the connection.
    """
    if len(payload) > MAX_PAYLOAD:
        raise FrameError(
            f"payload of {len(payload)} bytes exceeds the "
            f"{MAX_PAYLOAD}-byte frame ceiling"
        )
    header = HEADER.pack(
        MAGIC, PROTOCOL_VERSION, int(frame_type), 0, request_id, len(payload)
    )
    data = header + payload
    sock.settimeout(deadline.remaining())
    try:
        sock.sendall(data)
    except socket.timeout:
        raise DeadlineExceededError("deadline exceeded while sending") from None
    except OSError as error:
        raise ConnectionLostError(f"send failed: {error}") from error
    return len(data)


def recv_frame(
    sock: socket.socket,
    deadline: Deadline,
    *,
    eof_ok: bool = False,
) -> tuple[FrameType, int, bytes] | None:
    """Read one frame; returns ``(type, request_id, payload)``.

    A clean end-of-stream *before any header byte* returns ``None`` when
    ``eof_ok`` is set (a client hanging up between requests) and raises
    :class:`ConnectionLostError` otherwise; EOF anywhere inside a frame
    is always a truncation (:class:`FrameError`).

    Raises:
        FrameError: bad magic/version/flags, oversized or truncated frame.
        DeadlineExceededError: the frame did not arrive in time.
        ConnectionLostError: reset, or EOF with ``eof_ok`` unset.
    """
    header = _recv_exact(sock, HEADER.size, deadline, eof_ok=eof_ok)
    if header is None:
        return None
    magic, version, type_code, flags, request_id, length = HEADER.unpack(header)
    if magic != MAGIC:
        raise FrameError(f"bad frame magic {magic!r}")
    if version != PROTOCOL_VERSION:
        raise FrameError(
            f"peer speaks protocol {version}, this build speaks "
            f"{PROTOCOL_VERSION}"
        )
    if flags != 0:
        raise FrameError(f"unsupported frame flags {flags:#x}")
    try:
        frame_type = FrameType(type_code)
    except ValueError:
        raise FrameError(f"unknown frame type {type_code}") from None
    if length > MAX_PAYLOAD:
        raise FrameError(
            f"frame announces {length} payload bytes, over the "
            f"{MAX_PAYLOAD}-byte ceiling"
        )
    payload = _recv_exact(sock, length, deadline, eof_ok=False)
    assert payload is not None  # eof_ok=False never yields None
    return frame_type, request_id, payload


def _recv_exact(
    sock: socket.socket, count: int, deadline: Deadline, *, eof_ok: bool
) -> bytes | None:
    """Read exactly ``count`` bytes, re-arming the timeout per chunk."""
    parts: list[bytes] = []
    got = 0
    while got < count:
        sock.settimeout(deadline.remaining())
        try:
            chunk = sock.recv(min(count - got, RECV_CHUNK))
        except socket.timeout:
            raise DeadlineExceededError(
                "deadline exceeded while awaiting frame bytes"
            ) from None
        except OSError as error:
            raise ConnectionLostError(f"recv failed: {error}") from error
        if not chunk:
            if not parts and eof_ok:
                return None
            if not parts:
                raise ConnectionLostError("connection closed by peer")
            raise FrameError(
                f"truncated frame: peer closed after {got} of {count} bytes"
            )
        parts.append(chunk)
        got += len(chunk)
    return b"".join(parts)
