"""Length-prefixed binary framing with mandatory deadlines.

One frame is a fixed 20-byte header followed by an opaque payload::

    magic    4s   b"RNET"
    version  B    protocol version (2)
    type     B    frame type (FrameType)
    flags    H    low byte: payload codec id (0 raw, 1 zlib); high byte 0
    request  Q    request id, echoed by the matching response
    length   I    payload byte count *as sent* (post-compression)

The payload of :data:`FrameType.REQUEST` / ``RESPONSE`` / ``PARTIAL``
frames is a :mod:`repro.net.codec` message whose column blobs are the
PR-3 pointset blobs *verbatim* — query results cross the wire without
re-encoding.

The data plane is zero-copy in both directions.  Senders hand
:func:`send_frame` a *list* of buffers (header dict bytes, per-blob
length prefixes, the blobs themselves) and a vectored
``socket.sendmsg`` loop pushes them out without ever concatenating;
receivers preallocate one ``bytearray`` per frame and fill it with
``recv_into``, handing slices of it upward as ``memoryview``s.  A
16 MiB pointset response therefore touches userspace memory exactly
once on each side.

Every read and write on a socket goes through :func:`send_frame` /
:func:`recv_frame` / :func:`poll_frame`, which re-arm the socket
timeout around each OS call — the NET01 lint rule pins all raw socket
usage to this module and checks the timeout discipline statically,
and NET02 keeps payload concatenation off this hot path.
"""

from __future__ import annotations

import enum
import socket
import struct
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, NamedTuple, Sequence, Union

from repro.net.errors import (
    ConnectionLostError,
    DeadlineExceededError,
    FrameError,
)
from repro.obs import clock

if TYPE_CHECKING:
    from repro.net.compress import FrameCodec
    from repro.net.shm import ShmRing, ShmWriter

#: Anything the wire layer accepts as payload bytes without copying.
Buffer = Union[bytes, bytearray, memoryview]

#: First bytes of every frame.
MAGIC = b"RNET"
#: Wire protocol version; bumped on incompatible frame/codec changes.
#: Version 2: flags carry the per-frame codec id, PARTIAL frames stream
#: large results, and the handshake negotiates compression codecs.
PROTOCOL_VERSION = 2
#: Frame header layout (little-endian, 20 bytes).
HEADER = struct.Struct("<4sBBHQI")
#: Ceiling on a single frame's payload (a full 1024^3 timestep's result
#: ships as many frames well below this; anything bigger is garbage).
MAX_PAYLOAD = 256 * 1024 * 1024
#: Mask of the flags bits that carry the codec id.
CODEC_FLAG_MASK = 0x00FF
#: Flag: the TCP payload is a shared-memory locator, not the payload
#: itself — the real bytes sit in a slot of the connection's granted
#: ring (:mod:`repro.net.shm`).  Never combined with a codec id.
FLAG_SHM = 0x0100
#: Every flags bit this build understands.
_KNOWN_FLAGS = CODEC_FLAG_MASK | FLAG_SHM
#: Buffers per sendmsg call — comfortably under every platform's IOV_MAX.
_IOV_BATCH = 64

#: ``socket.sendmsg`` is POSIX-only; fall back to per-buffer sendall
#: elsewhere (still zero-copy, just one syscall per buffer).
_HAS_SENDMSG = hasattr(socket.socket, "sendmsg")


class FrameType(enum.IntEnum):
    """Kinds of frames the protocol exchanges."""

    HELLO = 1  #: client -> server: version + codec handshake
    HELLO_ACK = 2  #: server -> client: handshake accepted, codec chosen
    PING = 3  #: client -> server: health check
    PONG = 4  #: server -> client: health response
    REQUEST = 5  #: client -> server: one RPC call
    RESPONSE = 6  #: server -> client: successful (or final) RPC result
    ERROR = 7  #: server -> client: typed RPC failure
    PARTIAL = 8  #: server -> client: one chunk of a streamed result


class Frame(NamedTuple):
    """One decoded frame as it came off the wire.

    ``payload`` is the *decompressed* payload — usually a ``memoryview``
    over the preallocated receive buffer (or over the inflated bytes for
    a compressed frame).  ``wire_bytes`` is what actually crossed the
    wire, header included, so the ledger's ``wire_bytes`` meter charges
    the compressed footprint.
    """

    frame_type: FrameType
    request_id: int
    payload: Buffer
    wire_bytes: int
    #: For shm-located frames: hand the ring slot back to the writer.
    #: Call it exactly once, after the payload (and every view derived
    #: from it) is fully consumed; ``None`` for inline TCP frames.
    release: Callable[[], None] | None = None
    #: Payload bytes that travelled via shared memory (0 for TCP).
    shm_bytes: int = 0


@dataclass(frozen=True)
class Deadline:
    """An absolute point on the monotonic clock a request must beat.

    Deadlines are mandatory on every socket operation: a
    :class:`Deadline` is created once per request from a relative
    timeout and passed down the stack, so retries and multi-frame
    exchanges share one budget instead of resetting it per read.
    """

    expires_at: float

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline ``seconds`` of wall time from now.

        Raises:
            ValueError: on a non-positive budget.
        """
        if seconds <= 0:
            raise ValueError(f"deadline budget must be positive, got {seconds}")
        return cls(clock.now() + seconds)

    def remaining(self) -> float:
        """Seconds left on the budget.

        Raises:
            DeadlineExceededError: when the budget is already spent.
        """
        left = self.expires_at - clock.now()
        if left <= 0:
            raise DeadlineExceededError("request deadline exceeded")
        return left


def send_frame(
    sock: socket.socket,
    frame_type: FrameType,
    request_id: int,
    payload: Buffer | Sequence[Buffer],
    deadline: Deadline,
    *,
    codec: "FrameCodec | None" = None,
) -> int:
    """Write one frame; returns the number of bytes put on the wire.

    ``payload`` may be a single buffer or a sequence of buffers; the
    sequence form is the hot path — header bytes, length prefixes and
    column blobs are handed straight to the vectored send loop without
    ever being joined.  With a negotiated ``codec`` the payload may ship
    compressed, in which case the returned byte count (and the flags
    field) reflect the compressed frame.

    Raises:
        FrameError: payload over :data:`MAX_PAYLOAD`.
        DeadlineExceededError: the send did not finish in time.
        ConnectionLostError: the peer closed or reset the connection.
    """
    if isinstance(payload, (bytes, bytearray, memoryview)):
        parts: Sequence[Buffer] = (payload,)
    else:
        parts = payload
    total = 0
    for part in parts:
        total += len(part)
    if total > MAX_PAYLOAD:
        raise FrameError(
            f"payload of {total} bytes exceeds the "
            f"{MAX_PAYLOAD}-byte frame ceiling"
        )
    flags = 0
    if codec is not None:
        flags, parts, total = codec.encode(parts, total)
    header = HEADER.pack(
        MAGIC, PROTOCOL_VERSION, int(frame_type), flags, request_id, total
    )
    buffers: list[Buffer] = [header]
    for part in parts:
        if len(part):
            buffers.append(part)
    _send_all(sock, buffers, deadline)
    return HEADER.size + total


def send_shm_frame(
    sock: socket.socket,
    frame_type: FrameType,
    request_id: int,
    payload: Buffer | Sequence[Buffer],
    deadline: Deadline,
    *,
    writer: "ShmWriter",
) -> "tuple[int, int] | None":
    """Ship a frame's payload through the shared-memory ring, if it fits.

    The payload parts are copied into a free ring slot and only a
    :data:`~repro.net.shm.LOCATOR` crosses TCP, with :data:`FLAG_SHM`
    set.  Returns ``(wire_bytes, shm_bytes)`` on success — ``wire_bytes``
    is the locator frame's TCP footprint, which is what the ledger's
    wire meter should charge — or ``None`` when no slot is free or the
    payload exceeds the slot size, in which case the caller sends the
    same payload inline with :func:`send_frame`.  Shm frames never
    compress: the point is to skip the codec pass entirely.

    Raises:
        DeadlineExceededError / ConnectionLostError: as ``send_frame``.
    """
    from repro.net.shm import LOCATOR

    if isinstance(payload, (bytes, bytearray, memoryview)):
        parts: Sequence[Buffer] = (payload,)
    else:
        parts = payload
    total = 0
    for part in parts:
        total += len(part)
    claimed = writer.claim(total)
    if claimed is None:
        return None
    slot, gen, target = claimed
    offset = 0
    for part in parts:
        span = len(part)
        if not span:
            continue
        source = memoryview(part)
        if source.itemsize != 1:
            source = source.cast("B")
        target[offset : offset + span] = source
        offset += span
    locator = LOCATOR.pack(slot, gen, total)
    header = HEADER.pack(
        MAGIC,
        PROTOCOL_VERSION,
        int(frame_type),
        FLAG_SHM,
        request_id,
        LOCATOR.size,
    )
    _send_all(sock, [header, locator], deadline)
    return HEADER.size + LOCATOR.size, total


def _send_all(
    sock: socket.socket, buffers: list[Buffer], deadline: Deadline
) -> None:
    """Vectored ``sendall``: push every buffer, re-arming the timeout.

    Uses ``sendmsg`` with up to :data:`_IOV_BATCH` iovecs per syscall
    and advances past partial sends by re-slicing memoryviews — no
    buffer is ever copied or concatenated.
    """
    views = [memoryview(buffer) for buffer in buffers]
    index = 0
    while index < len(views):
        sock.settimeout(deadline.remaining())
        try:
            if _HAS_SENDMSG:
                sent = sock.sendmsg(views[index : index + _IOV_BATCH])
            else:  # pragma: no cover - non-POSIX fallback
                sock.sendall(views[index])
                sent = len(views[index])
        except socket.timeout:
            raise DeadlineExceededError(
                "deadline exceeded while sending"
            ) from None
        except OSError as error:
            raise ConnectionLostError(f"send failed: {error}") from error
        while sent > 0:
            head = views[index]
            if sent >= len(head):
                sent -= len(head)
                index += 1
            else:
                views[index] = head[sent:]
                sent = 0


def recv_frame(
    sock: socket.socket,
    deadline: Deadline,
    *,
    eof_ok: bool = False,
    codec: "FrameCodec | None" = None,
    shm: "ShmRing | None" = None,
) -> Frame | None:
    """Read one frame; returns a :class:`Frame` (or ``None`` at EOF).

    A clean end-of-stream *before any header byte* returns ``None`` when
    ``eof_ok`` is set (a client hanging up between requests) and raises
    :class:`ConnectionLostError` otherwise; EOF anywhere inside a frame
    is always a truncation (:class:`FrameError`).

    Raises:
        FrameError: bad magic/version/flags, oversized, truncated or
            corrupt-compressed frame.
        DeadlineExceededError: the frame did not arrive in time.
        ConnectionLostError: reset, or EOF with ``eof_ok`` unset.
    """
    header = bytearray(HEADER.size)
    if not _recv_exact(sock, memoryview(header), deadline, eof_ok=eof_ok):
        return None
    return _finish_frame(sock, header, deadline, codec, shm)


def poll_frame(
    sock: socket.socket,
    *,
    poll: float,
    frame_timeout: float,
    codec: "FrameCodec | None" = None,
    shm: "ShmRing | None" = None,
) -> Frame | None:
    """Wait up to ``poll`` seconds for the start of a frame.

    The reader loop of a pipelined connection calls this in a tight
    cycle: ``None`` means nothing arrived (go check for shutdown), and a
    returned frame was collected under a fresh ``frame_timeout`` budget
    that only starts once the first header byte lands — so a short poll
    interval never truncates a large frame that is merely slow.

    Raises:
        ConnectionLostError: EOF or reset at any point.
        FrameError: malformed or truncated frame.
        DeadlineExceededError: a started frame stalled past
            ``frame_timeout``.
    """
    header = bytearray(HEADER.size)
    view = memoryview(header)
    sock.settimeout(poll)
    try:
        first = sock.recv_into(view)
    except socket.timeout:
        return None
    except OSError as error:
        raise ConnectionLostError(f"recv failed: {error}") from error
    if first == 0:
        raise ConnectionLostError("connection closed by peer")
    deadline = Deadline.after(frame_timeout)
    if first < HEADER.size:
        _recv_exact(sock, view[first:], deadline, eof_ok=False)
    return _finish_frame(sock, header, deadline, codec, shm)


def _finish_frame(
    sock: socket.socket,
    header: bytearray,
    deadline: Deadline,
    codec: "FrameCodec | None",
    shm: "ShmRing | None" = None,
) -> Frame:
    """Validate a complete header and collect the payload."""
    magic, version, type_code, flags, request_id, length = HEADER.unpack(header)
    if magic != MAGIC:
        raise FrameError(f"bad frame magic {magic!r}")
    if version != PROTOCOL_VERSION:
        raise FrameError(
            f"peer speaks protocol {version}, this build speaks "
            f"{PROTOCOL_VERSION}"
        )
    if flags & ~_KNOWN_FLAGS:
        raise FrameError(f"unsupported frame flags {flags:#x}")
    try:
        frame_type = FrameType(type_code)
    except ValueError:
        raise FrameError(f"unknown frame type {type_code}") from None
    if length > MAX_PAYLOAD:
        raise FrameError(
            f"frame announces {length} payload bytes, over the "
            f"{MAX_PAYLOAD}-byte ceiling"
        )
    buffer = bytearray(length)
    if length:
        _recv_exact(sock, memoryview(buffer), deadline, eof_ok=False)
    codec_id = flags & CODEC_FLAG_MASK
    if flags & FLAG_SHM:
        return _locate_shm_payload(
            frame_type, request_id, buffer, codec_id, shm
        )
    payload: Buffer = memoryview(buffer)
    if codec_id:
        if codec is None:
            raise FrameError(
                f"unsupported frame flags {flags:#x}: compressed frame "
                "on a connection that negotiated no codec"
            )
        payload = codec.decode(codec_id, payload)
    return Frame(frame_type, request_id, payload, HEADER.size + length)


def _locate_shm_payload(
    frame_type: FrameType,
    request_id: int,
    locator_bytes: bytearray,
    codec_id: int,
    shm: "ShmRing | None",
) -> Frame:
    """Resolve an shm-located frame's locator to a ring-slot view."""
    from repro.net.shm import LOCATOR

    if codec_id:
        raise FrameError(
            "shm-located frame carries a codec id; shm payloads are "
            "never compressed"
        )
    if shm is None:
        raise FrameError(
            "peer sent an shm-located frame but this connection granted "
            "no shared-memory ring"
        )
    if len(locator_bytes) != LOCATOR.size:
        raise FrameError(
            f"shm locator must be {LOCATOR.size} bytes, "
            f"got {len(locator_bytes)}"
        )
    slot, gen, span = LOCATOR.unpack(locator_bytes)
    slot_view = shm.view(slot, gen, span)

    def _release(
        ring: "ShmRing" = shm, slot: int = slot, gen: int = gen
    ) -> None:
        ring.release(slot, gen)

    return Frame(
        frame_type,
        request_id,
        slot_view,
        HEADER.size + len(locator_bytes),
        _release,
        span,
    )


def _recv_exact(
    sock: socket.socket,
    view: memoryview,
    deadline: Deadline,
    *,
    eof_ok: bool,
) -> bool:
    """Fill ``view`` from the socket, re-arming the timeout per read.

    Returns ``False`` only on a clean EOF before the first byte with
    ``eof_ok`` set; otherwise ``True`` once the view is full.
    """
    total = len(view)
    got = 0
    while got < total:
        sock.settimeout(deadline.remaining())
        try:
            count = sock.recv_into(view[got:])
        except socket.timeout:
            raise DeadlineExceededError(
                "deadline exceeded while awaiting frame bytes"
            ) from None
        except OSError as error:
            raise ConnectionLostError(f"recv failed: {error}") from error
        if count == 0:
            if got == 0 and eof_ok:
                return False
            if got == 0:
                raise ConnectionLostError("connection closed by peer")
            raise FrameError(
                f"truncated frame: peer closed after {got} of {total} bytes"
            )
        got += count
    return True
