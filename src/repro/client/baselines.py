"""The paper's baseline: threshold evaluation performed locally by the user.

"To perform the evaluation locally the user requests the derived field
of interest from the database by submitting multiple queries over
subregions of a time-step ... the velocity gradient (needed for the
computation of the vorticity) has 9 components compared with the 3
components of the velocity ... A Web-service request will be much larger
due to the overhead of wrapping the data in an xml format.  After the
field of interest is obtained locally the user has to threshold it"
(paper §5.3).  One collaborator measured this at over 20 hours per
timestep; the integrated server-side evaluation takes minutes.

:func:`local_threshold_evaluation` reproduces that workflow faithfully:
subregion-by-subregion gradient downloads over the modelled WAN, local
curl + norm computation, local thresholding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.mediator import Mediator
from repro.costmodel import Category, CostLedger
from repro.grid import Box
from repro.morton import encode_array


@dataclass
class LocalEvaluation:
    """Result and cost of the client-side baseline."""

    zindexes: np.ndarray
    values: np.ndarray
    ledger: CostLedger
    subqueries: int
    bytes_downloaded: int

    def __len__(self) -> int:
        return len(self.zindexes)

    @property
    def elapsed(self) -> float:
        return self.ledger.total


def local_threshold_evaluation(
    mediator: Mediator,
    dataset: str,
    timestep: int,
    threshold: float,
    chunk_side: int = 32,
    fd_order: int = 4,
) -> LocalEvaluation:
    """Threshold the vorticity *locally*, the way the paper's user did.

    Splits the timestep into ``chunk_side``-cubes ("requesting a derived
    field over an entire time-step will overload the network"), downloads
    each chunk's velocity-gradient tensor through the WAN model, derives
    the vorticity norm from the tensor's antisymmetric part on the client,
    and keeps the points at/above ``threshold``.

    Returns the same points the integrated evaluation produces, plus the
    (much larger) simulated cost.
    """
    side = mediator.nodes[0].dataset(dataset).side
    if side % chunk_side:
        raise ValueError(f"chunk side {chunk_side} does not divide domain {side}")
    ledger = CostLedger()
    all_z: list[np.ndarray] = []
    all_v: list[np.ndarray] = []
    subqueries = 0
    bytes_downloaded = 0
    for x0 in range(0, side, chunk_side):
        for y0 in range(0, side, chunk_side):
            for z0 in range(0, side, chunk_side):
                box = Box(
                    (x0, y0, z0),
                    (x0 + chunk_side, y0 + chunk_side, z0 + chunk_side),
                )
                tensor, chunk_ledger = mediator.get_gradient(
                    dataset, "velocity", timestep, box, fd_order
                )
                # Sequential downloads: the user's client issues them one
                # after another, so the chunks' times sum.
                ledger.add(chunk_ledger)
                subqueries += 1
                bytes_downloaded += tensor.size * 4
                # Client-side vorticity from the gradient tensor:
                # w_i = eps_ijk A_kj  ->  (A21-A12, A02-A20, A10-A01).
                vorticity = np.stack(
                    [
                        tensor[..., 2, 1] - tensor[..., 1, 2],
                        tensor[..., 0, 2] - tensor[..., 2, 0],
                        tensor[..., 1, 0] - tensor[..., 0, 1],
                    ],
                    axis=-1,
                )
                norm = np.linalg.norm(vorticity, axis=-1)
                # The local thresholding itself is "reasonably fast"; its
                # cost is charged as client compute at the server's rate.
                ledger.charge(
                    Category.COMPUTE,
                    mediator.spec.cpu.compute_time(box.volume, 0.1),
                )
                mask = norm >= threshold
                if mask.any():
                    ix, iy, iz = np.nonzero(mask)
                    all_z.append(encode_array(ix + x0, iy + y0, iz + z0))
                    all_v.append(norm[mask])
    zindexes = (
        np.concatenate(all_z) if all_z else np.empty(0, np.uint64)
    )
    values = np.concatenate(all_v) if all_v else np.empty(0, np.float64)
    order = np.argsort(zindexes, kind="stable")
    return LocalEvaluation(
        zindexes[order], values[order], ledger, subqueries, bytes_downloaded
    )
