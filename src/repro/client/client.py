"""The user-facing client: a thin facade over the mediator's web-services.

Mirrors the JHTDB client libraries: every method corresponds to one
web-service call, the evaluation happens server-side, and what comes
back is the (small) result plus the query's simulated wall time from the
end user's point of view — which is how the paper's measurements "were
taken" (§5.2).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.mediator import Mediator
from repro.core.query import (
    PdfQuery,
    PdfResult,
    ThresholdQuery,
    ThresholdResult,
    TopKQuery,
    TopKResult,
)
from repro.grid import Box


class TurbulenceClient:
    """A science user's handle on the turbulence database service."""

    def __init__(self, mediator: Mediator) -> None:
        self._mediator = mediator

    def get_threshold(
        self,
        dataset: str,
        field: str,
        timestep: int,
        threshold: float,
        box: Box | None = None,
        fd_order: int = 4,
        processes: int = 4,
    ) -> ThresholdResult:
        """All locations where the field norm is at/above ``threshold``.

        Raises:
            ThresholdTooLowError: the threshold matched more than the
                service's result limit; pick a higher one (see
                :meth:`get_pdf`).
        """
        query = ThresholdQuery(dataset, field, timestep, threshold, box, fd_order)
        return self._mediator.threshold(query, processes=processes)

    def get_pdf(
        self,
        dataset: str,
        field: str,
        timestep: int,
        bin_edges,
        fd_order: int = 4,
        processes: int = 4,
    ) -> PdfResult:
        """The distribution of the field norm over a timestep (Fig. 2)."""
        query = PdfQuery(dataset, field, timestep, tuple(bin_edges), fd_order)
        return self._mediator.pdf(query, processes=processes)

    def get_topk(
        self,
        dataset: str,
        field: str,
        timestep: int,
        k: int,
        fd_order: int = 4,
        processes: int = 4,
    ) -> TopKResult:
        """The k most intense locations of a timestep."""
        query = TopKQuery(dataset, field, timestep, k, fd_order)
        return self._mediator.topk(query, processes=processes)

    def suggest_threshold(
        self,
        dataset: str,
        field: str,
        timestep: int,
        target_points: int,
        fd_order: int = 4,
        resolution: int = 64,
    ) -> float:
        """A threshold expected to keep about ``target_points`` locations.

        Implements the workflow the paper prescribes when a threshold is
        set too low (§4): "examine the probability density function ...
        to guide the selection of threshold values."  Two PDF passes run
        server-side — a coarse one to bracket the scale, then a refined
        one over the tail — and the edge whose upper tail first drops to
        ``target_points`` is returned.

        Raises:
            ValueError: for a non-positive target.
        """
        if target_points <= 0:
            raise ValueError("target_points must be positive")
        # Pass 1: bracket the value range.
        probe = self.get_pdf(
            dataset, field, timestep,
            np.linspace(0.0, 1.0, 3), fd_order=fd_order,
        )
        total = probe.total_points
        if target_points >= total:
            return 0.0
        top = self.get_topk(dataset, field, timestep, k=1, fd_order=fd_order)
        maximum = float(top.values[0])
        # Pass 2: fine bins up to the maximum; walk the tail.
        edges = np.linspace(0.0, maximum, resolution)
        pdf = self.get_pdf(dataset, field, timestep, edges, fd_order=fd_order)
        tail = np.cumsum(pdf.counts[::-1])[::-1]
        for edge, above in zip(edges, tail):
            if above <= target_points:
                return float(edge)
        return maximum

    def get_field(
        self,
        dataset: str,
        field: str,
        timestep: int,
        box: Box,
        fd_order: int = 4,
    ) -> tuple[np.ndarray, float]:
        """A derived field's norm over a box, shipped to the client.

        Returns ``(array, simulated_seconds)``.  Large boxes are slow:
        the data cross the WAN with web-service overhead — exactly why
        server-side thresholding exists.
        """
        array, ledger = self._mediator.get_field(
            dataset, field, timestep, box, fd_order
        )
        return array, ledger.total

    def get_velocity_gradient(
        self, dataset: str, timestep: int, box: Box, fd_order: int = 4
    ) -> tuple[np.ndarray, float]:
        """The 9-component velocity-gradient tensor over a box."""
        tensor, ledger = self._mediator.get_gradient(
            dataset, "velocity", timestep, box, fd_order
        )
        return tensor, ledger.total
