"""Client-side view of the service: the web-service facade and baselines.

* :mod:`~repro.client.client` — :class:`TurbulenceClient`, the stand-in
  for the JHTDB's C/Fortran/Matlab client libraries calling the SOAP
  web-services.
* :mod:`~repro.client.baselines` — the paper's comparison points: the
  local (client-side) threshold evaluation that took a collaborator over
  20 hours (§5.3).
"""

from repro.client.client import TurbulenceClient
from repro.client.baselines import LocalEvaluation, local_threshold_evaluation

__all__ = [
    "LocalEvaluation",
    "TurbulenceClient",
    "local_threshold_evaluation",
]
