"""turbdb-repro: threshold queries of derived fields in a simulation database.

A from-scratch reproduction of Kanov, Burns & Lalescu, *"Efficient
evaluation of threshold queries of derived fields in a numerical
simulation database"* (EDBT 2015): a sharded relational database cluster
for numerical-simulation output, on-demand derived-field computation
(vorticity, Q/R invariants, electric current), distributed data-parallel
threshold/top-k/PDF queries, and the application-aware semantic cache
that makes repeated threshold queries over an order of magnitude faster.

Quickstart::

    from repro import build_cluster, mhd_dataset, TurbulenceClient
    from repro.obs import report

    dataset = mhd_dataset(side=64, timesteps=4)
    mediator = build_cluster(dataset, nodes=4)
    client = TurbulenceClient(mediator)

    result = client.get_threshold("mhd", "vorticity", timestep=0,
                                  threshold=3.0)
    report(len(result), "intense points in",
           f"{result.elapsed:.1f} simulated seconds")

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-figure reproductions.
"""

from repro.analysis import (
    Cluster,
    EventTrack,
    friends_of_friends,
    friends_of_friends_4d,
    norm_rms,
    threshold_at_rms_multiple,
    threshold_for_fraction,
    track_events,
)
from repro.client import TurbulenceClient, local_threshold_evaluation
from repro.cluster import DatabaseNode, Mediator, MortonPartitioner, build_cluster
from repro.core import (
    MAX_RESULT_POINTS,
    BatchThresholdResult,
    Landmark,
    LandmarkDatabase,
    PdfCache,
    PdfQuery,
    PdfResult,
    SemanticCache,
    ThresholdQuery,
    ThresholdResult,
    ThresholdTooLowError,
    TopKQuery,
    TopKResult,
)
from repro.costmodel import Category, ClusterSpec, CostLedger, paper_cluster
from repro.fields import default_registry
from repro.grid import Box
from repro.simulation import (
    channel_dataset,
    isotropic_dataset,
    load_dataset,
    mhd_dataset,
    save_dataset,
)

__version__ = "1.0.0"

__all__ = [
    "BatchThresholdResult",
    "Box",
    "Category",
    "Cluster",
    "ClusterSpec",
    "CostLedger",
    "DatabaseNode",
    "EventTrack",
    "Landmark",
    "LandmarkDatabase",
    "MAX_RESULT_POINTS",
    "PdfCache",
    "Mediator",
    "MortonPartitioner",
    "PdfQuery",
    "PdfResult",
    "SemanticCache",
    "ThresholdQuery",
    "ThresholdResult",
    "ThresholdTooLowError",
    "TopKQuery",
    "TopKResult",
    "TurbulenceClient",
    "build_cluster",
    "channel_dataset",
    "default_registry",
    "friends_of_friends",
    "friends_of_friends_4d",
    "isotropic_dataset",
    "load_dataset",
    "local_threshold_evaluation",
    "mhd_dataset",
    "norm_rms",
    "paper_cluster",
    "save_dataset",
    "threshold_at_rms_multiple",
    "threshold_for_fraction",
    "track_events",
]
