"""The engine's only sanctioned wall-clock boundary.

Engine invariant COST01/OBS01: simulated timings come from the cost
model, and *wall-clock* reads — needed by the observability layer for
span durations and latency histograms — live only inside ``repro.obs``.
Everything else in the engine measures wall time through the helpers
here, so a single grep (or turblint run) audits every clock access.
"""

from __future__ import annotations

import time


def now() -> float:
    """Monotonic wall-clock seconds (basis is arbitrary; use differences)."""
    return time.perf_counter()


def unix_now() -> float:
    """Seconds since the Unix epoch, for timestamping exported artifacts."""
    return time.time()


def sleep(seconds: float) -> None:
    """Block the calling thread for ``seconds`` of wall time.

    Real waits (retry backoff, poll intervals) are host interactions
    just like clock reads, so they live behind the same boundary; the
    simulated-time model never sleeps.
    """
    time.sleep(seconds)


class Stopwatch:
    """A context manager measuring the wall time of its body.

    Usage::

        with Stopwatch() as watch:
            do_work()
        report(f"took {watch.elapsed:.3f}s")

    ``elapsed`` is set on exit; :meth:`split` reads the running time of a
    still-open stopwatch.
    """

    __slots__ = ("start", "elapsed")

    def __init__(self) -> None:
        self.start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Stopwatch":
        self.start = now()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed = self.split()

    def split(self) -> float:
        """Wall seconds since the stopwatch was entered."""
        return now() - self.start
