"""turbtrace: the engine's observability layer.

Three pillars, one package:

* :mod:`repro.obs.tracing` — hierarchical spans with context-local
  propagation, carrying both wall-clock and simulated
  (:class:`~repro.costmodel.ledger.CostLedger`) time;
* :mod:`repro.obs.metrics` — a typed counter/gauge/histogram registry
  with labels, a cardinality cap, and Prometheus-text + JSON export;
* :mod:`repro.obs.report` — the console sink every human-facing line
  goes through.

This package is also the engine's *sanctioned wall-clock boundary*:
turblint's COST01 and OBS01 checkers ban ``time.*`` and ``print``
everywhere else under ``repro.``, so every real-clock read and every
console write is auditable here (:mod:`repro.obs.clock`).

Instrumentation is near-zero-cost by default: the module-level
:data:`~repro.obs.tracing.TRACER` hands out a shared no-op span until
:func:`install` plugs in a :class:`TraceCollector`::

    from repro import obs

    trace = obs.install()               # start recording
    result = mediator.threshold(...)    # spans now collected
    obs.report(obs.render_tree(trace.trace(result.query_id)))
    obs.uninstall()
"""

from __future__ import annotations

from repro.obs.clock import Stopwatch
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    timed,
)
from repro.obs.profile import SamplingProfiler
from repro.obs.report import ConsoleSink, get_stream, report, set_stream
from repro.obs.tracing import (
    TRACER,
    Span,
    SpanBuffer,
    SpanContext,
    TraceCollector,
    Tracer,
    absorb_remote,
    category_totals,
    clock_skew_offset,
    collector,
    current_context,
    current_span,
    graft_spans,
    install,
    mark_orphaned,
    new_trace_id,
    remote_request,
    render_tree,
    set_remote_sampling,
    span,
    uninstall,
)

__all__ = [
    "Stopwatch",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "timed",
    "SamplingProfiler",
    "ConsoleSink",
    "get_stream",
    "report",
    "set_stream",
    "TRACER",
    "Span",
    "SpanBuffer",
    "SpanContext",
    "TraceCollector",
    "Tracer",
    "absorb_remote",
    "category_totals",
    "clock_skew_offset",
    "collector",
    "current_context",
    "current_span",
    "graft_spans",
    "install",
    "mark_orphaned",
    "new_trace_id",
    "remote_request",
    "render_tree",
    "set_remote_sampling",
    "span",
    "uninstall",
]
