"""Continuous profiling: a low-overhead thread-sampling profiler.

:class:`SamplingProfiler` periodically snapshots every thread's Python
stack via ``sys._current_frames()`` from a dedicated daemon thread — no
``sys.setprofile``/``sys.settrace`` hooks, so the profiled code runs at
full speed between samples and the steady-state overhead is the cost of
one stack walk per thread every ``interval`` seconds (well under 5 % at
the default 5 ms period; ``benchmarks/bench_slo.py`` measures and gates
this).

Output is the collapsed-stack format flamegraph tooling eats
(``frame;frame;frame count`` per line).  When span tracking is on, each
sample is additionally keyed to the innermost open tracing span of the
sampled thread (:func:`repro.obs.tracing.span_for_thread`), so profiles
join against distributed traces: given a p99 exemplar's trace id, the
profile shows where that query's wall time went.

Attach per process (``serve-node --profile out.txt``) or per query::

    with SamplingProfiler(interval=0.005) as profiler:
        mediator.threshold(query)
    report(profiler.render_collapsed())
"""

from __future__ import annotations

import sys
import threading
from collections import Counter
from pathlib import Path
from types import FrameType

from repro.obs import tracing

#: Default seconds between stack samples (200 Hz).
DEFAULT_INTERVAL = 0.005

#: Frames deeper than this are truncated (guards pathological recursion).
MAX_STACK_DEPTH = 64

#: Collapsed-stack strings memoised per distinct frame chain; cleared
#: wholesale past this size so a pathological workload can't grow it
#: without bound.
STACK_CACHE_LIMIT = 8192


def _frame_label(frame: FrameType) -> str:
    """One collapsed-stack element: ``module:function``."""
    module = frame.f_globals.get("__name__", "?")
    return f"{module}:{frame.f_code.co_name}"


def _collapse(frame: FrameType | None) -> str:
    """A frame chain as a root-first semicolon-joined stack string."""
    labels: list[str] = []
    depth = 0
    while frame is not None and depth < MAX_STACK_DEPTH:
        labels.append(_frame_label(frame))
        frame = frame.f_back
        depth += 1
    labels.reverse()
    return ";".join(labels)


def _span_key(span: "tracing.Span | None") -> str:
    """A stable label tying samples to one span of one trace."""
    if span is None:
        return ""
    return f"{span.trace_id}/{span.span_id}:{span.name}"


class SamplingProfiler:
    """Samples every thread's stack from a background daemon thread.

    Args:
        interval: seconds between samples.
        track_spans: also key samples to the sampled thread's open
            tracing span (enables the thread→span table, one dict write
            per span enter/exit while any tracking profiler runs).
    """

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        track_spans: bool = True,
    ) -> None:
        if interval <= 0:
            raise ValueError("the sampling interval must be positive")
        self.interval = interval
        self.track_spans = track_spans
        self._lock = threading.Lock()
        self._counts: Counter[tuple[str, str]] = Counter()
        self._samples = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        # Sampler-thread-only caches (never locked).  Every sample holds
        # the GIL while it walks frames, so per-sample work is stolen
        # directly from the profiled code; memoising labels per code
        # object and collapsed strings per frame chain turns the common
        # case — dozens of blocked threads parked on the same stack —
        # into one dict hit per thread.  The label cache pins its code
        # objects, which is what makes id()-keyed chains safe.
        self._labels: dict[int, tuple[object, str]] = {}
        self._stacks: dict[tuple[int, ...], str] = {}
        # Per-thread memo: ident -> (top frame id, f_lasti, stack).  A
        # thread parked in a C call (lock wait, socket recv) keeps the
        # same live top frame at the same instruction, so its whole
        # chain is unchanged and the walk can be skipped entirely.
        self._last: dict[int, tuple[int, int, str]] = {}

    # -- lifecycle -----------------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether the sampling thread is live."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        """Start sampling; idempotent while already running."""
        if self.running:
            return self
        if self.track_spans:
            tracing.enable_thread_spans()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._sample_loop, name="obs-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop sampling and join the sampler thread (idempotent)."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None
        if self.track_spans:
            tracing.disable_thread_spans()

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- sampling ------------------------------------------------------------

    def _collapse_cached(self, frame: FrameType | None) -> str:
        """Like :func:`_collapse`, memoised by the chain of code objects.

        Labels depend only on the code object (module:function, no line
        numbers), so the collapsed string is a pure function of the
        frame chain's code identities.
        """
        chain: list[FrameType] = []
        key: list[int] = []
        depth = 0
        while frame is not None and depth < MAX_STACK_DEPTH:
            chain.append(frame)
            key.append(id(frame.f_code))
            frame = frame.f_back
            depth += 1
        chain_key = tuple(key)
        stack = self._stacks.get(chain_key)
        if stack is None:
            labels = []
            for hot in chain:
                code = hot.f_code
                entry = self._labels.get(id(code))
                if entry is None or entry[0] is not code:
                    entry = (code, _frame_label(hot))
                    self._labels[id(code)] = entry
                labels.append(entry[1])
            labels.reverse()
            stack = ";".join(labels)
            if len(self._stacks) >= STACK_CACHE_LIMIT:
                self._stacks.clear()
            self._stacks[chain_key] = stack
        return stack

    def _sample_loop(self) -> None:
        own = threading.get_ident()
        while not self._stop.wait(self.interval):
            # _current_frames is a point-in-time snapshot taken under
            # the GIL; frames may advance while we walk them, which at
            # worst misattributes one sample by one line.
            frames = sys._current_frames()
            batch: list[tuple[str, str]] = []
            memo = self._last
            for ident, frame in frames.items():
                if ident == own:
                    continue
                lasti = frame.f_lasti
                entry = memo.get(ident)
                if (
                    entry is not None
                    and entry[0] == id(frame)
                    and entry[1] == lasti
                ):
                    stack = entry[2]
                else:
                    stack = self._collapse_cached(frame)
                    memo[ident] = (id(frame), lasti, stack)
                if not stack:
                    continue
                span = (
                    tracing.span_for_thread(ident)
                    if self.track_spans
                    else None
                )
                batch.append((_span_key(span), stack))
            if batch:
                with self._lock:
                    self._counts.update(batch)
                    self._samples += len(batch)
            if len(memo) > 2 * len(frames):  # drop exited threads
                self._last = {
                    ident: entry
                    for ident, entry in memo.items()
                    if ident in frames
                }

    # -- results -------------------------------------------------------------

    @property
    def samples(self) -> int:
        """Total stack samples recorded so far."""
        with self._lock:
            return self._samples

    def collapsed(self) -> dict[str, int]:
        """Collapsed stacks summed over all spans: ``{stack: count}``."""
        with self._lock:
            out: dict[str, int] = {}
            for (_, stack), count in self._counts.items():
                out[stack] = out.get(stack, 0) + count
            return out

    def collapsed_by_span(self) -> dict[str, dict[str, int]]:
        """Collapsed stacks keyed by span: ``{span_key: {stack: count}}``.

        The span key is ``trace_id/span_id:name`` (empty string for
        samples taken outside any tracked span).
        """
        with self._lock:
            out: dict[str, dict[str, int]] = {}
            for (span_key, stack), count in self._counts.items():
                per_span = out.setdefault(span_key, {})
                per_span[stack] = per_span.get(stack, 0) + count
            return out

    def for_trace(self, trace_id: str) -> dict[str, int]:
        """Collapsed stacks for one trace's spans only."""
        prefix = f"{trace_id}/"
        with self._lock:
            out: dict[str, int] = {}
            for (span_key, stack), count in self._counts.items():
                if span_key.startswith(prefix):
                    out[stack] = out.get(stack, 0) + count
            return out

    def render_collapsed(self, by_span: bool = False) -> str:
        """The flamegraph-compatible text output, one stack per line.

        With ``by_span`` each stack is prefixed by its span key, so one
        file holds every query's profile side by side.
        """
        lines: list[str] = []
        if by_span:
            for span_key, stacks in sorted(self.collapsed_by_span().items()):
                label = span_key or "<unattributed>"
                for stack, count in sorted(stacks.items()):
                    lines.append(f"{label};{stack} {count}")
        else:
            for stack, count in sorted(self.collapsed().items()):
                lines.append(f"{stack} {count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def write(self, path: "Path | str", by_span: bool = False) -> Path:
        """Write the collapsed-stack output to ``path``; returns it."""
        target = Path(path)
        target.write_text(self.render_collapsed(by_span=by_span))
        return target

    def clear(self) -> None:
        """Drop every recorded sample (the profiler keeps running)."""
        with self._lock:
            self._counts.clear()
            self._samples = 0
