"""Typed metrics: counters, gauges, histograms, with labels and exporters.

A :class:`MetricsRegistry` names a family of instruments.  Instruments
are cheap, thread-safe and label-aware: ``registry.counter(...)`` returns
the family, ``family.labels(kind="threshold")`` a concrete series.  For
hot-path statistics the engine already tracks as plain integers (buffer-
pool hits, B+-tree splits...), :meth:`MetricsRegistry.gauge_callback`
registers a sampling function evaluated only at export time, so the hot
path pays nothing.

Exports come in two shapes: :meth:`MetricsRegistry.render_prometheus`
(the text exposition format scraped by ``GET /stats``) and
:meth:`MetricsRegistry.to_dict` (JSON-able, used by the dictionary web
service and the BENCH history files).

Label cardinality is bounded per family (``max_series``); exceeding it
raises instead of silently growing without limit — instrument call sites
must map unbounded inputs (user strings, paths) to a closed label set.
"""

from __future__ import annotations

import bisect
import re
import threading
from typing import Callable, Iterator, Mapping, Sequence

from repro.obs import clock

#: Default ceiling on distinct label-value combinations per family.
DEFAULT_MAX_SERIES = 256

#: Default histogram buckets (upper bounds, seconds-flavoured).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
)

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format."""
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _escape_help(text: str) -> str:
    """Escape HELP text per the exposition format (backslash, newline).

    A raw newline in help text would otherwise split the comment line
    and corrupt everything after it for scrapers.
    """
    return text.replace("\\", r"\\").replace("\n", r"\n")


class Counter:
    """A monotonically-increasing series."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The counter's current total."""
        with self._lock:
            return self._value


class Gauge:
    """A series that can go up and down."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to an absolute value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` to the gauge."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        """The gauge's current value."""
        with self._lock:
            return self._value


class Histogram:
    """A distribution summarised by fixed buckets plus sum and count.

    Buckets are upper bounds; observations above the last bound land in
    the implicit ``+Inf`` bucket.  Export renders cumulative counts in
    the Prometheus style.

    An observation may carry an **exemplar** — a trace id sampled into
    the bucket it landed in (last write wins per bucket).  Exemplars
    are the join key from latency percentiles back to distributed
    traces: the p99 bucket of ``rpc_latency_seconds`` names a concrete
    trace whose stitched tree explains the tail.
    """

    def __init__(self, buckets: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.buckets = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0
        self._exemplars: list[tuple[str, float, float] | None] = [None] * (
            len(bounds) + 1
        )

    def observe(self, value: float, exemplar: str | None = None) -> None:
        """Record one observation, optionally tagged with a trace id."""
        idx = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1
            if exemplar is not None:
                self._exemplars[idx] = (exemplar, value, clock.unix_now())

    @property
    def sum(self) -> float:
        """Sum of all observations."""
        with self._lock:
            return self._sum

    @property
    def count(self) -> int:
        """Number of observations."""
        with self._lock:
            return self._count

    @property
    def mean(self) -> float:
        """Mean observation, or ``0.0`` before the first one.

        Handy for ratio-style histograms (``net_compression_ratio``)
        where the average is the headline number.
        """
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def bucket_counts(self) -> dict[str, int]:
        """Cumulative count per upper bound (Prometheus ``le`` semantics)."""
        with self._lock:
            counts = list(self._counts)
        out: dict[str, int] = {}
        running = 0
        for bound, count in zip(self.buckets, counts):
            running += count
            out[repr(bound)] = running
        out["+Inf"] = running + counts[-1]
        return out

    def exemplars(self) -> dict[str, tuple[str, float, float]]:
        """Per-bucket exemplars: ``le`` bound → (trace id, value, unix ts)."""
        with self._lock:
            records = list(self._exemplars)
        out: dict[str, tuple[str, float, float]] = {}
        for bound, record in zip(self.buckets, records):
            if record is not None:
                out[repr(bound)] = record
        if records[-1] is not None:
            out["+Inf"] = records[-1]
        return out


class MetricFamily:
    """A named instrument family: one series per label-value combination.

    Obtained from the registry's :meth:`~MetricsRegistry.counter`,
    :meth:`~MetricsRegistry.gauge` or :meth:`~MetricsRegistry.histogram`.
    Families without labels delegate the series API (``inc``/``set``/
    ``observe``...) directly, so ``registry.counter("x").inc()`` works.
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Sequence[str],
        factory: Callable[[], Counter | Gauge | Histogram],
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self._factory = factory
        self._max_series = max_series
        self._lock = threading.Lock()
        self._series: dict[tuple[str, ...], Counter | Gauge | Histogram] = {}
        if not self.labelnames:
            self._series[()] = factory()

    def labels(self, **labels: object):
        """The series for one label-value combination (created on demand).

        Raises:
            ValueError: on wrong label names, or when creating the series
                would exceed the family's ``max_series`` cardinality cap.
        """
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                if len(self._series) >= self._max_series:
                    raise ValueError(
                        f"metric {self.name!r} exceeds its cardinality cap "
                        f"of {self._max_series} series"
                    )
                series = self._factory()
                self._series[key] = series
            return series

    def _unlabelled(self):
        if self.labelnames:
            raise ValueError(
                f"metric {self.name!r} has labels {self.labelnames}; "
                "select a series with .labels(...)"
            )
        return self._series[()]

    def inc(self, amount: float = 1.0) -> None:
        """``inc`` on the single series of a label-less family."""
        self._unlabelled().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        """``dec`` on the single series of a label-less gauge family."""
        self._unlabelled().dec(amount)

    def set(self, value: float) -> None:
        """``set`` on the single series of a label-less gauge family."""
        self._unlabelled().set(value)

    def observe(self, value: float, exemplar: str | None = None) -> None:
        """``observe`` on the single series of a label-less histogram."""
        self._unlabelled().observe(value, exemplar)

    def exemplars(self) -> dict[str, tuple[str, float, float]]:
        """``exemplars`` of the single series of a label-less histogram."""
        return self._unlabelled().exemplars()  # type: ignore[union-attr]

    @property
    def value(self) -> float:
        """Value of the single series of a label-less counter/gauge."""
        return self._unlabelled().value

    @property
    def sum(self) -> float:
        """``sum`` of the single series of a label-less histogram."""
        return self._unlabelled().sum

    @property
    def count(self) -> int:
        """``count`` of the single series of a label-less histogram."""
        return self._unlabelled().count

    def series(self) -> Iterator[tuple[tuple[str, ...], Counter | Gauge | Histogram]]:
        """Snapshot of ``(label_values, series)`` pairs."""
        with self._lock:
            return iter(list(self._series.items()))


class MetricsRegistry:
    """A namespace of instrument families plus sampling callbacks.

    One registry per observed system (each :class:`~repro.cluster.mediator.
    Mediator` owns its own), so concurrent clusters in one process never
    collide on metric names.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}
        self._callbacks: dict[str, tuple[Callable[[], float], str]] = {}

    # -- instrument creation ------------------------------------------------

    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Sequence[str],
        factory: Callable[[], Counter | Gauge | Histogram],
        max_series: int,
    ) -> MetricFamily:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing.kind != kind or existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}{existing.labelnames}"
                    )
                return existing
            if name in self._callbacks:
                raise ValueError(f"metric {name!r} already registered as callback")
            family = MetricFamily(name, kind, help, labelnames, factory, max_series)
            self._families[name] = family
            return family

    def counter(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> MetricFamily:
        """Create (or fetch, idempotently) a counter family."""
        return self._family(name, "counter", help, labelnames, Counter, max_series)

    def gauge(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> MetricFamily:
        """Create (or fetch, idempotently) a gauge family."""
        return self._family(name, "gauge", help, labelnames, Gauge, max_series)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> MetricFamily:
        """Create (or fetch, idempotently) a histogram family."""
        bounds = tuple(buckets)
        return self._family(
            name, "histogram", help, labelnames,
            lambda: Histogram(bounds), max_series,
        )

    def gauge_callback(
        self, name: str, fn: Callable[[], float], help: str = ""
    ) -> None:
        """Register a gauge sampled by calling ``fn`` at export time.

        This is the zero-overhead path for statistics the engine already
        keeps as plain attributes (buffer-pool hit counts, MVCC
        counters): nothing happens until someone scrapes.
        """
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        with self._lock:
            if name in self._families or name in self._callbacks:
                raise ValueError(f"metric {name!r} already registered")
            self._callbacks[name] = (fn, help)

    # -- introspection -------------------------------------------------------

    def get(self, name: str) -> MetricFamily:
        """Look up a family by name.  Raises :class:`KeyError` if absent."""
        with self._lock:
            return self._families[name]

    def names(self) -> list[str]:
        """All registered metric names (families and callbacks), sorted."""
        with self._lock:
            return sorted([*self._families, *self._callbacks])

    # -- export --------------------------------------------------------------

    def _snapshot(self) -> tuple[list[MetricFamily], dict[str, tuple[Callable[[], float], str]]]:
        with self._lock:
            return list(self._families.values()), dict(self._callbacks)

    def to_dict(self) -> dict[str, dict]:
        """A JSON-able snapshot of every metric."""
        families, callbacks = self._snapshot()
        out: dict[str, dict] = {}
        for family in sorted(families, key=lambda f: f.name):
            samples = []
            for label_values, series in family.series():
                labels = dict(zip(family.labelnames, label_values))
                if isinstance(series, Histogram):
                    sample: dict = {
                        "labels": labels,
                        "buckets": series.bucket_counts(),
                        "sum": series.sum,
                        "count": series.count,
                    }
                    exemplars = series.exemplars()
                    if exemplars:
                        sample["exemplars"] = {
                            bound: {
                                "trace_id": trace_id,
                                "value": value,
                                "timestamp": stamp,
                            }
                            for bound, (trace_id, value, stamp)
                            in exemplars.items()
                        }
                    samples.append(sample)
                else:
                    samples.append({"labels": labels, "value": series.value})
            out[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "samples": samples,
            }
        for name in sorted(callbacks):
            fn, help = callbacks[name]
            out[name] = {
                "kind": "gauge",
                "help": help,
                "samples": [{"labels": {}, "value": float(fn())}],
            }
        return out

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format for every metric.

        ``# HELP``/``# TYPE`` comment lines are emitted exactly once per
        family (however many labelled series it holds), help text and
        label values are escaped per the exposition format, and bucket
        lines carry OpenMetrics-style exemplars when the histogram
        recorded any.
        """
        families, callbacks = self._snapshot()
        lines: list[str] = []
        for family in sorted(families, key=lambda f: f.name):
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for label_values, series in family.series():
                labels = dict(zip(family.labelnames, label_values))
                if isinstance(series, Histogram):
                    exemplars = series.exemplars()
                    for bound, count in series.bucket_counts().items():
                        bucket_labels = {**labels, "le": bound}
                        line = (
                            f"{family.name}_bucket"
                            f"{_render_labels(bucket_labels)} {count}"
                        )
                        exemplar = exemplars.get(bound)
                        if exemplar is not None:
                            trace_id, value, stamp = exemplar
                            line += (
                                f" # {{trace_id=\""
                                f"{_escape_label_value(trace_id)}\"}} "
                                f"{value} {stamp}"
                            )
                        lines.append(line)
                    lines.append(
                        f"{family.name}_sum{_render_labels(labels)} {series.sum}"
                    )
                    lines.append(
                        f"{family.name}_count{_render_labels(labels)} {series.count}"
                    )
                else:
                    lines.append(
                        f"{family.name}{_render_labels(labels)} {series.value}"
                    )
        for name in sorted(callbacks):
            fn, help = callbacks[name]
            lines.append(f"# HELP {name} {_escape_help(help)}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {float(fn())}")
        return "\n".join(lines) + "\n"


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in labels.items()
    )
    return "{" + body + "}"


class timed:
    """Context manager observing its body's wall time into a histogram.

    The wall-clock read happens here, inside ``repro.obs`` — call sites
    elsewhere in the engine stay clean under COST01/OBS01::

        with timed(latency.labels(method="GetThreshold")):
            handle(request)
    """

    __slots__ = ("_instrument", "_start")

    def __init__(self, instrument: Histogram | MetricFamily) -> None:
        self._instrument = instrument
        self._start = 0.0

    def __enter__(self) -> "timed":
        self._start = clock.now()
        return self

    def __exit__(self, *exc: object) -> None:
        self._instrument.observe(clock.now() - self._start)
