"""Hierarchical query tracing: spans, context propagation, collection.

A :class:`Span` covers one phase of a query (the whole query, one node
part, a cache probe, a slab's raw I/O...).  Spans carry *two* clocks:

* wall time (start/end via :mod:`repro.obs.clock`) — what the process
  actually did;
* an attached :class:`~repro.costmodel.ledger.CostLedger` snapshot —
  the *simulated* seconds the paper's evaluation reasons about, broken
  down into the Figure-9 categories (cache-lookup / I/O / compute /
  mediator-db / mediator-user).

Spans nest through a :mod:`contextvars` variable, so concurrently
executing queries (and the mediator's scatter-pool threads, which run
each node part under a copied context) build separate trees.  With no
collector installed the module-level :data:`TRACER` hands out a shared
no-op span: instrumentation costs one attribute check per call site.

Finished spans go to a :class:`TraceCollector`, which keeps a bounded
ring of recent traces keyed by trace id (the mediator's query id) and
exports them as JSON lines — the format ``python -m repro.obs`` renders
back into a tree.

Traces also cross process boundaries.  A :class:`SpanContext` is the
wire-portable identity of an open span (trace id, span id, sampling
flag): the RPC client injects it into the request header, the node
server installs it with :func:`remote_request` so every server-side
span parents under the originating mediator span, and the finished
spans ship back piggybacked on the response, where
:func:`absorb_remote` grafts them into the local trace — remapping
span ids (every process numbers its own), re-anchoring orphans, and
aligning the remote clock with a midpoint skew offset
(:func:`clock_skew_offset`), since ``clock.now()`` has an arbitrary
per-process basis.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Iterable, Iterator
from contextlib import contextmanager

from repro.obs import clock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.costmodel import CostLedger

#: The innermost open span of the current execution context.
_CURRENT_SPAN: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_obs_span", default=None
)

#: Per-request buffer for spans finished while serving a *remote* trace
#: context (node-server processes run no collector; see remote_request).
_SPAN_SINK: contextvars.ContextVar["SpanBuffer | None"] = contextvars.ContextVar(
    "repro_obs_span_sink", default=None
)

#: thread ident -> innermost open span; ``None`` unless a sampling
#: profiler asked for span attribution (see enable_thread_spans).  Kept
#: a plain module global so the off state costs one load + is-check.
_THREAD_SPANS: "dict[int, Span] | None" = None


class Span:
    """One timed phase of a query, linked into a trace tree.

    Use as a context manager (turblint OBS01 enforces this — it is what
    guarantees every span closes on every path)::

        with tracer.span("cache.lookup", category="cache_lookup") as span:
            ...
            span.attach_ledger(ledger)
    """

    __slots__ = (
        "trace_id", "span_id", "parent_id", "name", "category",
        "start", "end", "attributes", "breakdown", "meters", "thread",
        "_tracer", "_token",
    )

    def __init__(
        self,
        trace_id: str,
        span_id: int,
        parent_id: int | None,
        name: str,
        category: str | None,
        attributes: dict[str, object],
        tracer: "Tracer | None" = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.start = 0.0
        self.end: float | None = None
        self.attributes = attributes
        self.breakdown: dict[str, float] | None = None
        self.meters: dict[str, float] | None = None
        self.thread = ""
        self._tracer = tracer
        self._token: contextvars.Token | None = None

    @property
    def wall_seconds(self) -> float:
        """Wall-clock duration (0.0 while the span is still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def set(self, key: str, value: object) -> None:
        """Attach one attribute to the span."""
        self.attributes[key] = value

    def attach_ledger(self, ledger: "CostLedger") -> None:
        """Snapshot a ledger's per-category seconds and meters onto the span.

        The snapshot copies, so later charges to the ledger do not
        retroactively alter the recorded span.
        """
        self.breakdown = ledger.breakdown()
        self.meters = {
            name: ledger.meter(name)
            for name in ("io_bytes", "io_seeks", "cache_bytes",
                         "compute_units", "result_points",
                         "halo_seconds", "halo_bytes")
            if ledger.meter(name)
        }

    def __enter__(self) -> "Span":
        self.start = clock.now()
        self.thread = threading.current_thread().name
        self._token = _CURRENT_SPAN.set(self)
        if _THREAD_SPANS is not None:
            _THREAD_SPANS[threading.get_ident()] = self
        return self

    def __exit__(self, *exc: object) -> None:
        self.end = clock.now()
        if self._token is not None:
            _CURRENT_SPAN.reset(self._token)
            self._token = None
        table = _THREAD_SPANS
        if table is not None:
            outer = _CURRENT_SPAN.get()
            ident = threading.get_ident()
            if outer is None:
                table.pop(ident, None)
            else:
                table[ident] = outer
        sink = _SPAN_SINK.get()
        if sink is not None:
            sink.record(self)
        elif self._tracer is not None and self._tracer._collector is not None:
            self._tracer._collector.record(self)

    # -- serialization -------------------------------------------------------

    def to_json(self) -> dict[str, object]:
        """A JSON-able record of the finished span."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "end": self.end,
            "thread": self.thread,
            "attributes": self.attributes,
            "breakdown": self.breakdown,
            "meters": self.meters,
        }

    @classmethod
    def from_json(cls, record: dict[str, object]) -> "Span":
        """Rebuild a span from :meth:`to_json` output."""
        span = cls(
            trace_id=str(record["trace_id"]),
            span_id=int(record["span_id"]),  # type: ignore[arg-type]
            parent_id=(
                None if record.get("parent_id") is None
                else int(record["parent_id"])  # type: ignore[arg-type]
            ),
            name=str(record["name"]),
            category=(
                None if record.get("category") is None
                else str(record["category"])
            ),
            attributes=dict(record.get("attributes") or {}),  # type: ignore[arg-type]
        )
        span.start = float(record.get("start") or 0.0)  # type: ignore[arg-type]
        span.end = (
            None if record.get("end") is None
            else float(record["end"])  # type: ignore[arg-type]
        )
        span.thread = str(record.get("thread") or "")
        breakdown = record.get("breakdown")
        span.breakdown = None if breakdown is None else dict(breakdown)  # type: ignore[arg-type]
        meters = record.get("meters")
        span.meters = None if meters is None else dict(meters)  # type: ignore[arg-type]
        return span


class _NoopSpan:
    """The shared do-nothing span handed out when no collector is installed."""

    __slots__ = ()

    #: Identity fields, so instrumentation reading ``span.trace_id``
    #: (e.g. for metric exemplars) works against the no-op span too.
    trace_id = ""
    span_id = 0
    parent_id = None
    name = ""

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set(self, key: str, value: object) -> None:
        """No-op."""

    def attach_ledger(self, ledger: "CostLedger") -> None:
        """No-op."""


_NOOP_SPAN = _NoopSpan()


class SpanContext:
    """The wire-portable identity of an open span.

    What crosses a process boundary: enough for the far side to parent
    its spans under ours (``trace_id`` + ``span_id``) plus the sampling
    flag that tells it whether to bother capturing at all.
    """

    __slots__ = ("trace_id", "span_id", "sampled")

    def __init__(self, trace_id: str, span_id: int, sampled: bool = True) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.sampled = sampled

    def to_wire(self) -> dict[str, object]:
        """The JSON-header encoding carried by protocol-v2 messages."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "sampled": self.sampled,
        }

    @classmethod
    def from_wire(cls, record: object) -> "SpanContext | None":
        """Parse a wire encoding; ``None`` for absent/malformed records."""
        if not isinstance(record, dict):
            return None
        trace_id = record.get("trace_id")
        span_id = record.get("span_id")
        if not isinstance(trace_id, str) or not isinstance(span_id, int):
            return None
        return cls(trace_id, span_id, bool(record.get("sampled", True)))


class SpanBuffer:
    """Collects the spans finished while serving one remote request.

    Node-server processes run no :class:`TraceCollector`; spans opened
    under an installed remote context land here instead (thread-safe —
    a request may finish spans on several threads) and ship back to the
    caller piggybacked on the response.
    """

    __slots__ = ("_lock", "_spans")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: list[Span] = []

    def record(self, span: "Span") -> None:
        """Store one finished span (the sink analogue of a collector)."""
        with self._lock:
            self._spans.append(span)

    def spans(self) -> "list[Span]":
        """Snapshot of the buffered spans."""
        with self._lock:
            return list(self._spans)

    def to_wire(self) -> list[dict[str, object]]:
        """The buffered spans as JSON records, ready to piggyback."""
        return [span.to_json() for span in self.spans()]


@contextmanager
def remote_request(
    context: "SpanContext | None",
) -> "Iterator[SpanBuffer | None]":
    """Serve one request under a remote caller's trace context.

    Installs a synthetic parent carrying the remote ``trace_id``/
    ``span_id`` and a :class:`SpanBuffer` sink, so every span the
    request opens (executor, cache, storage, halo) is captured *without
    a collector* and parents under the originating span.  Yields the
    buffer — or ``None`` (and changes nothing) when the caller sent no
    context or flagged the request unsampled, which keeps the untraced
    hot path free of contextvar churn.
    """
    if context is None or not context.sampled:
        yield None
        return
    parent = Span(
        trace_id=context.trace_id,
        span_id=context.span_id,
        parent_id=None,
        name="<remote-parent>",
        category=None,
        attributes={},
    )
    buffer = SpanBuffer()
    span_token = _CURRENT_SPAN.set(parent)
    sink_token = _SPAN_SINK.set(buffer)
    try:
        yield buffer
    finally:
        _SPAN_SINK.reset(sink_token)
        _CURRENT_SPAN.reset(span_token)


class TraceCollector:
    """A bounded ring of finished spans grouped by trace id.

    Args:
        max_traces: oldest traces are evicted past this count.
    """

    def __init__(self, max_traces: int = 256) -> None:
        if max_traces < 1:
            raise ValueError("max_traces must be >= 1")
        self._max_traces = max_traces
        self._lock = threading.Lock()
        self._traces: OrderedDict[str, list[Span]] = OrderedDict()

    def record(self, span: Span) -> None:
        """Store one finished span (called by the span's ``__exit__``)."""
        with self._lock:
            spans = self._traces.get(span.trace_id)
            if spans is None:
                spans = self._traces[span.trace_id] = []
                while len(self._traces) > self._max_traces:
                    self._traces.popitem(last=False)
            spans.append(span)

    def trace(self, trace_id: str) -> list[Span]:
        """All spans of one trace, ordered by start time (root first)."""
        with self._lock:
            spans = list(self._traces.get(trace_id, ()))
        return sorted(spans, key=lambda s: (s.start, s.span_id))

    def trace_ids(self) -> list[str]:
        """Known trace ids, oldest first."""
        with self._lock:
            return list(self._traces)

    def clear(self) -> None:
        """Drop every stored trace."""
        with self._lock:
            self._traces.clear()

    # -- serialization -------------------------------------------------------

    def to_jsonl(self, trace_id: str | None = None) -> str:
        """The stored spans as JSON lines (one span per line).

        Args:
            trace_id: restrict to one trace; default exports everything.
        """
        if trace_id is not None:
            spans = self.trace(trace_id)
        else:
            spans = [
                span for tid in self.trace_ids() for span in self.trace(tid)
            ]
        return "".join(json.dumps(span.to_json()) + "\n" for span in spans)

    @staticmethod
    def from_jsonl(text: str | Iterable[str]) -> list[Span]:
        """Parse JSON lines back into spans (inverse of :meth:`to_jsonl`)."""
        lines = text.splitlines() if isinstance(text, str) else text
        return [
            Span.from_json(json.loads(line))
            for line in lines
            if line.strip()
        ]


class Tracer:
    """Hands out spans; a no-op until a collector is installed."""

    def __init__(self) -> None:
        self._collector: TraceCollector | None = None
        self._span_ids = itertools.count(1)
        self._trace_ids = itertools.count(1)
        #: Whether outgoing RPCs ask the far side to capture spans.
        self.remote_sampling = True

    @property
    def enabled(self) -> bool:
        """Whether a collector is installed (spans are being recorded)."""
        return self._collector is not None

    def install(self, collector: TraceCollector) -> TraceCollector:
        """Start recording spans into ``collector``; returns it."""
        self._collector = collector
        return collector

    def uninstall(self) -> None:
        """Stop recording; subsequent spans are no-ops again."""
        self._collector = None

    @property
    def collector(self) -> TraceCollector | None:
        """The installed collector, if any."""
        return self._collector

    def new_trace_id(self) -> str:
        """A fresh query/trace id (issued even while tracing is off, so
        query ids stay stable whether or not a collector is watching)."""
        return f"q{next(self._trace_ids):06d}"

    def next_span_id(self) -> int:
        """A fresh span id — used when grafting remote spans, whose own
        ids come from another process's counter and may collide."""
        return next(self._span_ids)

    def span(
        self,
        name: str,
        category: str | None = None,
        trace_id: str | None = None,
        **attributes: object,
    ) -> Span | _NoopSpan:
        """Open a span nested under the context's current span.

        Args:
            name: phase name (``"query.threshold"``, ``"node.io"``...).
            category: the Figure-9 cost category this phase's wall time
                belongs to, when it maps to exactly one.
            trace_id: root spans of a query pass the query id; child
                spans inherit the parent's trace.
            **attributes: initial span attributes.

        Returns a shared no-op span when no collector is installed and
        no remote request is being served (see :func:`remote_request`).
        """
        if self._collector is None and _SPAN_SINK.get() is None:
            return _NOOP_SPAN
        parent = _CURRENT_SPAN.get()
        if trace_id is None:
            trace_id = parent.trace_id if parent is not None else self.new_trace_id()
        return Span(
            trace_id=trace_id,
            span_id=next(self._span_ids),
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            category=category,
            attributes=dict(attributes),
            tracer=self,
        )


#: The process-wide tracer every engine tier reports through.
TRACER = Tracer()


def span(
    name: str,
    category: str | None = None,
    trace_id: str | None = None,
    **attributes: object,
) -> Span | _NoopSpan:
    """Open a span on the default tracer (see :meth:`Tracer.span`)."""
    return TRACER.span(name, category=category, trace_id=trace_id, **attributes)


def install(collector: TraceCollector | None = None) -> TraceCollector:
    """Install (and return) a collector on the default tracer."""
    return TRACER.install(collector or TraceCollector())


def uninstall() -> None:
    """Stop recording on the default tracer."""
    TRACER.uninstall()


def collector() -> TraceCollector | None:
    """The default tracer's installed collector, if any."""
    return TRACER.collector


def new_trace_id() -> str:
    """A fresh trace id from the default tracer."""
    return TRACER.new_trace_id()


def current_span() -> Span | None:
    """The innermost open span of this execution context, if any."""
    return _CURRENT_SPAN.get()


def current_context() -> SpanContext | None:
    """The open span's wire-portable context, for RPC header injection.

    ``None`` when no real span is open — untraced processes inject
    nothing, so the far side captures nothing.
    """
    span_ = _CURRENT_SPAN.get()
    if span_ is None:
        return None
    return SpanContext(span_.trace_id, span_.span_id, TRACER.remote_sampling)


def set_remote_sampling(enabled: bool) -> None:
    """Toggle whether outgoing RPCs request span capture on the far side.

    With sampling off, trace context still propagates (ids stay
    correlated) but node servers skip capture and ship nothing back —
    the knob load generators use to price the tracing overhead.
    """
    TRACER.remote_sampling = bool(enabled)


# -- cross-process stitching --------------------------------------------------


def clock_skew_offset(
    client_send: float,
    client_recv: float,
    server_recv: float,
    server_send: float,
) -> float:
    """Seconds to add to server clock readings to align with ours.

    ``clock.now()`` is ``perf_counter`` with an arbitrary per-process
    basis, so remote span times are meaningless locally until shifted.
    The classic NTP midpoint estimate: assume the request and response
    halves of the RPC took equally long, so the midpoint of the
    server's busy window maps onto the midpoint of the client's wait.
    The residual error is bounded by the one-way network asymmetry —
    microseconds on a LAN, far below span durations.
    """
    return ((client_send + client_recv) - (server_recv + server_send)) / 2.0


def graft_spans(
    records: Iterable[dict],
    *,
    parent: Span,
    clock_offset: float = 0.0,
    origin: str | None = None,
) -> list[Span]:
    """Stitch serialized remote spans into the local trace under ``parent``.

    Three fixups make the remote subtree a first-class citizen here:

    * **id remapping** — every process numbers spans from its own
      counter, so each grafted span gets a fresh local id (parent
      pointers inside the shipped set are rewritten consistently);
    * **re-anchoring** — a span whose parent is not in the shipped set
      (the far side's synthetic remote parent, or a span lost to a
      crash) attaches to ``parent`` instead of dangling;
    * **clock alignment** — start/end shift by ``clock_offset`` (see
      :func:`clock_skew_offset`).

    Each span is tagged ``origin=<origin>`` for per-node attribution
    and recorded into the active sink (when grafting inside another
    remote request, e.g. a transitive halo RPC) or the installed
    collector.  Returns the grafted spans.
    """
    spans = [Span.from_json(record) for record in records]
    mapping = {span_.span_id: TRACER.next_span_id() for span_ in spans}
    sink = _SPAN_SINK.get()
    collector_ = TRACER._collector
    for span_ in spans:
        span_.parent_id = mapping.get(span_.parent_id, parent.span_id)
        span_.span_id = mapping[span_.span_id]
        span_.trace_id = parent.trace_id
        span_.start += clock_offset
        if span_.end is not None:
            span_.end += clock_offset
        if origin is not None:
            span_.attributes.setdefault("origin", origin)
        if sink is not None:
            sink.record(span_)
        elif collector_ is not None:
            collector_.record(span_)
    return spans


def absorb_remote(
    payload: object, *, client_send: float, client_recv: float
) -> list[Span]:
    """Graft a response's piggybacked span payload into the local trace.

    ``payload`` is the ``"trace"`` record a node server attaches to its
    response header: ``{"node", "recv", "send", "spans"}``.  The server
    clock stamps plus the caller's send/receive stamps feed the skew
    model; the window the server reported is recorded on the enclosing
    span (``remote_node``/``remote_seconds``) so attribution checks can
    compare named remote work against true node-side wall time.
    """
    parent = _CURRENT_SPAN.get()
    if parent is None or not isinstance(payload, dict):
        return []
    records = payload.get("spans")
    if not isinstance(records, list):
        return []
    server_recv = float(payload.get("recv", client_send))
    server_send = float(payload.get("send", client_recv))
    offset = clock_skew_offset(
        client_send, client_recv, server_recv, server_send
    )
    node = payload.get("node")
    origin = None if node is None else f"node{node}"
    grafted = graft_spans(
        records, parent=parent, clock_offset=offset, origin=origin
    )
    if node is not None:
        parent.set("remote_node", node)
    parent.set("remote_seconds", max(0.0, server_send - server_recv))
    return grafted


def mark_orphaned(span_: "Span | _NoopSpan", reason: str) -> None:
    """Flag a span whose remote subtree was lost (killed node, timeout).

    The stitched tree then shows an explicitly-marked orphan instead of
    silently missing work — ``GET /trace/<id>`` consumers can tell "the
    node did nothing" from "the node died mid-flight".
    """
    span_.set("orphaned", True)
    span_.set("orphan_reason", reason)


# -- profiler support ---------------------------------------------------------


def enable_thread_spans() -> None:
    """Start maintaining the thread-ident → open-span table.

    Costs one dict write per span enter/exit while on; the sampling
    profiler uses the table to key collapsed stacks to span ids.
    """
    global _THREAD_SPANS
    if _THREAD_SPANS is None:
        _THREAD_SPANS = {}


def disable_thread_spans() -> None:
    """Stop maintaining the thread→span table and drop it."""
    global _THREAD_SPANS
    _THREAD_SPANS = None


def span_for_thread(ident: int) -> Span | None:
    """The innermost open span of thread ``ident``, if tracked."""
    table = _THREAD_SPANS
    if table is None:
        return None
    return table.get(ident)


# -- trace analysis -----------------------------------------------------------


def category_totals(spans: Iterable[Span]) -> dict[str, float]:
    """Per-category simulated seconds of a trace.

    The root span of a mediator query carries the query's final
    :class:`~repro.costmodel.ledger.CostLedger` (parallel-composed
    across nodes, plus the network phases), so its breakdown *is* the
    trace's total.  Without a ledger-bearing root the totals fall back
    to the maximum per category over ledger-bearing spans — the parallel
    composition rule of the cost model.
    """
    spans = list(spans)
    for span_ in spans:
        if span_.parent_id is None and span_.breakdown is not None:
            return dict(span_.breakdown)
    totals: dict[str, float] = {}
    for span_ in spans:
        if span_.breakdown is None:
            continue
        for category, seconds in span_.breakdown.items():
            totals[category] = max(totals.get(category, 0.0), seconds)
    return totals


def render_tree(spans: Iterable[Span]) -> str:
    """Render a trace's spans as an indented tree with both clocks.

    Each line shows the span name, key attributes, wall milliseconds and
    — when a ledger is attached — the simulated seconds per Figure-9
    category.
    """
    spans = sorted(spans, key=lambda s: (s.start, s.span_id))
    if not spans:
        return "(empty trace)"
    children: dict[int | None, list[Span]] = {}
    ids = {span_.span_id for span_ in spans}
    for span_ in spans:
        parent = span_.parent_id if span_.parent_id in ids else None
        children.setdefault(parent, []).append(span_)

    lines: list[str] = []

    def _walk(span_: Span, prefix: str, is_last: bool, is_root: bool) -> None:
        connector = "" if is_root else ("└─ " if is_last else "├─ ")
        lines.append(prefix + connector + _describe(span_))
        child_prefix = prefix if is_root else prefix + ("   " if is_last else "│  ")
        kids = children.get(span_.span_id, [])
        for i, kid in enumerate(kids):
            _walk(kid, child_prefix, i == len(kids) - 1, False)

    roots = children.get(None, [])
    for i, root in enumerate(roots):
        _walk(root, "", i == len(roots) - 1, True)
    return "\n".join(lines)


def _describe(span_: Span) -> str:
    parts = [span_.name]
    attrs = " ".join(
        f"{key}={value}" for key, value in sorted(span_.attributes.items())
    )
    if attrs:
        parts.append(attrs)
    parts.append(f"wall={span_.wall_seconds * 1e3:.2f}ms")
    if span_.category:
        parts.append(f"category={span_.category}")
    if span_.breakdown is not None:
        sim = " ".join(
            f"{category}={seconds:.4g}"
            for category, seconds in span_.breakdown.items()
            if seconds
        )
        total = sum(span_.breakdown.values())
        parts.append(f"sim={total:.4g}s [{sim}]")
    return "  ".join(parts)
