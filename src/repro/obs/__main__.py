"""Command-line front-end for the observability layer.

Render a trace export::

    python -m repro.obs trace.jsonl                 # every trace, as trees
    python -m repro.obs trace.jsonl --trace-id q000001
    python -m repro.obs trace.jsonl --totals        # Figure-9 breakdown only

Self-test (used by CI)::

    python -m repro.obs --selftest

The self-test stands up a small in-process cluster, traces a threshold
query end to end, and verifies the tentpole invariants: span trees
propagate across the mediator's scatter threads, the root span's
simulated-time breakdown equals the query's returned ledger, the
semantic-cache hit counter moves on a repeated query, and the JSON-lines
export round-trips.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.obs import metrics, tracing
from repro.obs.report import report


def _render_file(path: Path, trace_id: str | None, totals_only: bool) -> int:
    spans = tracing.TraceCollector.from_jsonl(path.read_text())
    if trace_id is not None:
        spans = [span for span in spans if span.trace_id == trace_id]
        if not spans:
            report(f"no spans for trace {trace_id!r} in {path}")
            return 1
    by_trace: dict[str, list[tracing.Span]] = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)
    for tid in sorted(by_trace):
        trace = by_trace[tid]
        report(f"trace {tid} ({len(trace)} spans)")
        if not totals_only:
            report(tracing.render_tree(trace))
        totals = tracing.category_totals(trace)
        if totals:
            report("  simulated seconds by category:")
            for category, seconds in sorted(totals.items()):
                report(f"    {category:>14}: {seconds:.6f}")
        report()
    return 0


def _selftest() -> int:
    failures: list[str] = []

    def check(condition: bool, label: str) -> None:
        if condition:
            report(f"  ok: {label}")
        else:
            failures.append(label)

    report("repro.obs selftest")

    # -- metrics ------------------------------------------------------------
    registry = metrics.MetricsRegistry()
    queries = registry.counter("queries_total", labelnames=["kind"])
    queries.labels(kind="threshold").inc()
    queries.labels(kind="threshold").inc(2)
    latency = registry.histogram("latency_seconds", buckets=[0.1, 1.0])
    latency.observe(0.05)
    latency.observe(5.0)
    text = registry.render_prometheus()
    check(queries.labels(kind="threshold").value == 3.0, "counter arithmetic")
    check('queries_total{kind="threshold"} 3.0' in text, "prometheus counter line")
    check('latency_seconds_bucket{le="+Inf"} 2' in text, "prometheus +Inf bucket")
    check("latency_seconds" in registry.to_dict(), "JSON export")

    # -- histogram exemplars -------------------------------------------------
    latency.observe(0.5, exemplar="q000042")
    sample = registry.render_prometheus()
    check(
        'trace_id="q000042"' in sample,
        "exemplar renders on its bucket line",
    )
    recorded = latency.exemplars().get("1.0")
    check(
        recorded is not None and recorded[0] == "q000042",
        "exemplar lookup by bucket",
    )

    # -- tracing, no collector: spans must be inert no-ops ------------------
    tracing.uninstall()
    with tracing.span("noop.root") as outer:
        with tracing.span("noop.child") as inner:
            pass
    check(outer is inner, "no-op spans are the shared singleton")
    check(tracing.collector() is None, "no collector installed by default")

    # -- remote capture and stitching ---------------------------------------
    context = tracing.SpanContext("q_remote", 7, True)
    with tracing.remote_request(context) as capture:
        with tracing.span("server.request", method="threshold"):
            with tracing.span("executor.scan"):
                pass
    shipped = capture.to_wire() if capture is not None else []
    check(len(shipped) == 2, "remote request captures spans without a collector")
    collector = tracing.install(tracing.TraceCollector())
    try:
        with tracing.span("net.rpc", trace_id="q_local") as rpc:
            grafted = tracing.graft_spans(
                shipped, parent=rpc, origin="node0"
            )
        stitched = collector.trace("q_local")
        check(
            len(stitched) == 1 + len(grafted)
            and all(s.trace_id == "q_local" for s in stitched),
            "grafted spans join the local trace under the rpc span",
        )
        names = {s.name for s in stitched}
        check(
            {"server.request", "executor.scan"} <= names,
            "remote span names survive the stitch",
        )
    finally:
        tracing.uninstall()

    # -- sampling profiler ---------------------------------------------------
    from repro.obs.profile import SamplingProfiler

    collector = tracing.install(tracing.TraceCollector())
    try:
        from repro.obs import clock

        with SamplingProfiler(interval=0.001) as profiler:
            with tracing.span("profiled.burn", trace_id="q_profile"):
                started = clock.now()
                while clock.now() - started < 0.05:
                    pass
        check(profiler.samples > 0, "profiler collects stack samples")
        collapsed = profiler.render_collapsed()
        check(
            ";" in collapsed and collapsed.strip().split()[-1].isdigit(),
            "collapsed-stack output is well-formed",
        )
        check(
            bool(profiler.for_trace("q_profile")),
            "samples keyed to the traced span",
        )
    finally:
        tracing.uninstall()

    # -- traced threshold query on a live cluster ---------------------------
    from repro.cluster.mediator import build_cluster
    from repro.core.query import ThresholdQuery
    from repro.simulation.datasets import mhd_dataset

    mediator = build_cluster(
        mhd_dataset(side=32, timesteps=1), nodes=2, buffer_pages=64
    )
    collector = tracing.install(tracing.TraceCollector())
    try:
        query = ThresholdQuery("mhd", "vorticity", 0, 1e9)
        first = mediator.threshold(query)
        second = mediator.threshold(query)

        check(bool(first.query_id), "query carries a query_id")
        check(first.query_id != second.query_id, "query ids are unique")
        spans = collector.trace(second.query_id or "")
        check(len(spans) > 1, "trace holds the root and node-part spans")
        threads = {span.thread for span in spans}
        check(len(threads) > 1, "spans cross the scatter-pool threads")
        totals = tracing.category_totals(spans)
        check(
            totals == second.ledger.breakdown(),
            "root-span category totals equal the returned CostLedger",
        )
        hits = mediator.metrics.get("semantic_cache_hits_total").value
        check(hits > 0, "repeated query registers semantic-cache hits")

        exported = collector.to_jsonl(second.query_id)
        reparsed = tracing.TraceCollector.from_jsonl(exported)
        check(len(reparsed) == len(spans), "JSON-lines export round-trips")
        check(
            tracing.category_totals(reparsed) == totals,
            "round-tripped breakdown is intact",
        )
        report()
        report(tracing.render_tree(spans))
    finally:
        tracing.uninstall()
        mediator.close()

    if failures:
        report()
        for failure in failures:
            report(f"  FAIL: {failure}")
        report(f"selftest FAILED ({len(failures)} checks)")
        return 1
    report()
    report("selftest passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.obs``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Render trace exports; run the observability selftest.",
    )
    parser.add_argument(
        "path", nargs="?", type=Path,
        help="JSON-lines trace export to render",
    )
    parser.add_argument(
        "--trace-id", help="render only this trace (e.g. q000001)"
    )
    parser.add_argument(
        "--totals", action="store_true",
        help="print only the per-category simulated-time totals",
    )
    parser.add_argument(
        "--selftest", action="store_true",
        help="trace a query on an in-process cluster and verify invariants",
    )
    args = parser.parse_args(argv)

    if args.selftest:
        return _selftest()
    if args.path is None:
        parser.print_help(file=sys.stderr)
        return 2
    if not args.path.exists():
        report(f"no such file: {args.path}")
        return 2
    return _render_file(args.path, args.trace_id, args.totals)


if __name__ == "__main__":
    raise SystemExit(main())
