"""The engine's console sink.

Engine invariant OBS01 bans bare ``print`` calls outside ``repro.obs``:
anything the engine, harness or lint CLI wants a human to read goes
through :func:`report`, so output can be redirected (tests, services
that must keep stdout clean) or silenced in one place.
"""

from __future__ import annotations

import sys
from typing import IO


class ConsoleSink:
    """Writes report lines to a stream (default: ``sys.stdout`` at call time).

    Resolving the stream lazily keeps the sink compatible with pytest's
    ``capsys`` and any other harness that swaps ``sys.stdout``.
    ``fallback="stderr"`` makes the lazy default ``sys.stderr`` instead,
    for usage errors and other diagnostics that must not pollute piped
    output.
    """

    def __init__(
        self, stream: IO[str] | None = None, fallback: str = "stdout"
    ) -> None:
        self._stream = stream
        self._fallback = fallback

    @property
    def stream(self) -> IO[str]:
        """The destination stream currently in effect."""
        if self._stream is not None:
            return self._stream
        return sys.stderr if self._fallback == "stderr" else sys.stdout

    def emit(self, *parts: object, sep: str = " ", end: str = "\n") -> None:
        """Write one report line, ``print``-style."""
        self.stream.write(sep.join(str(part) for part in parts) + end)


#: The process-wide sink `report` writes to.
_SINK = ConsoleSink()
#: Sink for usage errors and other diagnostics (defaults to ``sys.stderr``).
_ERROR_SINK = ConsoleSink(fallback="stderr")


def report(
    *parts: object, sep: str = " ", end: str = "\n", error: bool = False
) -> None:
    """Emit one line of human-facing output through the active sink.

    ``error=True`` routes the line through the error sink (by default
    ``sys.stderr``), keeping diagnostics out of piped stdout.
    """
    (_ERROR_SINK if error else _SINK).emit(*parts, sep=sep, end=end)


def set_stream(stream: IO[str] | None) -> None:
    """Redirect :func:`report` output (``None`` restores ``sys.stdout``)."""
    _SINK._stream = stream


def get_stream() -> IO[str]:
    """The stream :func:`report` currently writes to."""
    return _SINK.stream
