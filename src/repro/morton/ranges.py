"""Decomposition of spatial boxes into contiguous Morton-code ranges.

A clustered index keyed on Morton codes serves an axis-aligned box query
as a union of contiguous key ranges.  The recursion below walks the
implicit octree of the z-order curve: an octant wholly inside the query
box contributes one contiguous range covering all of its codes, an octant
that misses the box contributes nothing, and a partially-overlapping
octant is split into its eight children.  Adjacent ranges are merged so
the result is minimal.

The same machinery shards a dataset across cluster nodes: the curve over
the whole domain is cut into ``n`` contiguous, near-equal pieces
(:func:`split_curve`), mirroring the JHTDB's partitioning of each dataset
"spatially along contiguous ranges of the Morton z-curve" (paper, §5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.morton.codec import MAX_COORD_BITS, encode


@dataclass(frozen=True, order=True)
class MortonRange:
    """A half-open range ``[start, stop)`` of Morton codes."""

    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop < self.start:
            raise ValueError(f"invalid Morton range [{self.start}, {self.stop})")

    def __len__(self) -> int:
        return self.stop - self.start

    def __contains__(self, code: int) -> bool:
        return self.start <= code < self.stop

    def overlaps(self, other: "MortonRange") -> bool:
        """Whether the two half-open ranges share at least one code."""
        return self.start < other.stop and other.start < self.stop

    def intersection(self, other: "MortonRange") -> "MortonRange | None":
        """The overlap of the two ranges, or ``None`` when disjoint."""
        start = max(self.start, other.start)
        stop = min(self.stop, other.stop)
        if start >= stop:
            return None
        return MortonRange(start, stop)


def _merge(ranges: list[MortonRange]) -> list[MortonRange]:
    """Merge sorted, possibly-adjacent ranges into a minimal list."""
    merged: list[MortonRange] = []
    for rng in ranges:
        if merged and merged[-1].stop >= rng.start:
            merged[-1] = MortonRange(merged[-1].start, max(merged[-1].stop, rng.stop))
        else:
            merged.append(rng)
    return merged


def _cover(
    lo: tuple[int, int, int],
    hi: tuple[int, int, int],
    origin: tuple[int, int, int],
    side: int,
    out: list[MortonRange],
) -> None:
    """Recursively cover box ``[lo, hi)`` within the octant at ``origin``."""
    ox, oy, oz = origin
    # Octant completely misses the query box.
    if (
        ox >= hi[0]
        or oy >= hi[1]
        or oz >= hi[2]
        or ox + side <= lo[0]
        or oy + side <= lo[1]
        or oz + side <= lo[2]
    ):
        return
    base = encode(ox, oy, oz)
    # Octant completely inside the query box: one contiguous code range.
    if (
        lo[0] <= ox
        and lo[1] <= oy
        and lo[2] <= oz
        and ox + side <= hi[0]
        and oy + side <= hi[1]
        and oz + side <= hi[2]
    ):
        out.append(MortonRange(base, base + side**3))
        return
    half = side // 2
    if half == 0:  # single cell, partially covered is impossible here
        out.append(MortonRange(base, base + 1))
        return
    for child in _octants(ox, oy, oz, half):
        _cover(lo, hi, child, half, out)


def _octants(
    ox: int, oy: int, oz: int, half: int
) -> Iterator[tuple[int, int, int]]:
    """The eight child-octant origins, in Morton (z, y, x nesting) order."""
    for dz in (0, half):
        for dy in (0, half):
            for dx in (0, half):
                yield (ox + dx, oy + dy, oz + dz)


def box_to_ranges(
    lo: Sequence[int], hi: Sequence[int], domain_side: int
) -> list[MortonRange]:
    """Cover the half-open box ``[lo, hi)`` with contiguous Morton ranges.

    Args:
        lo: inclusive lower corner ``(x, y, z)`` in grid units.
        hi: exclusive upper corner ``(x, y, z)``.
        domain_side: side length of the (cubic, power-of-two) domain the
            Morton curve is defined over.

    Returns:
        A minimal, sorted list of :class:`MortonRange` whose union is
        exactly the set of Morton codes of grid points inside the box.

    Raises:
        ValueError: if the domain side is not a power of two, or the box
            does not fit inside the domain.
    """
    if domain_side <= 0 or domain_side & (domain_side - 1):
        raise ValueError(f"domain side {domain_side} is not a power of two")
    if domain_side > 1 << MAX_COORD_BITS:
        raise ValueError(f"domain side {domain_side} exceeds codec capacity")
    lo = tuple(int(v) for v in lo)
    hi = tuple(int(v) for v in hi)
    if any(l < 0 for l in lo) or any(h > domain_side for h in hi):
        raise ValueError(f"box [{lo}, {hi}) outside domain of side {domain_side}")
    if any(l >= h for l, h in zip(lo, hi)):
        return []
    out: list[MortonRange] = []
    _cover(lo, hi, (0, 0, 0), domain_side, out)
    out.sort()
    return _merge(out)


def split_curve(domain_side: int, parts: int) -> list[MortonRange]:
    """Cut the Morton curve over a cubic domain into contiguous pieces.

    Used to shard a dataset across ``parts`` database nodes.  The pieces
    are aligned to whole octants where possible so each node's share is a
    union of compact spatial blocks, and their sizes differ by at most
    one curve step.

    Raises:
        ValueError: on a non-power-of-two domain or ``parts < 1``.
    """
    if parts < 1:
        raise ValueError("parts must be >= 1")
    if domain_side <= 0 or domain_side & (domain_side - 1):
        raise ValueError(f"domain side {domain_side} is not a power of two")
    total = domain_side**3
    bounds = [round(i * total / parts) for i in range(parts + 1)]
    return [
        MortonRange(bounds[i], bounds[i + 1])
        for i in range(parts)
        if bounds[i + 1] > bounds[i]
    ]
