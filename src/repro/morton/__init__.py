"""Morton (z-order) space-filling curve utilities.

The JHTDB lays every timestep of a simulation out along a 3-D Morton
z-order curve: each 8x8x8 *database atom* is keyed by the Morton code of
its lower-left corner, and the cluster is sharded by contiguous ranges of
that curve (paper, section 2).  This package provides the curve itself:

* :mod:`repro.morton.codec` -- scalar and vectorised encode/decode between
  ``(x, y, z)`` grid coordinates and Morton codes.
* :mod:`repro.morton.ranges` -- decomposition of an axis-aligned box into
  the minimal set of contiguous Morton-code ranges, used both to plan
  clustered-index range scans and to route queries to cluster nodes.
"""

from repro.morton.codec import (
    MAX_COORD_BITS,
    decode,
    decode_array,
    encode,
    encode_array,
)
from repro.morton.ranges import (
    MortonRange,
    box_to_ranges,
    split_curve,
)

__all__ = [
    "MAX_COORD_BITS",
    "MortonRange",
    "box_to_ranges",
    "decode",
    "decode_array",
    "encode",
    "encode_array",
    "split_curve",
]
